//! Reproduces Fig. 6 of the paper: synchronisation start-up time, completion
//! time and protocol overhead for the four workloads (1×100 kB, 1×1 MB,
//! 10×100 kB, 100×10 kB of binary files) across all five services.
//!
//! Run with `cargo run --release --example compare_services [repetitions]`
//! (default 3; the paper uses 24).

use cloudbench::benchmarks::run_performance_suite;
use cloudbench::report::{Fig6Metric, Report};
use cloudbench::testbed::Testbed;

fn main() {
    let repetitions: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let testbed = Testbed::new(2013);
    println!("Running the Fig. 6 performance suite ({repetitions} repetitions per cell)...\n");
    let suite = run_performance_suite(&testbed, repetitions);

    for metric in [Fig6Metric::Startup, Fig6Metric::Completion, Fig6Metric::Overhead] {
        let report = Report::figure6(&suite, metric);
        println!("{}", report.title);
        println!("{}", report.body);
    }

    // The headline comparison of §5.2: who wins the 100x10kB case and by how much.
    if let (Some(dropbox), Some(gdrive)) =
        (suite.row("Dropbox", "100x10kB"), suite.row("Google Drive", "100x10kB"))
    {
        println!(
            "100x10kB completion: Dropbox {:.1} s vs Google Drive {:.1} s ({:.1}x)",
            dropbox.completion_secs.mean,
            gdrive.completion_secs.mean,
            gdrive.completion_secs.mean / dropbox.completion_secs.mean.max(1e-9)
        );
    }
}
