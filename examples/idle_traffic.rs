//! Reproduces Fig. 1 of the paper: cumulative background traffic towards the
//! control servers while each client sits idle for 16 minutes, plus the §3.1
//! signalling-rate estimates (Cloud Drive ≈ 65 MB/day!).
//!
//! Run with `cargo run --release --example idle_traffic`.

use cloudbench::idle::idle_traffic_series;
use cloudbench::report::Report;
use cloudbench::testbed::Testbed;

fn main() {
    let testbed = Testbed::new(16);
    println!("Letting every client idle for 16 simulated minutes...\n");
    let series = idle_traffic_series(&testbed);
    let report = Report::figure1(&series);
    println!("{}", report.title);
    println!("{}", report.body);
}
