//! Quickstart: benchmark one service on one workload and print the three
//! §5 metrics (start-up delay, completion time, protocol overhead).
//!
//! Run with `cargo run --example quickstart [service]` where `service` is one
//! of `dropbox`, `skydrive`, `wuala`, `gdrive`, `clouddrive` (default:
//! `dropbox`).

use cloudbench::testbed::Testbed;
use cloudbench::{BatchSpec, FileKind, ServiceProfile};

fn profile_from_arg(arg: Option<String>) -> ServiceProfile {
    match arg.as_deref() {
        Some("skydrive") => ServiceProfile::skydrive(),
        Some("wuala") => ServiceProfile::wuala(),
        Some("gdrive") | Some("googledrive") => ServiceProfile::google_drive(),
        Some("clouddrive") => ServiceProfile::cloud_drive(),
        _ => ServiceProfile::dropbox(),
    }
}

fn main() {
    let profile = profile_from_arg(std::env::args().nth(1));
    let testbed = Testbed::new(42);

    println!("Benchmarking {} (simulated)\n", profile.name());
    for spec in BatchSpec::figure6_workloads() {
        let run = testbed.run_sync(&profile, &spec, 0);
        let startup = run.startup_delay().map(|d| d.as_secs_f64()).unwrap_or(f64::NAN);
        let completion = run.completion_time().map(|d| d.as_secs_f64()).unwrap_or(f64::NAN);
        println!(
            "workload {:>9}: startup {:6.2} s, completion {:7.2} s, overhead {:5.2}x, uploaded {:8} B",
            spec.label(),
            startup,
            completion,
            run.overhead(),
            run.uploaded_payload(),
        );
    }

    println!();
    let binary = BatchSpec::new(10, 100_000, FileKind::RandomBinary);
    let text = BatchSpec::new(10, 100_000, FileKind::Text);
    let b = testbed.run_sync(&profile, &binary, 1);
    let t = testbed.run_sync(&profile, &text, 1);
    println!(
        "file-type effect on 10x100kB: binary uploads {} B, text uploads {} B",
        b.uploaded_payload(),
        t.uploaded_payload()
    );
}
