//! Reproduces §3.2 and Fig. 2 of the paper: resolve each service's DNS names
//! through the open-resolver fleet, identify address owners with whois, and
//! geolocate every discovered front end with the hybrid (airport code +
//! shortest RTT) method. Google Drive's geo-aware DNS reveals >100 edge nodes.
//!
//! Run with `cargo run --release --example geolocate`.

use cloudbench::architecture::discover_architecture;
use cloudbench::report::Report;
use cloudbench::Provider;
use cloudsim_geo::ResolverFleet;

fn main() {
    let fleet = ResolverFleet::paper_scale();
    println!(
        "Sweeping {} resolvers across {} countries and {} ISPs...\n",
        fleet.len(),
        fleet.country_count(),
        fleet.isp_count()
    );

    let reports: Vec<_> =
        Provider::ALL.iter().map(|p| discover_architecture(*p, &fleet, 99)).collect();
    let refs: Vec<&_> = reports.iter().collect();
    let rendered = Report::figure2(&refs);
    println!("{}", rendered.title);
    println!("{}", rendered.body);

    // Detail view for Google Drive, the Fig. 2 subject.
    let gdrive = reports.iter().find(|r| r.provider == "Google Drive").unwrap();
    println!("Google Drive entry points discovered: {}", gdrive.entry_points());
    println!("First ten, with owner and geolocation method:");
    for node in gdrive.nodes.iter().take(10) {
        println!(
            "  {:<16} {:<12} {:?} (err {:>5.0} km)  {}",
            node.addr,
            node.owner,
            node.location.method,
            node.location.error_km,
            node.reverse_dns.as_deref().unwrap_or("-")
        );
    }
}
