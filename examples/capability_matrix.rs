//! Reproduces Table 1 of the paper: the capability matrix (chunking,
//! bundling, compression, deduplication, delta encoding) for all five
//! services, detected purely from the simulated traffic.
//!
//! Run with `cargo run --release --example capability_matrix`.

use cloudbench::capability::CapabilityMatrix;
use cloudbench::report::Report;
use cloudbench::testbed::Testbed;

fn main() {
    let testbed = Testbed::new(7);
    println!("Running the §4 capability battery for all five services...\n");
    let matrix = CapabilityMatrix::detect_all(&testbed);
    let report = Report::table1(&matrix);
    println!("{}", report.title);
    println!("{}", report.body);

    println!("Machine-readable (JSON):");
    println!("{}", Report::to_json(&matrix));
}
