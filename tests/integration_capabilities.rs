//! Cross-crate integration test: the full §4 capability battery must detect,
//! from traffic alone, exactly the matrix the paper reports in Table 1.

use cloudbench::capability::{CapabilityMatrix, ChunkingVerdict};
use cloudbench::report::Report;
use cloudbench::testbed::Testbed;

#[test]
fn detected_matrix_matches_table_1() {
    let testbed = Testbed::new(0x7AB1E);
    let matrix = CapabilityMatrix::detect_all(&testbed);
    assert_eq!(matrix.rows.len(), 5);

    let dropbox = matrix.row("Dropbox").expect("Dropbox row");
    assert!(
        matches!(dropbox.chunking, ChunkingVerdict::Fixed { size } if (3_500_000..4_700_000).contains(&size))
    );
    assert!(dropbox.bundling);
    assert_eq!(dropbox.compression, "always");
    assert!(dropbox.deduplication);
    assert!(dropbox.delta_encoding);

    let skydrive = matrix.row("SkyDrive").expect("SkyDrive row");
    assert_eq!(skydrive.chunking, ChunkingVerdict::Variable);
    assert!(!skydrive.bundling);
    assert_eq!(skydrive.compression, "no");
    assert!(!skydrive.deduplication);
    assert!(!skydrive.delta_encoding);

    let wuala = matrix.row("Wuala").expect("Wuala row");
    assert_eq!(wuala.chunking, ChunkingVerdict::Variable);
    assert!(!wuala.bundling);
    assert_eq!(wuala.compression, "no");
    assert!(wuala.deduplication);
    assert!(!wuala.delta_encoding);

    let gdrive = matrix.row("Google Drive").expect("Google Drive row");
    assert!(
        matches!(gdrive.chunking, ChunkingVerdict::Fixed { size } if (7_000_000..9_400_000).contains(&size))
    );
    assert!(!gdrive.bundling);
    assert_eq!(gdrive.compression, "smart");
    assert!(!gdrive.deduplication);
    assert!(!gdrive.delta_encoding);

    let clouddrive = matrix.row("Cloud Drive").expect("Cloud Drive row");
    assert_eq!(clouddrive.chunking, ChunkingVerdict::None);
    assert!(!clouddrive.bundling);
    assert_eq!(clouddrive.compression, "no");
    assert!(!clouddrive.deduplication);
    assert!(!clouddrive.delta_encoding);

    // The rendered table carries the paper's wording for every cell.
    let rendered = Report::table1(&matrix);
    for token in ["4 MB", "8 MB", "var.", "always", "smart"] {
        assert!(rendered.body.contains(token), "missing {token} in\n{}", rendered.body);
    }
}

#[test]
fn fig4_and_fig5_series_have_the_papers_shape() {
    use cloudbench::capability::{compression_series, delta_encoding_series};
    use cloudbench::{FileKind, ServiceProfile};

    let testbed = Testbed::new(0xF1657);
    let sizes = [500_000u64, 1_000_000, 2_000_000];

    // Fig. 4 left (append): Dropbox's upload stays near the 100 kB change,
    // non-delta services re-upload the whole file.
    let dropbox = delta_encoding_series(&testbed, &ServiceProfile::dropbox(), &sizes, false);
    let clouddrive = delta_encoding_series(&testbed, &ServiceProfile::cloud_drive(), &sizes, false);
    for (d, c) in dropbox.iter().zip(&clouddrive) {
        assert!(d.uploaded < 500_000, "Dropbox uploaded {} for {} B file", d.uploaded, d.file_size);
        assert!(c.uploaded > c.file_size, "Cloud Drive must re-upload everything");
        assert!(c.uploaded > 2 * d.uploaded);
    }

    // Fig. 5: text compresses for Dropbox (always) and Google Drive (smart),
    // not for the others; fake JPEGs are only skipped by Google Drive.
    let text_sizes = [1_000_000u64, 2_000_000];
    let dropbox_text =
        compression_series(&testbed, &ServiceProfile::dropbox(), FileKind::Text, &text_sizes);
    let skydrive_text =
        compression_series(&testbed, &ServiceProfile::skydrive(), FileKind::Text, &text_sizes);
    for (d, s) in dropbox_text.iter().zip(&skydrive_text) {
        assert!(d.uploaded < s.uploaded, "Dropbox should compress text");
        assert!(s.uploaded >= s.file_size, "SkyDrive uploads text uncompressed");
    }
    let gdrive_fake = compression_series(
        &testbed,
        &ServiceProfile::google_drive(),
        FileKind::FakeJpeg,
        &[1_000_000],
    );
    let dropbox_fake =
        compression_series(&testbed, &ServiceProfile::dropbox(), FileKind::FakeJpeg, &[1_000_000]);
    assert!(gdrive_fake[0].uploaded >= 1_000_000, "Google Drive must not compress (fake) JPEGs");
    assert!(dropbox_fake[0].uploaded < 700_000, "Dropbox compresses fake JPEGs anyway");
}
