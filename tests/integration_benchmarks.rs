//! Cross-crate integration test: the §5 performance suite reproduces the
//! qualitative results of Fig. 6 (who wins, by roughly what factor).

use cloudbench::benchmarks::run_performance_suite;
use cloudbench::testbed::Testbed;

#[test]
fn figure6_rankings_hold() {
    let testbed = Testbed::new(0xF166);
    let suite = run_performance_suite(&testbed, 2);

    // Every service × workload cell is present.
    assert_eq!(suite.rows.len(), 5 * 4);
    let workloads = suite.workloads();
    assert_eq!(workloads, vec!["1x100kB", "1x1MB", "10x100kB", "100x10kB"]);

    let completion =
        |service: &str, workload: &str| suite.row(service, workload).unwrap().completion_secs.mean;
    let startup =
        |service: &str, workload: &str| suite.row(service, workload).unwrap().startup_secs.mean;
    let overhead =
        |service: &str, workload: &str| suite.row(service, workload).unwrap().overhead.mean;

    // §5.2 single files: RTT dominates. Google Drive and Wuala (nearby
    // servers) beat Dropbox and SkyDrive (US data centres).
    for workload in ["1x100kB", "1x1MB"] {
        assert!(completion("Google Drive", workload) < completion("SkyDrive", workload));
        assert!(completion("Wuala", workload) < completion("SkyDrive", workload));
        assert!(completion("Google Drive", workload) < completion("Dropbox", workload));
    }
    // SkyDrive needs seconds for a 1 MB file; Google Drive well under a second
    // of storage-flow activity (paper: ~4 s vs ~0.3 s).
    assert!(completion("SkyDrive", "1x1MB") > 1.5);
    assert!(completion("Google Drive", "1x1MB") < 1.5);

    // §5.2 many small files: bundling wins; the per-file TCP/SSL services lose
    // their placement advantage.
    let d = completion("Dropbox", "100x10kB");
    let g = completion("Google Drive", "100x10kB");
    let c = completion("Cloud Drive", "100x10kB");
    assert!(d * 2.0 < g, "Dropbox {d} vs Google Drive {g}");
    assert!(g < c, "Google Drive {g} vs Cloud Drive {c}");
    assert!(c > 20.0, "Cloud Drive should need tens of seconds, got {c}");

    // §5.1 start-up: SkyDrive is by far the slowest and degrades with batch
    // size; Dropbox stays in the low seconds.
    assert!(startup("SkyDrive", "1x100kB") >= 8.0);
    assert!(startup("SkyDrive", "100x10kB") > 15.0);
    assert!(startup("SkyDrive", "100x10kB") > startup("SkyDrive", "1x100kB"));
    assert!(startup("Dropbox", "1x100kB") < 2.5);
    for service in ["Dropbox", "Wuala", "Google Drive", "Cloud Drive"] {
        assert!(
            startup(service, "100x10kB") < startup("SkyDrive", "100x10kB"),
            "{service} should start faster than SkyDrive"
        );
    }

    // §5.3 overhead: everyone pays for small files; Cloud Drive is the worst
    // by a wide margin (>2x payload), Google Drive also exceeds 2x on
    // 100x10kB, and overheads shrink as files grow.
    assert!(overhead("Cloud Drive", "100x10kB") > 2.0);
    assert!(overhead("Google Drive", "100x10kB") > 1.5);
    assert!(overhead("Cloud Drive", "100x10kB") > overhead("Dropbox", "100x10kB"));
    for service in ["Dropbox", "SkyDrive", "Wuala", "Google Drive", "Cloud Drive"] {
        assert!(
            overhead(service, "1x1MB") < overhead(service, "1x100kB") + 0.5,
            "{service}: overhead should not grow with file size"
        );
        assert!(overhead(service, "1x1MB") > 1.0);
    }

    // Dropbox's 100x10kB goodput lands in the hundreds of kb/s (paper: 0.8 Mb/s).
    let dropbox_goodput = suite.row("Dropbox", "100x10kB").unwrap().goodput_bps;
    assert!(
        (100_000.0..5_000_000.0).contains(&dropbox_goodput),
        "Dropbox goodput {dropbox_goodput}"
    );
}

#[test]
fn repetitions_produce_stable_statistics() {
    use cloudbench::benchmarks::run_performance_cell;
    use cloudbench::{BatchSpec, FileKind, ServiceProfile};

    let testbed = Testbed::new(0x57A7);
    let spec = BatchSpec::new(10, 100_000, FileKind::RandomBinary);
    let row = run_performance_cell(&testbed, &ServiceProfile::wuala(), &spec, 6);
    assert_eq!(row.completion_secs.count, 6);
    // Jitter exists but stays moderate: the standard deviation is a small
    // fraction of the mean.
    assert!(row.completion_secs.std_dev < row.completion_secs.mean * 0.5);
    assert!(row.completion_secs.min <= row.completion_secs.mean);
    assert!(row.completion_secs.max >= row.completion_secs.mean);
}
