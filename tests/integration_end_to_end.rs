//! End-to-end integration test: one full benchmarking campaign — login, idle
//! observation, capability probes and performance workloads — for a single
//! service, exercising every crate of the workspace in one scenario.

use cloudbench::idle::idle_traffic_for;
use cloudbench::testbed::Testbed;
use cloudbench::{BatchSpec, FileKind, ServiceProfile};
use cloudsim_net::SimDuration;
use cloudsim_trace::{analysis, FlowKind};
use cloudsim_workload::{generate, GeneratedFile, Mutation};

#[test]
fn full_campaign_for_dropbox() {
    let testbed = Testbed::new(0xE2E);
    let profile = ServiceProfile::dropbox();

    // 1. Idle observation (Fig. 1 leg).
    let idle = idle_traffic_for(
        &testbed,
        &profile,
        SimDuration::from_secs(10 * 60),
        SimDuration::from_secs(60),
    );
    assert!(idle.total_bytes > 10_000);
    assert!(idle.megabytes_per_day < 5.0);

    // 2. Performance workloads (Fig. 6 leg).
    for spec in BatchSpec::figure6_workloads() {
        let run = testbed.run_sync(&profile, &spec, 0);
        assert!(run.startup_delay().is_some(), "{}", spec.label());
        assert!(run.completion_time().is_some(), "{}", spec.label());
        assert!(
            run.overhead() > 1.0 && run.overhead() < 10.0,
            "{}: {}",
            spec.label(),
            run.overhead()
        );
        // The trace is well-formed: storage payload at least matches what the
        // planner decided to upload, and flows are classified.
        let table = cloudsim_trace::FlowTable::from_packets(&run.packets);
        assert!(table.of_kind(FlowKind::Storage).count() >= 1);
        assert!(table.of_kind(FlowKind::Control).count() >= 1);
    }

    // 3. A capability-style scripted scenario chaining modification kinds:
    //    create, append, copy, delete, restore.
    let original = generate(FileKind::RandomBinary, 2_000_000, 0xE2E1);
    let appended = Mutation::Append { len: 150_000 }.apply(&original, 0xE2E2);
    let ((first_bytes, second_bytes, copy_bytes), packets) =
        testbed.run_scripted(&profile, 0, |sim, client, t0| {
            let first =
                vec![GeneratedFile { path: "docs/report.bin".into(), content: original.clone() }];
            let out1 = client.sync_batch(sim, &first, t0 + SimDuration::from_secs(5));
            let b1 = analysis::uploaded_payload(&sim.packets());

            let second =
                vec![GeneratedFile { path: "docs/report.bin".into(), content: appended.clone() }];
            let out2 =
                client.sync_batch(sim, &second, out1.completed_at + SimDuration::from_secs(20));
            let b2 = analysis::uploaded_payload(&sim.packets()) - b1;

            let copy = vec![GeneratedFile {
                path: "backup/report-copy.bin".into(),
                content: appended.clone(),
            }];
            client.sync_batch(sim, &copy, out2.completed_at + SimDuration::from_secs(20));
            let b3 = analysis::uploaded_payload(&sim.packets()) - b1 - b2;
            (b1, b2, b3)
        });

    // First sync: roughly the (compressed ≈ incompressible) 2 MB.
    assert!(first_bytes >= 1_900_000, "first sync uploaded {first_bytes}");
    // Second sync: delta encoding keeps it near the 150 kB change.
    assert!(second_bytes < 700_000, "append re-sync uploaded {second_bytes}");
    // Third sync: client-side dedup recognises the copy, nothing travels.
    assert!(copy_bytes < 50_000, "copy uploaded {copy_bytes}");
    // Sanity: the composite trace is time-ordered.
    assert!(packets.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
}

#[test]
fn deterministic_replay_across_runs() {
    // The whole campaign is reproducible: same seed, same trace volume.
    let spec = BatchSpec::new(20, 25_000, FileKind::RandomBinary);
    let a = Testbed::new(123).run_sync(&ServiceProfile::google_drive(), &spec, 3);
    let b = Testbed::new(123).run_sync(&ServiceProfile::google_drive(), &spec, 3);
    assert_eq!(a.packets.len(), b.packets.len());
    assert_eq!(a.completion_time(), b.completion_time());
    assert_eq!(a.overhead(), b.overhead());

    let c = Testbed::new(124).run_sync(&ServiceProfile::google_drive(), &spec, 3);
    assert_ne!(a.completion_time(), c.completion_time());
}
