//! Cross-crate integration test: the §2.1 / §3.2 architecture-discovery
//! pipeline over the synthetic DNS / whois / geolocation substrate.

use cloudbench::architecture::{discover_all, discover_architecture};
use cloudbench::Provider;
use cloudsim_geo::ResolverFleet;

#[test]
fn section_3_2_findings_are_reproduced() {
    let reports = discover_all(0xA5C);
    assert_eq!(reports.len(), 5);

    // Dropbox: own control servers, storage on Amazon.
    let dropbox = &reports["Dropbox"];
    assert!(dropbox.owners.contains(&"Dropbox, Inc.".to_string()));
    assert!(dropbox.owners.contains(&"Amazon.com, Inc.".to_string()));

    // Cloud Drive: AWS only, three regions.
    let clouddrive = &reports["Cloud Drive"];
    assert_eq!(clouddrive.owners, vec!["Amazon.com, Inc.".to_string()]);
    assert_eq!(clouddrive.cities.len(), 3);

    // SkyDrive: Microsoft only, including a Singapore control destination.
    let skydrive = &reports["SkyDrive"];
    assert_eq!(skydrive.owners, vec!["Microsoft Corporation".to_string()]);
    assert!(skydrive.cities.iter().any(|c| c == "Singapore"));

    // Wuala: European hosting companies, not Wuala-owned.
    let wuala = &reports["Wuala"];
    assert!(!wuala.owners.iter().any(|o| o.contains("Wuala")));
    for city in &wuala.cities {
        assert!(
            ["Nuremberg", "Zurich", "Lille"].contains(&city.as_str()),
            "unexpected Wuala city {city}"
        );
    }

    // Google Drive: >100 entry points spread around the world (Fig. 2).
    let gdrive = &reports["Google Drive"];
    assert!(gdrive.entry_points() > 100, "only {} entry points", gdrive.entry_points());
    assert!(gdrive.cities.len() > 40);
    assert_eq!(gdrive.owners, vec!["Google LLC".to_string()]);

    // The hybrid geolocation achieves the claimed ~100 km-scale precision on
    // average (airport codes dominate for the synthetic reverse DNS names).
    for (name, report) in &reports {
        assert!(
            report.mean_error_km < 400.0,
            "{name} mean geolocation error {} km",
            report.mean_error_km
        );
    }
}

#[test]
fn discovery_scales_with_the_resolver_fleet() {
    // A tiny fleet from a single continent sees only a subset of Google's edge
    // nodes; the paper-scale fleet sees them all. This is exactly why the
    // methodology insists on >2,000 vantage points.
    let small = ResolverFleet::generate(16, 1);
    let large = ResolverFleet::paper_scale();
    let few = discover_architecture(Provider::GoogleDrive, &small, 1);
    let many = discover_architecture(Provider::GoogleDrive, &large, 1);
    assert!(few.entry_points() < many.entry_points());
    assert!(many.entry_points() > 100);

    // Centralised services look the same from everywhere.
    let dropbox_few = discover_architecture(Provider::Dropbox, &small, 1);
    let dropbox_many = discover_architecture(Provider::Dropbox, &large, 1);
    assert_eq!(dropbox_few.entry_points(), dropbox_many.entry_points());
}
