//! Local stub of `parking_lot` for an offline build environment.
//!
//! Wraps `std::sync` locks behind parking_lot's API: `lock`/`read`/`write`
//! return guards directly instead of `Result`s. Lock poisoning is ignored
//! (the inner value is recovered), which matches parking_lot's semantics of
//! not poisoning at all.

use std::sync;

/// Read guard type (std's, re-exported: the deref API is identical).
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard type.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Mutex guard type.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}
