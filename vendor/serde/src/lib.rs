//! Local stub of the `serde` facade for an offline build environment.
//!
//! The real serde models serialization as a visitor protocol; this stub
//! collapses it to a single [`Value`] tree, which is all the workspace needs:
//! `#[derive(Serialize)]` (re-exported from the vendored `serde_derive`)
//! builds a `Value` and the vendored `serde_json` renders it. `Deserialize`
//! is a marker trait — nothing in the workspace deserializes yet.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-shaped value tree, the serialization data model of the stub.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any integer (wide enough for u64 and i64).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (insertion order preserved, like a struct's fields).
    Object(Vec<(String, Value)>),
}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn serialize(&self) -> Value;
}

/// Marker trait mirroring serde's `Deserialize`; implementations are emitted
/// by the derive but carry no behaviour in the stub.
pub trait Deserialize {}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::Int(*self as i128) }
        }
        impl Deserialize for $t {}
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {}
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}
impl<T> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T, const N: usize> Deserialize for [T; N] {}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name),+> Deserialize for ($($name,)+) {}
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Renders a serialized key for use as a JSON object key.
fn key_string(v: Value) -> String {
    match v {
        Value::String(s) => s,
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Float(f) => f.to_string(),
        other => format!("{other:?}"),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (key_string(k.serialize()), v.serialize())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
impl<K, V, S> Deserialize for HashMap<K, V, S> {}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter().map(|(k, v)| (key_string(k.serialize()), v.serialize())).collect(),
        )
    }
}
impl<K, V> Deserialize for BTreeMap<K, V> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_serialize() {
        assert_eq!(5u32.serialize(), Value::Int(5));
        assert_eq!(true.serialize(), Value::Bool(true));
        assert_eq!("x".to_string().serialize(), Value::String("x".into()));
        assert_eq!(Option::<u8>::None.serialize(), Value::Null);
        assert_eq!(vec![1u8, 2].serialize(), Value::Array(vec![Value::Int(1), Value::Int(2)]));
        assert_eq!((1u8, 2.5f64).serialize(), Value::Array(vec![Value::Int(1), Value::Float(2.5)]));
    }
}
