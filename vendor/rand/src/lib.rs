//! Local stub of the `rand` crate for an offline build environment.
//!
//! Implements the exact API surface this workspace uses — `rngs::StdRng`,
//! `SeedableRng::{seed_from_u64, from_seed}`, `RngCore`, and `Rng` with
//! `gen_range` (half-open and inclusive integer/float ranges) and `gen_bool`
//! — over a xoshiro256++ generator seeded through splitmix64. The streams do
//! not match the real `StdRng` (ChaCha12), but every consumer in the
//! workspace only requires determinism for a fixed seed, which holds.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable construction, mirroring rand's trait.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` (splitmix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        let mut x = state;
        for chunk in bytes.chunks_mut(8) {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let le = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&le[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let v = (rng.next_u64() as u128) % span;
                (lo as u128).wrapping_add(v) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start as f64 + (self.end as f64 - self.start as f64) * unit;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end as f64 { self.start } else { v as $t }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                (lo + (hi - lo) * unit) as $t
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer or float range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The stub's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let le = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&le[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s.iter().all(|&w| w == 0) {
                s = [0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9, 0x94D049BB133111EB, 1];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.gen_range(1.0..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
