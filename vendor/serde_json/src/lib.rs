//! Local stub of `serde_json` for an offline build environment.
//!
//! Renders the vendored `serde::Value` tree as JSON, matching serde_json's
//! output formats closely enough for the workspace's report dumps and tests
//! (`to_string_pretty` indents with two spaces and separates keys with
//! `": "`, exactly like the real crate).

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error. The stub's tree model cannot actually fail, but the
/// signature mirrors the real crate so call sites keep their error handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        if f == f.trunc() && f.abs() < 1e15 {
            // serde_json renders whole floats with a trailing ".0".
            out.push_str(&format!("{f:.1}"));
        } else {
            out.push_str(&format!("{f}"));
        }
    } else {
        out.push_str("null");
    }
}

fn render(value: &Value, out: &mut String, indent: usize, pretty: bool) {
    let pad = |out: &mut String, level: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..level {
                out.push_str("  ");
            }
        }
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                render(item, out, indent + 1, pretty);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                escape_into(out, key);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                render(item, out, indent + 1, pretty);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), &mut out, 0, false);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), &mut out, 0, true);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_format_matches_serde_json_style() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::String("dropbox".to_string())),
            ("bundling".to_string(), Value::Bool(true)),
            ("sizes".to_string(), Value::Array(vec![Value::Int(1), Value::Int(2)])),
        ]);
        let mut out = String::new();
        render(&v, &mut out, 0, true);
        assert_eq!(
            out,
            "{\n  \"name\": \"dropbox\",\n  \"bundling\": true,\n  \"sizes\": [\n    1,\n    2\n  ]\n}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string(&"a\"b\n").unwrap(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn whole_floats_keep_a_decimal() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
    }
}
