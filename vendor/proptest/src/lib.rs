//! Local stub of `proptest` for an offline build environment.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro with a `#![proptest_config(...)]` header, strategies
//! built from [`prelude::any`], integer ranges and [`collection::vec`], and
//! the `prop_assert*` macros. Inputs are generated from a deterministic
//! per-test PRNG (seeded from the test name and case index), so failures
//! reproduce exactly across runs. There is no shrinking: a failing case
//! reports its values and case number instead.

use std::fmt;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (returned early by the `prop_assert*` macros).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Deterministic input generation.
pub mod test_runner {
    /// The per-test PRNG (splitmix64 over a name/case-derived seed).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the generator for one named test case.
        pub fn deterministic(name: &str, case: u64) -> Self {
            let mut seed = 0xcbf29ce484222325u64; // FNV offset basis
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100000001b3);
            }
            TestRng { state: seed ^ case.wrapping_mul(0x9E3779B97F4A7C15) }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// Strategies: recipes for generating random values.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A value-generation recipe.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy for "any value of a primitive type" (see [`crate::prelude::any`]).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi - lo) as u64 + 1;
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `len` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let len = self.len.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The items a property test file imports with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Any, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, TestCaseError};

    /// Strategy producing any value of primitive type `T`.
    pub fn any<T>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Runs each listed property over randomly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        stringify!($name),
                        __case as u64,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "property '{}' failed on case {}: {}",
                            stringify!($name), __case, e
                        );
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

/// Asserts a condition, failing the current property case on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            )));
        }
    };
}

/// Asserts equality, failing the current property case on violation.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assert_eq failed at {}:{}\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                __l,
                __r
            )));
        }
    }};
}

/// Asserts inequality, failing the current property case on violation.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assert_ne failed at {}:{}\n  both: {:?}",
                file!(),
                line!(),
                __l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn generated_vectors_respect_bounds(data in collection::vec(any::<u8>(), 2..50)) {
            prop_assert!(data.len() >= 2 && data.len() < 50);
        }

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let mut a = crate::test_runner::TestRng::deterministic("t", 3);
        let mut b = crate::test_runner::TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
