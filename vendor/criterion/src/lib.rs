//! Local stub of `criterion` for an offline build environment.
//!
//! Implements the API surface the workspace's bench targets use —
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size, warm_up_time,
//! measurement_time, throughput, bench_function, bench_with_input, finish}`,
//! `BenchmarkId`, `Throughput`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — as a plain wall-clock
//! harness. Each benchmark runs one warm-up call and then a capped number of
//! timed samples; the mean, min and (when a throughput was declared) MB/s are
//! printed to stdout. There is no statistics engine, HTML report, or
//! comparison baseline: the targets exist to measure and to guard against
//! harness regressions, and the stub keeps them runnable offline.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Declared throughput of one benchmark, used to derive rates from times.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Creates an id from a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    measurement: Duration,
    /// Mean and minimum per-iteration time of the last `iter` call.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then up to `samples` timed calls
    /// (stopping early once the measurement budget is spent).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let budget = self.measurement;
        let started = Instant::now();
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut n = 0usize;
        while n < self.samples {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
            n += 1;
            if started.elapsed() > budget && n >= 3 {
                break;
            }
        }
        self.result = Some((total / n.max(1) as u32, min));
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
    sample_size: usize,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the target number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up budget (the stub always runs exactly one warm-up
    /// call; accepted for API compatibility).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size.max(1),
            measurement: self.measurement,
            result: None,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size.max(1),
            measurement: self.measurement,
            result: None,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let Some((mean, min)) = bencher.result else {
            println!("{}/{}: no measurement (closure never called iter)", self.name, id.id);
            return;
        };
        let mut line = format!(
            "{}/{}: mean {} (min {})",
            self.name,
            id.id,
            format_duration(mean),
            format_duration(min)
        );
        if let Some(tp) = self.throughput {
            let per_sec = |n: u64| n as f64 / mean.as_secs_f64().max(1e-12);
            match tp {
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  [{:.1} MB/s]", per_sec(n) / 1e6));
                }
                Throughput::Elements(n) => {
                    line.push_str(&format!("  [{:.0} elem/s]", per_sec(n)));
                }
            }
        }
        println!("{line}");
    }

    /// Finishes the group (reports are printed eagerly; nothing to flush).
    pub fn finish(self) {}
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
            sample_size: 10,
            measurement: Duration::from_secs(3),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_the_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(3).measurement_time(Duration::from_millis(50));
        group.throughput(Throughput::Bytes(1024));
        let mut calls = 0u32;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls >= 2, "warm-up plus at least one sample, got {calls}");
    }
}
