//! Stub implementation of `serde_derive` for an offline build environment.
//!
//! Parses the deriving item with a hand-rolled token walker (no `syn`/`quote`
//! available) and generates an implementation of the vendored `serde`
//! facade's traits: [`Serialize`] builds a `serde::Value` tree (rendered to
//! JSON by the vendored `serde_json`), [`Deserialize`] is a marker impl.
//!
//! Supported shapes — everything this workspace actually derives on:
//! named-field structs, tuple structs (newtype and longer), unit structs, and
//! enums with unit / tuple / struct variants. The only field attribute in use
//! is `#[serde(skip)]`, which omits the field from serialization. Generics
//! are not supported and produce a compile error naming the offending type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String, // field name, or tuple index as a string
    skip: bool,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Named(Vec<Field>),
    Tuple(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<Variant> },
}

/// True when an attribute group body is exactly `serde(... skip ...)`.
fn is_serde_skip(stream: TokenStream) -> bool {
    let mut iter = stream.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match iter.next() {
        Some(TokenTree::Group(g)) => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

/// Consumes leading attributes (`#[...]`), returning whether any was
/// `#[serde(skip)]`.
fn eat_attrs(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut skip = false;
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    if is_serde_skip(g.stream()) {
                        skip = true;
                    }
                }
            }
            _ => return skip,
        }
    }
}

/// Consumes an optional visibility (`pub`, `pub(crate)`, ...).
fn eat_visibility(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

/// Parses `{ field: Ty, ... }` contents into named fields.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        let skip = eat_attrs(&mut tokens);
        eat_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive stub: unexpected token in fields: {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive stub: expected ':' after field name, got {other:?}"),
        }
        // Skip the type: commas inside angle brackets are not separators.
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            match &tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(Field { name, skip });
    }
    fields
}

/// Parses `( Ty, Ty, ... )` contents into positional fields.
fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    let mut index = 0usize;
    loop {
        if tokens.peek().is_none() {
            break;
        }
        let skip = eat_attrs(&mut tokens);
        eat_visibility(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        let mut angle_depth = 0i32;
        let mut saw_any = false;
        for tok in tokens.by_ref() {
            saw_any = true;
            match &tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        if saw_any {
            fields.push(Field { name: index.to_string(), skip });
            index += 1;
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        eat_attrs(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive stub: unexpected token in enum body: {other:?}"),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = match tokens.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = match tokens.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                Shape::Tuple(parse_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        for tok in tokens.by_ref() {
            if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    eat_attrs(&mut tokens);
    eat_visibility(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected struct/enum, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }
    match kind.as_str() {
        "struct" => {
            let shape = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("serde_derive stub: unexpected struct body: {other:?}"),
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let body = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive stub: unexpected enum body: {other:?}"),
            };
            Item::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("serde_derive stub: cannot derive for `{other}`"),
    }
}

fn named_fields_expr(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let mut out = String::from("{ let mut __fields: Vec<(String, ::serde::Value)> = Vec::new(); ");
    for f in fields.iter().filter(|f| !f.skip) {
        out.push_str(&format!(
            "__fields.push((String::from(\"{}\"), ::serde::Serialize::serialize({})));",
            f.name,
            access(&f.name)
        ));
    }
    out.push_str(" ::serde::Value::Object(__fields) }");
    out
}

fn tuple_fields_expr(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
    if live.len() == 1 {
        return format!("::serde::Serialize::serialize({})", access(&live[0].name));
    }
    let items: Vec<String> = live
        .iter()
        .map(|f| format!("::serde::Serialize::serialize({})", access(&f.name)))
        .collect();
    format!("::serde::Value::Array(vec![{}])", items.join(", "))
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (name, body) = match &item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Named(fields) => named_fields_expr(fields, |f| format!("&self.{f}")),
                Shape::Tuple(fields) => tuple_fields_expr(fields, |f| format!("&self.{f}")),
            };
            (name.clone(), body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(String::from(\"{v}\")),",
                        v = v.name
                    )),
                    Shape::Named(fields) => {
                        let bindings: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let inner = named_fields_expr(fields, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![(String::from(\"{v}\"), {inner})]),",
                            v = v.name,
                            binds = bindings.join(", ")
                        ));
                    }
                    Shape::Tuple(fields) => {
                        let bindings: Vec<String> =
                            fields.iter().map(|f| format!("__f{}", f.name)).collect();
                        let inner = tuple_fields_expr(fields, |f| format!("__f{f}"));
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => ::serde::Value::Object(vec![(String::from(\"{v}\"), {inner})]),",
                            v = v.name,
                            binds = bindings.join(", ")
                        ));
                    }
                }
            }
            (name.clone(), format!("match self {{ {arms} }}"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n    fn serialize(&self) -> ::serde::Value {{ {body} }}\n}}"
    )
    .parse()
    .expect("serde_derive stub: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = match &item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name.clone(),
    };
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("serde_derive stub: generated Deserialize impl failed to parse")
}
