//! The single source of truth for the gated benchmark suites.
//!
//! Every place that needs "the list of suites" derives it from this table
//! instead of keeping its own copy: the `repro suites` subcommand prints
//! it, CI's per-suite determinism legs and the `refresh-baseline` coverage
//! check shell over that output, and `repro`'s usage/error text names the
//! prefixes. Adding a suite is one row here (plus its metrics and baseline
//! entries) — the workflow scripts pick it up without a YAML edit, and the
//! `every_metric_prefix_is_a_registered_suite` test in [`crate::metrics`]
//! fails any collector/table drift.

/// One gated metric prefix, with the `repro` invocation (if any) whose
/// output the CI determinism leg `cmp`s across two fresh runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuiteSpec {
    /// The metric-key prefix: every gate metric named `<prefix>.<rest>` in
    /// `bench_baseline.json` belongs to this suite.
    pub prefix: &'static str,
    /// The `repro` arguments that dump this suite deterministically, or
    /// `None` for prefixes gated through `bench-json` alone (re-simulating
    /// them for a dedicated dump would add minutes for no extra coverage).
    /// Targets must write nothing host-dependent to stdout — the
    /// fleet-scale row uses `--json -` because its *text* report prints
    /// wall-clock time.
    pub determinism_target: Option<&'static str>,
}

/// Every suite prefix the committed baseline carries, in collection order.
pub const SUITES: &[SuiteSpec] = &[
    SuiteSpec { prefix: "fig6", determinism_target: None },
    SuiteSpec { prefix: "fleet8", determinism_target: None },
    SuiteSpec { prefix: "hetero", determinism_target: None },
    SuiteSpec { prefix: "gc", determinism_target: None },
    SuiteSpec { prefix: "restore", determinism_target: Some("restore") },
    SuiteSpec { prefix: "schedule", determinism_target: Some("schedule") },
    SuiteSpec { prefix: "faults", determinism_target: Some("faults") },
    SuiteSpec {
        prefix: "fleetscale",
        determinism_target: Some("fleet-scale --clients 10000 --json -"),
    },
    SuiteSpec {
        prefix: "partition",
        determinism_target: Some("partition --clients 10000 --partitions 8 --json -"),
    },
    SuiteSpec { prefix: "trace", determinism_target: Some("trace --clients 10000 --json -") },
    SuiteSpec { prefix: "hist", determinism_target: None },
];

/// Finds a suite by its metric prefix.
pub fn by_prefix(prefix: &str) -> Option<&'static SuiteSpec> {
    SUITES.iter().find(|s| s.prefix == prefix)
}

/// The `repro suites` listing: one `prefix<TAB>target` line per suite,
/// with `-` standing in for "no dedicated dump target". Tab-separated so
/// shell consumers can `cut -f1` / `read -r prefix target` without
/// quoting trouble.
pub fn render_table() -> String {
    let mut out = String::new();
    for suite in SUITES {
        out.push_str(suite.prefix);
        out.push('\t');
        out.push_str(suite.determinism_target.unwrap_or("-"));
        out.push('\n');
    }
    out
}

/// The suite prefixes joined for usage/error text.
pub fn prefix_list() -> String {
    SUITES.iter().map(|s| s.prefix).collect::<Vec<_>>().join("|")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefixes_are_unique_and_resolvable() {
        let names: std::collections::HashSet<&str> = SUITES.iter().map(|s| s.prefix).collect();
        assert_eq!(names.len(), SUITES.len(), "duplicate suite prefix");
        for suite in SUITES {
            assert_eq!(by_prefix(suite.prefix), Some(suite));
        }
        assert_eq!(by_prefix("nonexistent"), None);
    }

    #[test]
    fn table_renders_one_tab_separated_line_per_suite() {
        let table = render_table();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), SUITES.len());
        for (line, suite) in lines.iter().zip(SUITES) {
            let (prefix, target) = line.split_once('\t').expect("tab-separated");
            assert_eq!(prefix, suite.prefix);
            assert_eq!(target, suite.determinism_target.unwrap_or("-"));
            assert!(!target.is_empty());
        }
    }

    #[test]
    fn determinism_targets_dump_machine_comparable_output() {
        // `cmp`-able means nothing host-dependent on stdout: the only
        // suite whose text report prints wall-clock time must dump JSON.
        let fleetscale = by_prefix("fleetscale").expect("fleetscale row");
        assert!(fleetscale.determinism_target.expect("has target").contains("--json -"));
        // Same story for the partition runner (its merged dump is the
        // byte-comparable artefact; the text report prints wall time).
        let partition = by_prefix("partition").expect("partition row");
        assert!(partition.determinism_target.expect("has target").contains("--json -"));
        // And for the trace-overhead suite, whose text report compares
        // traced vs traceless wall time.
        let trace = by_prefix("trace").expect("trace row");
        assert!(trace.determinism_target.expect("has target").contains("--json -"));
    }

    #[test]
    fn prefix_list_names_every_suite() {
        let list = prefix_list();
        for suite in SUITES {
            assert!(list.contains(suite.prefix), "{} missing from {list}", suite.prefix);
        }
    }
}
