//! `repro` — regenerate every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro [all|table1|fig1|fig2|fig3|fig4|fig5|fig6a|fig6b|fig6c|arch|fleet|hetero|restore|schedule|faults] [--reps N] [--json PATH]
//! repro fleet-scale [--clients N] [--json PATH] [--capture PATH]
//! repro replay --capture PATH [--link PRESET | --profile SERVICE] [--json PATH] [--metrics PATH]
//! repro partition [--clients N] [--partitions K] [--capture PATH] [--json PATH]
//! repro trace [--clients N] [--json PATH]
//! repro suites
//! repro bench-json [PATH]
//! ```
//!
//! Every flag goes through the shared [`cloudbench_bench::cli`] surface:
//! `--json PATH` (on `restore`, `schedule`, `faults`, `fleet-scale`,
//! `replay`, `partition` and `trace`) additionally dumps the suite struct
//! as deterministic JSON, with `-` streaming the JSON to stdout *instead
//! of* the text report (what the CI determinism legs `cmp`); counted flags
//! like `--clients N` reject missing/malformed/zero values with the usage
//! text and exit code 2 everywhere instead of silently falling back.
//!
//! Each target runs the corresponding experiment on the simulated substrate
//! and prints the same rows/series the paper reports. Absolute values differ
//! from the 2013 testbed; EXPERIMENTS.md records the paper-vs-measured
//! comparison for every target.
//!
//! Beyond the paper, `fleet` prints the multi-tenant fleet scaling suite,
//! `hetero` runs the heterogeneous scenario matrix (mixed service profiles ×
//! mixed access links × churn, against eager- and mark-sweep-collected
//! stores), `restore` runs the download/restore suite (downloader slots
//! pulling other users' content back through asymmetric links), `schedule`
//! runs the temporal suite (think-time distributions, idle rounds and
//! arrival jitter on a virtual clock, with start-up delay distributions,
//! the concurrency high-water mark and the background-vs-payload split),
//! `faults` runs the fault-injection suite (identical seeded link-outage
//! schedules per access-link preset, replayed under every retry policy plus
//! a fault-free control, with resumable upload sessions and SHA-256
//! validated ranged restores), `fleet-scale` drives `--clients` (default
//! 100 000) lightweight clients through the discrete-event engine against
//! the sharded store — commits per virtual second, concurrency peak,
//! population-scale dedup and the server load curve, with `--json PATH`
//! dumping the suite deterministically for the CI fleet-scale determinism
//! leg and `--capture PATH` recording the workload as a versioned JSONL
//! capture — `replay` re-drives such a capture through the event heap
//! (same mix by default: bit-identical metrics; `--link`/`--profile`
//! remap every client for the paper-style A/B comparison, with
//! `--metrics PATH` dumping the replayed gate metrics for `bench_gate
//! --subset`), `partition` runs the worker-sharded partition mode —
//! `--partitions K` disjoint client sets (round-robin stripes over a live
//! population, contiguous capture slices with `--capture PATH`) driven
//! concurrently against one shared store and merged back bit-identically,
//! with `--json PATH` dumping only the *merged* suite so dumps `cmp` equal
//! across partition counts and against `fleet-scale` — `trace` runs the
//! trace-overhead suite (the fleet-scale population with the sharded
//! packet capture off and on, asserting the traced run's data is
//! bit-identical and reporting the capture's packet/flow/overhead
//! figures) — `suites` prints the gated suite table CI scripts iterate
//! over, and `bench-json` dumps the deterministic gate metrics as flat
//! JSON (to PATH, default stdout) for the CI bench-regression gate.
//! `fleet-scale` and `trace` are not part of `all`: at the default
//! population they run for minutes, not seconds.

use cloudbench::architecture::discover_architecture;
use cloudbench::benchmarks::run_performance_suite;
use cloudbench::capability::{
    compression_series, delta_encoding_series, syn_series, CapabilityMatrix,
};
use cloudbench::fleet::{run_fleet_scaling, FLEET_SIZES};
use cloudbench::idle::idle_traffic_series;
use cloudbench::report::{Fig6Metric, Report};
use cloudbench::testbed::Testbed;
use cloudbench::{FileKind, Provider, ServiceProfile};
use cloudbench_bench::cli::{
    die_usage, emit, parse_clients, parse_count, parse_path, print_report, write_payload,
};
use cloudbench_bench::{BENCH_REPETITIONS, REPRO_SEED};
use cloudsim_geo::ResolverFleet;
use cloudsim_services::capture::{parse_capture, render_capture, ReplayMix};
use cloudsim_services::AccessLink;

fn table1(testbed: &Testbed) {
    let matrix = CapabilityMatrix::detect_all(testbed);
    print_report(&Report::table1(&matrix));
}

fn fig1(testbed: &Testbed) {
    let series = idle_traffic_series(testbed);
    print_report(&Report::figure1(&series));
}

fn fig2() {
    let fleet = ResolverFleet::paper_scale();
    let reports: Vec<_> =
        Provider::ALL.iter().map(|p| discover_architecture(*p, &fleet, REPRO_SEED)).collect();
    let refs: Vec<&_> = reports.iter().collect();
    print_report(&Report::figure2(&refs));
}

fn fig3(testbed: &Testbed) {
    let series: Vec<(String, Vec<(f64, u64)>)> =
        [ServiceProfile::google_drive(), ServiceProfile::cloud_drive()]
            .iter()
            .map(|p| (p.name().to_string(), syn_series(testbed, p)))
            .collect();
    print_report(&Report::figure3(&series));
}

fn fig4(testbed: &Testbed) {
    let append_sizes: Vec<u64> = vec![100_000, 500_000, 1_000_000, 1_500_000, 2_000_000];
    let random_sizes: Vec<u64> =
        vec![1_000_000, 2_000_000, 4_000_000, 6_000_000, 8_000_000, 10_000_000];
    for (case, sizes, random) in
        [("append", &append_sizes, false), ("random offset", &random_sizes, true)]
    {
        let series: Vec<(String, Vec<_>)> = ServiceProfile::all()
            .iter()
            .map(|p| (p.name().to_string(), delta_encoding_series(testbed, p, sizes, random)))
            .collect();
        print_report(&Report::figure4(&series, case));
    }
}

fn fig5(testbed: &Testbed) {
    let sizes: Vec<u64> = vec![100_000, 500_000, 1_000_000, 1_500_000, 2_000_000];
    for (kind, label) in [
        (FileKind::Text, "random readable text"),
        (FileKind::RandomBinary, "random bytes"),
        (FileKind::FakeJpeg, "fake JPEGs"),
    ] {
        let series: Vec<(String, Vec<_>)> = ServiceProfile::all()
            .iter()
            .map(|p| (p.name().to_string(), compression_series(testbed, p, kind, &sizes)))
            .collect();
        print_report(&Report::figure5(&series, label));
    }
}

fn fleet() {
    let suite = run_fleet_scaling(&ServiceProfile::dropbox(), &FLEET_SIZES, REPRO_SEED);
    print_report(&Report::fleet_scaling(&suite));
}

fn hetero() {
    let suite =
        cloudbench::hetero::run_hetero(cloudbench_bench::metrics::HETERO_CLIENTS, REPRO_SEED);
    print_report(&Report::heterogeneous(&suite));
}

fn restore(json: Option<&str>) {
    let suite =
        cloudbench::restore::run_restore(cloudbench_bench::metrics::RESTORE_CLIENTS, REPRO_SEED);
    emit(&Report::restore(&suite), json, &Report::to_json(&suite), "the restore suite");
}

fn schedule(json: Option<&str>) {
    let suite =
        cloudbench::schedule::run_schedule(cloudbench_bench::metrics::SCHEDULE_CLIENTS, REPRO_SEED);
    emit(&Report::schedule(&suite), json, &Report::to_json(&suite), "the schedule suite");
}

fn faults(json: Option<&str>) {
    let suite = cloudbench::faults::run_faults(REPRO_SEED);
    emit(&Report::faults(&suite), json, &Report::to_json(&suite), "the faults suite");
}

fn fleet_scale(clients: usize, json: Option<&str>, capture: Option<&str>) {
    let suite = cloudbench::scale::run_fleet_scale(clients, REPRO_SEED);
    emit(&Report::fleet_scale(&suite), json, &Report::to_json(&suite), "the fleet-scale suite");
    if let Some(path) = capture {
        let spec = cloudbench::scale::scale_spec(clients, REPRO_SEED);
        write_payload(path, &render_capture(&spec), "the fleet-scale workload capture");
    }
}

fn trace(args: &[String]) {
    let clients = parse_clients(args, &usage());
    let json = parse_path(args, "--json", &usage());
    let suite = cloudbench::trace_overhead::run_trace_overhead(clients, REPRO_SEED);
    emit(
        &Report::trace_overhead(&suite),
        json,
        &Report::to_json(&suite),
        "the trace-overhead suite",
    );
}

fn replay(args: &[String]) {
    let Some(capture_path) = parse_path(args, "--capture", &usage()) else {
        die_usage(
            "repro replay needs --capture PATH \
             (record one with `repro fleet-scale --capture PATH`)",
            &usage(),
        );
    };
    let text = std::fs::read_to_string(capture_path).unwrap_or_else(|e| {
        eprintln!("cannot read {capture_path}: {e}");
        std::process::exit(2);
    });
    let capture = parse_capture(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {capture_path}: {e}");
        std::process::exit(2);
    });

    let mix = match (parse_path(args, "--link", &usage()), parse_path(args, "--profile", &usage()))
    {
        (Some(_), Some(_)) => {
            die_usage("--link and --profile are mutually exclusive", &usage());
        }
        (Some(name), None) => ReplayMix::Link(AccessLink::by_name(name).unwrap_or_else(|| {
            let valid: Vec<&str> = AccessLink::all().iter().map(|l| l.name).collect();
            die_usage(
                &format!("unknown link preset '{name}' (valid: {})", valid.join(", ")),
                &usage(),
            );
        })),
        (None, Some(name)) => {
            let wanted = name.to_lowercase();
            let profile = ServiceProfile::all()
                .into_iter()
                .find(|p| p.name().to_lowercase().replace(' ', "_") == wanted)
                .unwrap_or_else(|| {
                    let valid: Vec<String> = ServiceProfile::all()
                        .iter()
                        .map(|p| p.name().to_lowercase().replace(' ', "_"))
                        .collect();
                    die_usage(
                        &format!("unknown service profile '{name}' (valid: {})", valid.join(", ")),
                        &usage(),
                    );
                });
            ReplayMix::Profile(profile)
        }
        (None, None) => ReplayMix::Original,
    };

    let suite = cloudbench::scale::replay_fleet_scale(&capture, &mix).unwrap_or_else(|e| {
        eprintln!("replay failed: {e}");
        std::process::exit(1);
    });
    emit(
        &Report::fleet_scale(&suite),
        parse_path(args, "--json", &usage()),
        &Report::to_json(&suite),
        "the replayed fleet-scale suite",
    );
    if let Some(path) = parse_path(args, "--metrics", &usage()) {
        let metrics = cloudbench_bench::metrics::scale_suite_metrics(&suite);
        let rendered = cloudbench_bench::gate::render_flat(&metrics);
        write_payload(path, &rendered, "the replayed gate metrics");
    }
}

fn partition(args: &[String]) {
    let partitions = parse_count(args, "--partitions", 4, &usage());
    let json = parse_path(args, "--json", &usage());

    let suite = match parse_path(args, "--capture", &usage()) {
        Some(capture_path) => {
            let text = std::fs::read_to_string(capture_path).unwrap_or_else(|e| {
                eprintln!("cannot read {capture_path}: {e}");
                std::process::exit(2);
            });
            let capture = parse_capture(&text).unwrap_or_else(|e| {
                eprintln!("cannot parse {capture_path}: {e}");
                std::process::exit(2);
            });
            cloudbench::partition::replay_partition_suite(&capture, partitions).unwrap_or_else(
                |e| {
                    eprintln!("partitioned replay failed: {e}");
                    std::process::exit(2);
                },
            )
        }
        None => {
            let clients = parse_clients(args, &usage());
            if partitions > clients {
                die_usage(
                    &format!("cannot cut {clients} clients into {partitions} non-empty partitions"),
                    &usage(),
                );
            }
            cloudbench::partition::run_partition_suite(clients, partitions, REPRO_SEED)
        }
    };

    // The JSON dump carries only the *merged* suite — bit-identical across
    // partition counts and against `repro fleet-scale --json`, which is
    // exactly what the CI partition-determinism leg `cmp`s. The text report
    // adds the per-partition split accounting on top.
    if json != Some("-") {
        print_report(&Report::partition(&suite));
        print_report(&Report::fleet_scale(&suite.merged));
    }
    if let Some(path) = json {
        write_payload(path, &Report::to_json(&suite.merged), "the merged partitioned suite");
    }
}

fn bench_json(path: Option<&str>) {
    let metrics = cloudbench_bench::metrics::collect();
    let rendered = cloudbench_bench::gate::render_flat(&metrics);
    match path {
        Some(path) => {
            std::fs::write(path, &rendered).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {} metrics to {path}", metrics.len());
        }
        None => print!("{rendered}"),
    }
}

fn fig6(testbed: &Testbed, reps: usize, metric: Option<Fig6Metric>) {
    let suite = run_performance_suite(testbed, reps);
    let metrics = match metric {
        Some(m) => vec![m],
        None => vec![Fig6Metric::Startup, Fig6Metric::Completion, Fig6Metric::Overhead],
    };
    for m in metrics {
        print_report(&Report::figure6(&suite, m));
    }
}

/// The usage text of the error path. The suite list is derived from the
/// shared table, so `repro` never advertises a stale set.
fn usage() -> String {
    format!(
        "usage: repro [all|table1|fig1|fig2|fig3|fig4|fig5|fig6|fig6a|fig6b|fig6c|arch|fleet|hetero|restore|schedule|faults] [--reps N] [--json PATH]\n       \
         repro fleet-scale [--clients N] [--json PATH] [--capture PATH]\n       \
         repro replay --capture PATH [--link PRESET | --profile SERVICE] [--json PATH] [--metrics PATH]\n       \
         repro partition [--clients N] [--partitions K] [--capture PATH] [--json PATH]\n       \
         repro trace [--clients N] [--json PATH]\n       \
         repro suites\n       \
         repro bench-json [PATH]\n\
         gated suites (see `repro suites`): {}",
        cloudbench_bench::suites::prefix_list()
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let target = args.first().map(|s| s.as_str()).unwrap_or("all");
    let reps = parse_count(&args, "--reps", BENCH_REPETITIONS, &usage());
    let json = parse_path(&args, "--json", &usage());
    let testbed = Testbed::new(REPRO_SEED);

    match target {
        "table1" => table1(&testbed),
        "fig1" => fig1(&testbed),
        "fig2" | "arch" => fig2(),
        "fig3" => fig3(&testbed),
        "fig4" => fig4(&testbed),
        "fig5" => fig5(&testbed),
        "fig6a" => fig6(&testbed, reps, Some(Fig6Metric::Startup)),
        "fig6b" => fig6(&testbed, reps, Some(Fig6Metric::Completion)),
        "fig6c" => fig6(&testbed, reps, Some(Fig6Metric::Overhead)),
        "fig6" => fig6(&testbed, reps, None),
        "fleet" => fleet(),
        "hetero" => hetero(),
        "restore" => restore(json),
        "schedule" => schedule(json),
        "faults" => faults(json),
        "fleet-scale" => {
            fleet_scale(
                parse_clients(&args, &usage()),
                json,
                parse_path(&args, "--capture", &usage()),
            );
        }
        "replay" => replay(&args),
        "partition" => partition(&args),
        "trace" => trace(&args),
        "suites" => print!("{}", cloudbench_bench::suites::render_table()),
        "bench-json" => bench_json(args.get(1).map(String::as_str)),
        "all" => {
            table1(&testbed);
            fig1(&testbed);
            fig2();
            fig3(&testbed);
            fig4(&testbed);
            fig5(&testbed);
            fig6(&testbed, reps, None);
            fleet();
            hetero();
            restore(None);
            schedule(None);
            faults(None);
        }
        other => {
            die_usage(&format!("unknown target '{other}'"), &usage());
        }
    }
}
