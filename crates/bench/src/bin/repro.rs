//! `repro` — regenerate every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro [all|table1|fig1|fig2|fig3|fig4|fig5|fig6a|fig6b|fig6c|arch|fleet|hetero|restore|schedule|faults] [--reps N]
//! repro fleet-scale [--clients N] [--json PATH]
//! repro bench-json [PATH]
//! ```
//!
//! Each target runs the corresponding experiment on the simulated substrate
//! and prints the same rows/series the paper reports. Absolute values differ
//! from the 2013 testbed; EXPERIMENTS.md records the paper-vs-measured
//! comparison for every target.
//!
//! Beyond the paper, `fleet` prints the multi-tenant fleet scaling suite,
//! `hetero` runs the heterogeneous scenario matrix (mixed service profiles ×
//! mixed access links × churn, against eager- and mark-sweep-collected
//! stores), `restore` runs the download/restore suite (downloader slots
//! pulling other users' content back through asymmetric links), `schedule`
//! runs the temporal suite (think-time distributions, idle rounds and
//! arrival jitter on a virtual clock, with start-up delay distributions,
//! the concurrency high-water mark and the background-vs-payload split),
//! `faults` runs the fault-injection suite (identical seeded link-outage
//! schedules per access-link preset, replayed under every retry policy plus
//! a fault-free control, with resumable upload sessions and SHA-256
//! validated ranged restores), `fleet-scale` drives `--clients` (default
//! 100 000) lightweight clients through the discrete-event engine against
//! the sharded store — commits per virtual second, concurrency peak,
//! population-scale dedup and the server load curve, with `--json PATH`
//! dumping the suite deterministically for the CI fleet-scale determinism
//! leg — and `bench-json` dumps the deterministic gate metrics as flat
//! JSON (to PATH, default stdout) for the CI bench-regression gate.
//! `fleet-scale` is not part of `all`: at the default population it runs
//! for minutes, not seconds.

use cloudbench::architecture::discover_architecture;
use cloudbench::benchmarks::run_performance_suite;
use cloudbench::capability::{
    compression_series, delta_encoding_series, syn_series, CapabilityMatrix,
};
use cloudbench::fleet::{run_fleet_scaling, FLEET_SIZES};
use cloudbench::idle::idle_traffic_series;
use cloudbench::report::{Fig6Metric, Report};
use cloudbench::testbed::Testbed;
use cloudbench::{FileKind, Provider, ServiceProfile};
use cloudbench_bench::{BENCH_REPETITIONS, REPRO_SEED};
use cloudsim_geo::ResolverFleet;

fn print_report(report: &Report) {
    println!("==== {} ====", report.title);
    println!("{}", report.body);
}

fn table1(testbed: &Testbed) {
    let matrix = CapabilityMatrix::detect_all(testbed);
    print_report(&Report::table1(&matrix));
}

fn fig1(testbed: &Testbed) {
    let series = idle_traffic_series(testbed);
    print_report(&Report::figure1(&series));
}

fn fig2() {
    let fleet = ResolverFleet::paper_scale();
    let reports: Vec<_> =
        Provider::ALL.iter().map(|p| discover_architecture(*p, &fleet, REPRO_SEED)).collect();
    let refs: Vec<&_> = reports.iter().collect();
    print_report(&Report::figure2(&refs));
}

fn fig3(testbed: &Testbed) {
    let series: Vec<(String, Vec<(f64, u64)>)> =
        [ServiceProfile::google_drive(), ServiceProfile::cloud_drive()]
            .iter()
            .map(|p| (p.name().to_string(), syn_series(testbed, p)))
            .collect();
    print_report(&Report::figure3(&series));
}

fn fig4(testbed: &Testbed) {
    let append_sizes: Vec<u64> = vec![100_000, 500_000, 1_000_000, 1_500_000, 2_000_000];
    let random_sizes: Vec<u64> =
        vec![1_000_000, 2_000_000, 4_000_000, 6_000_000, 8_000_000, 10_000_000];
    for (case, sizes, random) in
        [("append", &append_sizes, false), ("random offset", &random_sizes, true)]
    {
        let series: Vec<(String, Vec<_>)> = ServiceProfile::all()
            .iter()
            .map(|p| (p.name().to_string(), delta_encoding_series(testbed, p, sizes, random)))
            .collect();
        print_report(&Report::figure4(&series, case));
    }
}

fn fig5(testbed: &Testbed) {
    let sizes: Vec<u64> = vec![100_000, 500_000, 1_000_000, 1_500_000, 2_000_000];
    for (kind, label) in [
        (FileKind::Text, "random readable text"),
        (FileKind::RandomBinary, "random bytes"),
        (FileKind::FakeJpeg, "fake JPEGs"),
    ] {
        let series: Vec<(String, Vec<_>)> = ServiceProfile::all()
            .iter()
            .map(|p| (p.name().to_string(), compression_series(testbed, p, kind, &sizes)))
            .collect();
        print_report(&Report::figure5(&series, label));
    }
}

fn fleet() {
    let suite = run_fleet_scaling(&ServiceProfile::dropbox(), &FLEET_SIZES, REPRO_SEED);
    print_report(&Report::fleet_scaling(&suite));
}

fn hetero() {
    let suite =
        cloudbench::hetero::run_hetero(cloudbench_bench::metrics::HETERO_CLIENTS, REPRO_SEED);
    print_report(&Report::heterogeneous(&suite));
}

fn restore() {
    let suite =
        cloudbench::restore::run_restore(cloudbench_bench::metrics::RESTORE_CLIENTS, REPRO_SEED);
    print_report(&Report::restore(&suite));
}

fn schedule() {
    let suite =
        cloudbench::schedule::run_schedule(cloudbench_bench::metrics::SCHEDULE_CLIENTS, REPRO_SEED);
    print_report(&Report::schedule(&suite));
}

fn faults() {
    let suite = cloudbench::faults::run_faults(REPRO_SEED);
    print_report(&Report::faults(&suite));
}

fn fleet_scale(clients: usize, json: Option<&str>) {
    let suite = cloudbench::scale::run_fleet_scale(clients, REPRO_SEED);
    print_report(&Report::fleet_scale(&suite));
    if let Some(path) = json {
        std::fs::write(path, Report::to_json(&suite)).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote the fleet-scale suite to {path}");
    }
}

fn bench_json(path: Option<&str>) {
    let metrics = cloudbench_bench::metrics::collect();
    let rendered = cloudbench_bench::gate::render_flat(&metrics);
    match path {
        Some(path) => {
            std::fs::write(path, &rendered).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {} metrics to {path}", metrics.len());
        }
        None => print!("{rendered}"),
    }
}

fn fig6(testbed: &Testbed, reps: usize, metric: Option<Fig6Metric>) {
    let suite = run_performance_suite(testbed, reps);
    let metrics = match metric {
        Some(m) => vec![m],
        None => vec![Fig6Metric::Startup, Fig6Metric::Completion, Fig6Metric::Overhead],
    };
    for m in metrics {
        print_report(&Report::figure6(&suite, m));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let target = args.first().map(|s| s.as_str()).unwrap_or("all");
    let reps = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(BENCH_REPETITIONS);
    let testbed = Testbed::new(REPRO_SEED);

    match target {
        "table1" => table1(&testbed),
        "fig1" => fig1(&testbed),
        "fig2" | "arch" => fig2(),
        "fig3" => fig3(&testbed),
        "fig4" => fig4(&testbed),
        "fig5" => fig5(&testbed),
        "fig6a" => fig6(&testbed, reps, Some(Fig6Metric::Startup)),
        "fig6b" => fig6(&testbed, reps, Some(Fig6Metric::Completion)),
        "fig6c" => fig6(&testbed, reps, Some(Fig6Metric::Overhead)),
        "fig6" => fig6(&testbed, reps, None),
        "fleet" => fleet(),
        "hetero" => hetero(),
        "restore" => restore(),
        "schedule" => schedule(),
        "faults" => faults(),
        "fleet-scale" => {
            let clients = args
                .iter()
                .position(|a| a == "--clients")
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
                .unwrap_or(100_000);
            let json = args
                .iter()
                .position(|a| a == "--json")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str);
            fleet_scale(clients, json);
        }
        "bench-json" => bench_json(args.get(1).map(String::as_str)),
        "all" => {
            table1(&testbed);
            fig1(&testbed);
            fig2();
            fig3(&testbed);
            fig4(&testbed);
            fig5(&testbed);
            fig6(&testbed, reps, None);
            fleet();
            hetero();
            restore();
            schedule();
            faults();
        }
        other => {
            eprintln!("unknown target '{other}'");
            eprintln!("usage: repro [all|table1|fig1|fig2|fig3|fig4|fig5|fig6|fig6a|fig6b|fig6c|arch|fleet|hetero|restore|schedule|faults] [--reps N]");
            eprintln!("       repro fleet-scale [--clients N] [--json PATH]");
            eprintln!("       repro bench-json [PATH]");
            std::process::exit(2);
        }
    }
}
