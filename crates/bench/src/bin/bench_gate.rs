//! `bench_gate` — the CI bench-regression gate.
//!
//! Usage:
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [--tolerance 0.15] [--strict] [--subset] [--markdown PATH]
//! ```
//!
//! Both files are flat `{"metric": number, …}` objects as produced by
//! `repro bench-json`. Every baseline metric must be present in the current
//! run and within the relative tolerance; new metrics in the current run are
//! reported but do not fail the gate (they become binding once the baseline
//! is refreshed). Exits 0 on pass, 1 on regression, 2 on usage errors.
//!
//! `--strict` additionally enforces baseline *hygiene*: a metric present in
//! the current run with no baseline entry fails the gate instead of being
//! reported informationally. Without this, an unregistered metric passes
//! the ±tolerance comparison forever by never being compared — CI runs the
//! gate strict so every new metric lands together with its baseline entry.
//!
//! `--subset` scopes the comparison to the baseline keys the current file
//! actually contains, instead of failing the absent ones as MISSING. This
//! is the mode for partial dumps: the CI replay-gate leg compares `repro
//! replay --metrics` (fleet-scale keys only) against the full committed
//! baseline at `--tolerance 0`, proving the replayed capture reproduces
//! the gated values exactly. `--strict` still rejects current keys with no
//! baseline entry.
//!
//! `--markdown PATH` additionally *appends* the comparison as a markdown
//! table to PATH — pass `$GITHUB_STEP_SUMMARY` in CI so regressions are
//! readable on the run page without downloading the metrics artifact. The
//! summary is written before the pass/fail exit, so failing runs get one
//! too.
//!
//! Refresh the committed baseline after an intentional simulator change:
//!
//! ```text
//! cargo run --release -p cloudbench-bench --bin repro -- bench-json bench_baseline.json
//! ```

use cloudbench_bench::gate::{compare, compare_subset, parse_flat};

fn load(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse_flat(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 0.15f64;
    let mut strict = false;
    let mut subset = false;
    let mut markdown_path: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--strict" => {
                strict = true;
                i += 1;
            }
            "--subset" => {
                subset = true;
                i += 1;
            }
            "--tolerance" => {
                tolerance = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--tolerance needs a numeric argument");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--markdown" => {
                markdown_path = Some(args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--markdown needs a file path");
                    std::process::exit(2);
                }));
                i += 2;
            }
            _ => {
                files.push(args[i].clone());
                i += 1;
            }
        }
    }
    let [baseline_path, current_path] = files.as_slice() else {
        eprintln!(
            "usage: bench_gate <baseline.json> <current.json> [--tolerance 0.15] [--strict] [--subset] [--markdown PATH]"
        );
        std::process::exit(2);
    };

    let baseline = load(baseline_path);
    let current = load(current_path);
    // Strictness is applied before any render, so the step summary of a
    // failing strict run says FAIL and flags the unregistered metrics.
    let comparison = if subset { compare_subset } else { compare };
    let report = comparison(&baseline, &current, tolerance).with_strict(strict);
    print!("{}", report.render());
    if let Some(path) = markdown_path {
        // Append (the CI step summary may already hold earlier sections);
        // written before the exit below so failing runs get a summary too.
        use std::io::Write as _;
        let result = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(report.render_markdown().as_bytes()));
        if let Err(e) = result {
            eprintln!("cannot append markdown summary to {path}: {e}");
            std::process::exit(2);
        }
    }
    if !report.passed() {
        println!("bench gate: FAIL — refresh bench_baseline.json only for intentional changes");
        std::process::exit(1);
    }
    if strict {
        let unregistered = report.unregistered();
        if !unregistered.is_empty() {
            println!(
                "bench gate: FAIL (strict) — {} metric(s) have no baseline entry and would \
                 never be compared: {}",
                unregistered.len(),
                unregistered.join(", ")
            );
            println!("register them by refreshing bench_baseline.json in the same change");
            std::process::exit(1);
        }
    }
    println!(
        "bench gate: PASS ({} metrics within ±{:.0}%{}{})",
        report.rows.len(),
        tolerance * 100.0,
        if subset { ", subset of the baseline" } else { "" },
        if strict { ", baseline hygienic" } else { "" }
    );
}
