//! `bench_gate` — the CI bench-regression gate.
//!
//! Usage:
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [--tolerance 0.15]
//! ```
//!
//! Both files are flat `{"metric": number, …}` objects as produced by
//! `repro bench-json`. Every baseline metric must be present in the current
//! run and within the relative tolerance; new metrics in the current run are
//! reported but do not fail the gate (they become binding once the baseline
//! is refreshed). Exits 0 on pass, 1 on regression, 2 on usage errors.
//!
//! Refresh the committed baseline after an intentional simulator change:
//!
//! ```text
//! cargo run --release -p cloudbench-bench --bin repro -- bench-json bench_baseline.json
//! ```

use cloudbench_bench::gate::{compare, parse_flat};

fn load(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse_flat(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tolerance = args
        .iter()
        .position(|a| a == "--tolerance")
        .map(|i| {
            args.get(i + 1).and_then(|v| v.parse::<f64>().ok()).unwrap_or_else(|| {
                eprintln!("--tolerance needs a numeric argument");
                std::process::exit(2);
            })
        })
        .unwrap_or(0.15);
    let files: Vec<&String> = args.iter().take_while(|a| a.as_str() != "--tolerance").collect();
    let [baseline_path, current_path] = files.as_slice() else {
        eprintln!("usage: bench_gate <baseline.json> <current.json> [--tolerance 0.15]");
        std::process::exit(2);
    };

    let baseline = load(baseline_path);
    let current = load(current_path);
    let report = compare(&baseline, &current, tolerance);
    print!("{}", report.render());
    if report.passed() {
        println!("bench gate: PASS ({} metrics within ±{:.0}%)", baseline.len(), tolerance * 100.0);
    } else {
        println!("bench gate: FAIL — refresh bench_baseline.json only for intentional changes");
        std::process::exit(1);
    }
}
