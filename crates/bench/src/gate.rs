//! The bench-regression gate: flat metric files and tolerance comparison.
//!
//! The CI perf gate runs `repro bench-json` to produce a flat
//! `{"metric": number, …}` JSON file of deterministic simulation metrics and
//! compares it against the committed `bench_baseline.json` with a relative
//! tolerance. The vendored `serde_json` stub only serialises, so this module
//! carries the tiny parser the gate binary needs (flat string→number
//! objects only — exactly the shape `repro bench-json` emits).

use std::fmt::Write as _;

/// Parses a flat JSON object of string keys and finite numbers, preserving
/// key order. Rejects nesting, arrays and non-numeric values: baseline files
/// are machine-written, so anything else is a corrupted file.
pub fn parse_flat(json: &str) -> Result<Vec<(String, f64)>, String> {
    let mut chars = json.char_indices().peekable();
    let mut entries = Vec::new();

    let err = |at: usize, what: &str| Err(format!("{what} at byte {at}"));

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) {
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
    }

    skip_ws(&mut chars);
    match chars.next() {
        Some((_, '{')) => {}
        Some((i, _)) => return err(i, "expected '{'"),
        None => return Err("empty input".to_string()),
    }
    skip_ws(&mut chars);
    if matches!(chars.peek(), Some((_, '}'))) {
        return Ok(entries);
    }

    loop {
        skip_ws(&mut chars);
        // Key.
        match chars.next() {
            Some((_, '"')) => {}
            Some((i, _)) => return err(i, "expected '\"' opening a key"),
            None => return Err("unterminated object".to_string()),
        }
        let mut key = String::new();
        loop {
            match chars.next() {
                Some((_, '"')) => break,
                Some((_, '\\')) => match chars.next() {
                    Some((_, 'n')) => key.push('\n'),
                    Some((_, 't')) => key.push('\t'),
                    Some((_, c)) => key.push(c),
                    None => return Err("unterminated escape".to_string()),
                },
                Some((_, c)) => key.push(c),
                None => return Err("unterminated key".to_string()),
            }
        }
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ':')) => {}
            Some((i, _)) => return err(i, "expected ':'"),
            None => return Err("unterminated object".to_string()),
        }
        skip_ws(&mut chars);
        // Number. The charset also lexes non-finite spellings (`NaN`,
        // `inf`, `-Infinity`) so a poisoned metric fails the finiteness
        // check below with its key named, not an opaque lexer error.
        let mut number = String::new();
        while matches!(
            chars.peek(),
            Some((_, c)) if c.is_ascii_digit()
                || c.is_ascii_alphabetic()
                || matches!(c, '-' | '+' | '.')
        ) {
            number.push(chars.next().expect("peeked").1);
        }
        let value: f64 =
            number.parse().map_err(|_| format!("key {key:?}: invalid number {number:?}"))?;
        if !value.is_finite() {
            return Err(format!(
                "key {key:?}: non-finite value {number} — every gate metric must be a finite \
                 number; a NaN/inf here means the producing suite divided by zero or overflowed"
            ));
        }
        entries.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, '}')) => break,
            Some((i, _)) => return err(i, "expected ',' or '}'"),
            None => return Err("unterminated object".to_string()),
        }
    }
    Ok(entries)
}

/// Renders a flat metric list as the pretty JSON the gate parses back.
pub fn render_flat(entries: &[(String, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (key, value)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(out, "  \"{key}\": {value}{comma}");
    }
    out.push('}');
    out.push('\n');
    out
}

/// One metric's verdict in a gate comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within tolerance of the baseline.
    Ok,
    /// Outside tolerance; carries the relative deviation.
    Regressed(f64),
    /// Present in the baseline but absent from the current run.
    Missing,
    /// Present in the current run but not in the baseline (informational).
    New,
}

/// The outcome of comparing a current metric file against the baseline.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// (metric, baseline, current, verdict) rows in baseline order, then new
    /// metrics.
    pub rows: Vec<(String, Option<f64>, Option<f64>, Verdict)>,
    /// The tolerance the comparison used.
    pub tolerance: f64,
    /// Whether baseline hygiene is enforced: when true, the renders and the
    /// effective verdict treat unregistered (`New`) metrics as failures, so
    /// the step summary a failing strict run writes never reads PASS.
    pub strict: bool,
}

impl GateReport {
    /// Returns the report with strict baseline hygiene enabled: `New`
    /// verdicts count as failures in [`GateReport::effective_pass`] and are
    /// flagged by the renders.
    pub fn with_strict(mut self, strict: bool) -> GateReport {
        self.strict = strict;
        self
    }

    /// True when no metric regressed or went missing.
    pub fn passed(&self) -> bool {
        !self.rows.iter().any(|(_, _, _, v)| matches!(v, Verdict::Regressed(_) | Verdict::Missing))
    }

    /// The verdict the renders report: [`GateReport::passed_strict`] when
    /// hygiene is enforced, [`GateReport::passed`] otherwise.
    pub fn effective_pass(&self) -> bool {
        if self.strict {
            self.passed_strict()
        } else {
            self.passed()
        }
    }

    /// True when the given verdict fails this report (strictness applied).
    fn fails(&self, verdict: &Verdict) -> bool {
        match verdict {
            Verdict::Regressed(_) | Verdict::Missing => true,
            Verdict::New => self.strict,
            Verdict::Ok => false,
        }
    }

    /// Metrics present in the current run but absent from the baseline —
    /// the baseline-hygiene violations strict mode turns into failures: an
    /// unregistered metric would otherwise pass the tolerance gate forever
    /// by never being compared.
    pub fn unregistered(&self) -> Vec<&str> {
        self.rows
            .iter()
            .filter(|(_, _, _, v)| matches!(v, Verdict::New))
            .map(|(k, _, _, _)| k.as_str())
            .collect()
    }

    /// True when the comparison passes *and* the baseline is hygienic: every
    /// current metric has a baseline entry and vice versa (`Missing` already
    /// fails [`GateReport::passed`]; this additionally rejects `New`).
    pub fn passed_strict(&self) -> bool {
        self.passed() && self.unregistered().is_empty()
    }

    /// The suite prefix a metric belongs to (text before the first `.`), or
    /// `"other"` for unprefixed names — the grouping key of the markdown
    /// summary, which keeps the growing metric table readable per suite.
    fn suite_of(key: &str) -> &str {
        match key.split_once('.') {
            Some((prefix, _)) if !prefix.is_empty() => prefix,
            _ => "other",
        }
    }

    /// Renders the comparison as a fixed-width table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>14} {:>14} {:>9}  verdict (tolerance ±{:.0}%)",
            "metric",
            "baseline",
            "current",
            "delta",
            self.tolerance * 100.0
        );
        for (key, baseline, current, verdict) in &self.rows {
            let fmt =
                |v: &Option<f64>| v.map(|v| format!("{v:.4}")).unwrap_or_else(|| "-".to_string());
            let delta = match (baseline, current) {
                (Some(b), Some(c)) if *b != 0.0 => format!("{:+.1}%", (c - b) / b * 100.0),
                _ => "-".to_string(),
            };
            let verdict = match verdict {
                Verdict::Ok => "ok".to_string(),
                Verdict::Regressed(d) => format!("REGRESSED ({:+.1}%)", d * 100.0),
                Verdict::Missing => "MISSING".to_string(),
                Verdict::New => "new".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<44} {:>14} {:>14} {:>9}  {}",
                key,
                fmt(baseline),
                fmt(current),
                delta,
                verdict
            );
        }
        out
    }

    /// Renders the comparison as GitHub-flavoured markdown — what the CI
    /// job appends to `$GITHUB_STEP_SUMMARY`, so a regression is readable
    /// on the run page without downloading the metrics artifact. Metrics
    /// are grouped by suite prefix (`fig6`, `fleet8`, `fleetscale`,
    /// `hetero`, `gc`, `restore`, `schedule`, …), one table per suite, and
    /// sorted lexicographically within each suite — the collector appends
    /// in simulation order, which interleaves related keys; the summary
    /// table keeps siblings (`restore.goodput_mbps.*`, `restore.ttfb_s.*`)
    /// adjacent instead.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let verdict_cell = |v: &Verdict| match v {
            Verdict::Ok => "ok".to_string(),
            Verdict::Regressed(d) => format!("**REGRESSED** ({:+.1}%)", d * 100.0),
            Verdict::Missing => "**MISSING**".to_string(),
            // Under strict hygiene an unregistered metric is a failure and
            // must read like one on the run page.
            Verdict::New if self.strict => "**UNREGISTERED** (no baseline entry)".to_string(),
            Verdict::New => "new".to_string(),
        };
        let _ = writeln!(
            out,
            "### Bench regression gate ({}, tolerance ±{:.0}%{})\n",
            if self.effective_pass() { "PASS" } else { "FAIL" },
            self.tolerance * 100.0,
            if self.strict { ", strict baseline hygiene" } else { "" }
        );
        // Suites in first-appearance order.
        let mut suites: Vec<&str> = Vec::new();
        for (key, _, _, _) in &self.rows {
            let suite = GateReport::suite_of(key);
            if !suites.contains(&suite) {
                suites.push(suite);
            }
        }
        for suite in suites {
            let mut members: Vec<_> = self
                .rows
                .iter()
                .filter(|(key, _, _, _)| GateReport::suite_of(key) == suite)
                .collect();
            members.sort_by(|a, b| a.0.cmp(&b.0));
            let flagged = members.iter().filter(|(_, _, _, v)| self.fails(v)).count();
            let status =
                if flagged > 0 { format!(" — {flagged} flagged") } else { String::new() };
            let _ = writeln!(out, "#### `{suite}` ({} metrics{status})\n", members.len());
            let _ = writeln!(out, "| metric | baseline | observed | delta | verdict |");
            let _ = writeln!(out, "|:---|---:|---:|---:|:---|");
            for (key, baseline, current, verdict) in members {
                let fmt = |v: &Option<f64>| {
                    v.map(|v| format!("{v:.4}")).unwrap_or_else(|| "—".to_string())
                };
                let delta = match (baseline, current) {
                    (Some(b), Some(c)) if *b != 0.0 => format!("{:+.1}%", (c - b) / b * 100.0),
                    _ => "—".to_string(),
                };
                let _ = writeln!(
                    out,
                    "| `{key}` | {} | {} | {delta} | {} |",
                    fmt(baseline),
                    fmt(current),
                    verdict_cell(verdict)
                );
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Compares `current` against `baseline` with a relative tolerance: a metric
/// fails when `|current - baseline| > tolerance * max(|baseline|, ε)`.
/// Metrics missing from `current` fail; metrics new in `current` pass (they
/// become binding once the baseline is refreshed).
pub fn compare(
    baseline: &[(String, f64)],
    current: &[(String, f64)],
    tolerance: f64,
) -> GateReport {
    let mut rows = Vec::new();
    for (key, base) in baseline {
        match current.iter().find(|(k, _)| k == key) {
            Some((_, cur)) => {
                let scale = base.abs().max(1e-12);
                let deviation = (cur - base) / scale;
                let verdict = if deviation.abs() <= tolerance {
                    Verdict::Ok
                } else {
                    Verdict::Regressed(deviation)
                };
                rows.push((key.clone(), Some(*base), Some(*cur), verdict));
            }
            None => rows.push((key.clone(), Some(*base), None, Verdict::Missing)),
        }
    }
    for (key, cur) in current {
        if !baseline.iter().any(|(k, _)| k == key) {
            rows.push((key.clone(), None, Some(*cur), Verdict::New));
        }
    }
    GateReport { rows, tolerance, strict: false }
}

/// Like [`compare`], but scoped to the metrics the current run actually
/// emits: baseline keys with no current entry are skipped instead of
/// verdicted [`Verdict::Missing`]. This is the mode for partial dumps —
/// `repro replay --metrics` re-derives only the fleet-scale suite, yet the
/// values it does emit must still match the committed baseline (the CI
/// replay-gate leg runs it at zero tolerance). Current metrics with no
/// baseline entry still surface as [`Verdict::New`], so `--strict` hygiene
/// keeps rejecting unregistered names.
pub fn compare_subset(
    baseline: &[(String, f64)],
    current: &[(String, f64)],
    tolerance: f64,
) -> GateReport {
    let scoped: Vec<(String, f64)> =
        baseline.iter().filter(|(key, _)| current.iter().any(|(k, _)| k == key)).cloned().collect();
    compare(&scoped, current, tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_rendered_metrics() {
        let metrics = vec![
            ("fig6.completion.dropbox.100x10kB".to_string(), 12.75),
            ("fleet8.dedup_ratio".to_string(), 1.0),
            ("negative.exponent".to_string(), -3.5e-2),
        ];
        let rendered = render_flat(&metrics);
        assert_eq!(parse_flat(&rendered).unwrap(), metrics);
        // And the serde_json stub's own pretty output parses too.
        let pretty = "{\n  \"a\": 1.0,\n  \"b\": 2.5\n}";
        assert_eq!(
            parse_flat(pretty).unwrap(),
            vec![("a".to_string(), 1.0), ("b".to_string(), 2.5)]
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_flat("").is_err());
        assert!(parse_flat("[1, 2]").is_err());
        assert!(parse_flat("{\"a\": \"text\"}").is_err());
        assert!(parse_flat("{\"a\": {\"nested\": 1}}").is_err());
        assert!(parse_flat("{\"a\": 1.0,").is_err());
        assert!(parse_flat("{\"a\" 1.0}").is_err());
        assert_eq!(parse_flat("{}").unwrap(), vec![]);
        assert_eq!(parse_flat("  {  }  ").unwrap(), vec![]);
    }

    #[test]
    fn parse_rejects_non_finite_values_naming_the_metric() {
        for (json, spelling) in [
            ("{\"faults.bad_ratio\": NaN}", "NaN"),
            ("{\"faults.bad_ratio\": nan}", "nan"),
            ("{\"faults.bad_ratio\": inf}", "inf"),
            ("{\"faults.bad_ratio\": -Infinity}", "-Infinity"),
            ("{\"faults.bad_ratio\": 1e999}", "1e999"),
        ] {
            let err = parse_flat(json).expect_err(spelling);
            assert!(
                err.contains("faults.bad_ratio") && err.contains("non-finite"),
                "{spelling}: the error must name the poisoned metric, got: {err}"
            );
        }
        // A finite metric after a rejected one never masks the failure —
        // the first poisoned key aborts the whole file.
        let err = parse_flat("{\"a\": NaN, \"b\": 1.0}").unwrap_err();
        assert!(err.contains("\"a\""));
    }

    #[test]
    fn compare_flags_regressions_beyond_tolerance() {
        let baseline = vec![
            ("stable".to_string(), 10.0),
            ("drifted".to_string(), 10.0),
            ("gone".to_string(), 5.0),
        ];
        let current = vec![
            ("stable".to_string(), 10.9),
            ("drifted".to_string(), 12.0),
            ("fresh".to_string(), 1.0),
        ];
        let report = compare(&baseline, &current, 0.15);
        assert!(!report.passed());
        let verdicts: Vec<&Verdict> = report.rows.iter().map(|(_, _, _, v)| v).collect();
        assert_eq!(verdicts[0], &Verdict::Ok);
        assert!(matches!(verdicts[1], Verdict::Regressed(d) if (*d - 0.2).abs() < 1e-9));
        assert_eq!(verdicts[2], &Verdict::Missing);
        assert_eq!(verdicts[3], &Verdict::New);
        let rendered = report.render();
        assert!(rendered.contains("REGRESSED"));
        assert!(rendered.contains("MISSING"));

        // The markdown summary carries the same verdicts as table rows.
        let markdown = report.render_markdown();
        assert!(markdown.starts_with("### Bench regression gate (FAIL"));
        assert!(markdown.contains("| metric | baseline | observed | delta | verdict |"));
        assert!(markdown
            .contains("| `drifted` | 10.0000 | 12.0000 | +20.0% | **REGRESSED** (+20.0%) |"));
        assert!(markdown.contains("| `gone` | 5.0000 | — | — | **MISSING** |"));
        assert!(markdown.contains("| `fresh` | — | 1.0000 | — | new |"));
        // Unprefixed metrics fall into one "other" group, with the flagged
        // count in the header.
        assert!(markdown.contains("#### `other` (4 metrics — 2 flagged)"));
        let passing = compare(&baseline[..1], &current[..1], 0.15).render_markdown();
        assert!(passing.starts_with("### Bench regression gate (PASS"));
        assert!(passing.contains("#### `other` (1 metrics)"));
    }

    #[test]
    fn markdown_groups_metrics_by_suite_prefix() {
        let baseline = vec![
            ("fig6.completion_s.dropbox".to_string(), 1.0),
            ("fig6.overhead.dropbox".to_string(), 2.0),
            ("fleet8.goodput_mbps".to_string(), 3.0),
            ("schedule.idle_rounds".to_string(), 4.0),
        ];
        let markdown = compare(&baseline, &baseline.clone(), 0.15).render_markdown();
        assert!(markdown.contains("#### `fig6` (2 metrics)"));
        assert!(markdown.contains("#### `fleet8` (1 metrics)"));
        assert!(markdown.contains("#### `schedule` (1 metrics)"));
        // Suites appear in first-appearance order.
        let fig6 = markdown.find("#### `fig6`").unwrap();
        let fleet8 = markdown.find("#### `fleet8`").unwrap();
        let schedule = markdown.find("#### `schedule`").unwrap();
        assert!(fig6 < fleet8 && fleet8 < schedule);
    }

    #[test]
    fn markdown_sorts_metrics_lexicographically_within_each_suite() {
        // The collector emits goodput/ttfb interleaved per link; the
        // summary must regroup the siblings without reordering the suites.
        let baseline = vec![
            ("restore.goodput_mbps.fiber".to_string(), 1.0),
            ("restore.ttfb_s.fiber".to_string(), 2.0),
            ("restore.goodput_mbps.adsl".to_string(), 3.0),
            ("restore.ttfb_s.adsl".to_string(), 4.0),
            ("fleet8.goodput_mbps".to_string(), 5.0),
        ];
        let markdown = compare(&baseline, &baseline.clone(), 0.15).render_markdown();
        let keys: Vec<&str> =
            markdown.lines().filter_map(|l| l.strip_prefix("| `")?.split('`').next()).collect();
        assert_eq!(
            keys,
            vec![
                "restore.goodput_mbps.adsl",
                "restore.goodput_mbps.fiber",
                "restore.ttfb_s.adsl",
                "restore.ttfb_s.fiber",
                "fleet8.goodput_mbps",
            ],
            "rows must sort within their suite while suites keep first-appearance order"
        );
        // The fixed-width render keeps raw baseline order (it mirrors the
        // metric files byte for byte).
        let plain = compare(&baseline, &baseline.clone(), 0.15).render();
        let fiber = plain.find("restore.goodput_mbps.fiber").unwrap();
        let adsl = plain.find("restore.goodput_mbps.adsl").unwrap();
        assert!(fiber < adsl);
    }

    #[test]
    fn strict_mode_rejects_unregistered_metrics() {
        let baseline = vec![("a.x".to_string(), 1.0)];
        let current = vec![("a.x".to_string(), 1.0), ("a.y".to_string(), 2.0)];
        let report = compare(&baseline, &current, 0.15);
        // The lenient verdict tolerates the new metric; strict hygiene
        // does not — an unregistered metric would never be compared.
        assert!(report.passed());
        assert!(!report.passed_strict());
        assert_eq!(report.unregistered(), vec!["a.y"]);
        // The reverse direction (baseline entry with no current metric)
        // already fails the lenient gate as MISSING.
        let report = compare(&current, &baseline, 0.15);
        assert!(!report.passed());
        assert!(!report.passed_strict());
        assert!(report.unregistered().is_empty());
        // Identical sets are hygienic.
        let report = compare(&baseline, &baseline.clone(), 0.15);
        assert!(report.passed_strict());
    }

    #[test]
    fn strict_renders_report_the_failure_they_exit_with() {
        // The step summary of a failing strict run must not read PASS: the
        // banner follows the effective (strict) verdict and the
        // unregistered metric is flagged in its suite header and cell.
        let baseline = vec![("a.x".to_string(), 1.0)];
        let current = vec![("a.x".to_string(), 1.0), ("a.y".to_string(), 2.0)];
        let lenient = compare(&baseline, &current, 0.15);
        assert!(lenient.effective_pass());
        assert!(lenient.render_markdown().starts_with("### Bench regression gate (PASS"));

        let strict = compare(&baseline, &current, 0.15).with_strict(true);
        assert!(!strict.effective_pass());
        let markdown = strict.render_markdown();
        assert!(
            markdown.starts_with("### Bench regression gate (FAIL"),
            "strict failure must render FAIL, got: {}",
            markdown.lines().next().unwrap_or_default()
        );
        assert!(markdown.contains("strict baseline hygiene"));
        assert!(markdown.contains("#### `a` (2 metrics — 1 flagged)"));
        assert!(markdown.contains("**UNREGISTERED** (no baseline entry)"));
        // A hygienic strict run still renders PASS.
        let clean = compare(&baseline, &baseline.clone(), 0.15).with_strict(true);
        assert!(clean.render_markdown().starts_with("### Bench regression gate (PASS"));
    }

    #[test]
    fn subset_mode_skips_absent_baseline_keys_but_gates_the_present_ones() {
        let baseline = vec![
            ("fleetscale.commits".to_string(), 100.0),
            ("hist.scale_transfer.p50_s".to_string(), 2.5),
            ("fig6.completion_s.dropbox".to_string(), 12.0),
        ];
        // A partial dump covering only the fleet-scale keys: the fig6 key
        // is skipped, not MISSING, and strict hygiene holds.
        let partial = vec![
            ("fleetscale.commits".to_string(), 100.0),
            ("hist.scale_transfer.p50_s".to_string(), 2.5),
        ];
        let report = compare_subset(&baseline, &partial, 0.0).with_strict(true);
        assert_eq!(report.rows.len(), 2);
        assert!(report.effective_pass());
        // The full comparison over the same dump fails as MISSING.
        assert!(!compare(&baseline, &partial, 0.0).passed());
        // A drifted present key still fails at zero tolerance.
        let drifted = vec![("fleetscale.commits".to_string(), 101.0)];
        assert!(!compare_subset(&baseline, &drifted, 0.0).passed());
        // An unregistered key still fails strict hygiene.
        let unregistered = vec![
            ("fleetscale.commits".to_string(), 100.0),
            ("fleetscale.invented".to_string(), 1.0),
        ];
        let report = compare_subset(&baseline, &unregistered, 0.0).with_strict(true);
        assert!(report.passed());
        assert!(!report.effective_pass());
        assert_eq!(report.unregistered(), vec!["fleetscale.invented"]);
    }

    #[test]
    fn compare_passes_identical_runs_and_handles_zero_baselines() {
        let baseline = vec![("a".to_string(), 0.0), ("b".to_string(), 123.456)];
        let report = compare(&baseline, &baseline.clone(), 0.15);
        assert!(report.passed());
        // A zero baseline tolerates only ~zero currents.
        let drifted = vec![("a".to_string(), 0.5), ("b".to_string(), 123.456)];
        assert!(!compare(&baseline, &drifted, 0.15).passed());
    }
}
