//! The `repro` binary's shared argument-parsing surface.
//!
//! Every subcommand used to hand-roll its own flag handling, which let the
//! conventions drift: one flag silently fell back to its default on a parse
//! error while the next printed usage and exited. This module is the single
//! surface all subcommands go through — `--json [PATH|-]` resolves the same
//! way everywhere, counted flags (`--clients N`, `--partitions K`,
//! `--reps N`) reject missing/malformed/zero values with the usage text on
//! stderr and exit code [`USAGE_EXIT`], and path-valued flags reject a
//! dangling flag the same way. It lives in the library crate (rather than
//! in `repro.rs`) so the contract is unit-testable and any future binary
//! inherits the same conventions.

use cloudbench::report::Report;

/// The exit code for a CLI-surface error (unknown target, bad flag value),
/// as distinct from an experiment failure (exit 1).
pub const USAGE_EXIT: i32 = 2;

/// The value following `--flag`, if present.
pub fn arg_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// True when `--flag` itself appears, whether or not a value follows.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Prints `message` plus the usage text to stderr and exits with
/// [`USAGE_EXIT`] — the one error path every malformed invocation funnels
/// through.
pub fn die_usage(message: &str, usage: &str) -> ! {
    eprintln!("{message}");
    eprintln!("{usage}");
    std::process::exit(USAGE_EXIT);
}

/// Resolves a counted flag (`--clients N`, `--partitions K`, `--reps N`):
/// absent means `default`; present demands a positive integer value and
/// dies with usage otherwise. A silent fallback here would turn a typo
/// like `--clients 10k` into a full 100 000-client run.
pub fn parse_count(args: &[String], flag: &str, default: usize, usage: &str) -> usize {
    if !has_flag(args, flag) {
        return default;
    }
    match arg_value(args, flag) {
        Some(v) => v.parse::<usize>().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
            die_usage(&format!("{flag} needs a positive integer, got '{v}'"), usage)
        }),
        None => die_usage(&format!("{flag} needs a value"), usage),
    }
}

/// The shared `--clients` flag: every population-scale subcommand defaults
/// to the paper-scale 100 000 clients.
pub fn parse_clients(args: &[String], usage: &str) -> usize {
    parse_count(args, "--clients", 100_000, usage)
}

/// Resolves a string-valued flag (`--json`, `--capture`, `--metrics`,
/// `--link`, `--profile`): absent is `None`; present without a value dies
/// with usage instead of being silently ignored.
pub fn parse_path<'a>(args: &'a [String], flag: &str, usage: &str) -> Option<&'a str> {
    if !has_flag(args, flag) {
        return None;
    }
    match arg_value(args, flag) {
        Some(v) => Some(v),
        None => die_usage(&format!("{flag} needs a value"), usage),
    }
}

/// Prints a rendered report section.
pub fn print_report(report: &Report) {
    println!("==== {} ====", report.title);
    println!("{}", report.body);
}

/// Writes `payload` to `path`, with `-` streaming it to stdout.
pub fn write_payload(path: &str, payload: &str, what: &str) {
    if path == "-" {
        print!("{payload}");
    } else {
        std::fs::write(path, payload).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {what} to {path}");
    }
}

/// Prints a suite's text report and/or its JSON dump: `--json -` replaces
/// the report with the JSON stream (the report of some suites carries
/// wall-clock time, the JSON never does — CI `cmp`s the stream), any other
/// path gets the JSON alongside the report.
pub fn emit(report: &Report, json: Option<&str>, payload: &str, what: &str) {
    if json != Some("-") {
        print_report(report);
    }
    if let Some(path) = json {
        write_payload(path, payload, what);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn arg_value_finds_the_following_token() {
        let a = args(&["fleet-scale", "--clients", "500", "--json", "-"]);
        assert_eq!(arg_value(&a, "--clients"), Some("500"));
        assert_eq!(arg_value(&a, "--json"), Some("-"));
        assert_eq!(arg_value(&a, "--capture"), None);
        // A dangling flag has no value; presence is tracked separately.
        let dangling = args(&["partition", "--json"]);
        assert_eq!(arg_value(&dangling, "--json"), None);
        assert!(has_flag(&dangling, "--json"));
        assert!(!has_flag(&dangling, "--clients"));
    }

    #[test]
    fn counted_flags_fall_back_only_when_absent() {
        let a = args(&["fleet-scale"]);
        assert_eq!(parse_count(&a, "--clients", 100_000, "usage"), 100_000);
        assert_eq!(parse_clients(&a, "usage"), 100_000);
        let b = args(&["fleet-scale", "--clients", "42"]);
        assert_eq!(parse_clients(&b, "usage"), 42);
        // Malformed/zero/dangling values die with usage at exit 2 — pinned
        // end to end by the `repro_cli` integration tests, since
        // `die_usage` terminates the process.
    }

    #[test]
    fn path_flags_resolve_like_value_flags() {
        let a = args(&["replay", "--capture", "cap.jsonl"]);
        assert_eq!(parse_path(&a, "--capture", "usage"), Some("cap.jsonl"));
        assert_eq!(parse_path(&a, "--metrics", "usage"), None);
    }
}
