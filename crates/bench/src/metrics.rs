//! The deterministic metric set behind the CI bench-regression gate.
//!
//! Every metric is a pure function of the simulation (no wall-clock, no
//! host parallelism dependence): per-service completion times and overheads
//! on the paper's key workloads, the fleet suite's multi-tenant metrics at
//! 8 clients, the heterogeneous scenario matrix (`hetero.*` per-profile
//! completions and per-link goodputs, `gc.*` reclamation under churn), the
//! restore suite's down-path metrics (`restore.*`), the temporal
//! schedule suite (`schedule.*` start-up delays, idle-round accounting,
//! concurrency peaks and the background-vs-payload split) and the
//! fault-injection suite (`faults.*` retry counts, wasted-bytes ratios,
//! completion-time inflation against the fault-free control and resume
//! efficiency) and the fleet-scale suite (`fleetscale.*` commits per virtual
//! second, concurrency peak and population-scale dedup from 10k lightweight
//! clients on the event heap) and the partition runner (`partition.*`
//! per-partition commit skew, merge overhead and the sum-of-parts ratios
//! the merge invariants pin to exactly 1.0) and the trace-overhead suite
//! (`trace.*` packet/flow counts, wire volume and the wire/logical
//! overhead ratio of the sharded fleet-scale capture — the wall-clock
//! bound itself lives in the `trace_overhead` Criterion bench, since gate
//! values must be deterministic), plus `hist.*` log-bucketed
//! latency quantiles
//! (sync commits, restore pulls, retry backoff waits and fleet-scale
//! transfers). `repro bench-json` dumps them; the `bench_gate` binary
//! compares a fresh dump against the committed `bench_baseline.json`.

use cloudbench::faults::run_faults;
use cloudbench::fleet::{fleet_spec, FleetScalingRow};
use cloudbench::hetero::run_hetero;
use cloudbench::restore::run_restore;
use cloudbench::scale::FleetScaleSuite;
use cloudbench::schedule::run_schedule;
use cloudbench::testbed::Testbed;
use cloudbench::ServiceProfile;
use cloudsim_services::fleet::run_fleet;
use cloudsim_services::GcPolicy;
use cloudsim_storage::ObjectStore;
use cloudsim_trace::HistogramSummary;
use cloudsim_workload::{BatchSpec, FileKind};

use crate::REPRO_SEED;

/// Gate repetitions: enough to exercise the repetition loop, small enough to
/// keep the CI gate fast.
pub const GATE_REPETITIONS: usize = 2;

/// The fleet size the gate pins (the acceptance point of the scaling suite).
pub const GATE_FLEET_CLIENTS: usize = 8;

/// The fleet size of the heterogeneous scenario. Slot `i` gets profile
/// `i % 3` and link `i % 4`, so 9 slots cover 9 of the 12 profile×link
/// pairs — every profile appears on three distinct links and every link
/// carries at least two profiles (the full matrix would need lcm(3,4)=12
/// slots; 9 keeps the CI gate fast).
pub const HETERO_CLIENTS: usize = 9;

/// The fleet size of the restore scenario: eight slots cycle through all
/// four link presets, so the four pullers (the last half) land one behind
/// each preset — every link class gets a `restore.*` goodput and TTFB
/// metric.
pub const RESTORE_CLIENTS: usize = 8;

/// The fleet size of the temporal schedule scenario: ten slots cycling
/// through three profiles and four links give ~60 connected rounds, enough
/// activation draws that a 0.7 probability reliably yields both synced and
/// idle rounds for the pinned seed.
pub const SCHEDULE_CLIENTS: usize = 10;

/// The population size of the fleet-scale gate point: four orders of
/// magnitude above the full-fidelity fleet (enough that the shared pool and
/// the concurrency peak are population-scale effects), small enough that
/// the gate collects in seconds. `repro fleet-scale` defaults to 100k.
pub const GATE_SCALE_CLIENTS: usize = 10_000;

/// Partitions of the partition-runner gate point. Eight-way matches the CI
/// partition-determinism leg's widest split; the merged suite is
/// bit-identical to the unsliced `fleetscale.*` run, so only the split's
/// own accounting (skew, merge overhead, sum-of-parts ratios) is gated
/// under `partition.*`.
pub const GATE_PARTITIONS: usize = 8;

/// Appends one gate-metric quadruple (`.count`, `.p50_s`, `.p90_s`,
/// `.p99_s`) for a log-bucketed latency distribution. Quantiles are bucket
/// lower bounds, so they are exactly reproducible and safe to gate at zero
/// tolerance.
fn hist_metrics(metrics: &mut Vec<(String, f64)>, prefix: &str, hist: &HistogramSummary) {
    metrics.push((format!("{prefix}.count"), hist.count as f64));
    metrics.push((format!("{prefix}.p50_s"), hist.p50_s));
    metrics.push((format!("{prefix}.p90_s"), hist.p90_s));
    metrics.push((format!("{prefix}.p99_s"), hist.p99_s));
}

/// The fleet-scale suite's gate metrics, as a pure function of an assembled
/// suite. Shared by [`collect`] and `repro replay --metrics`, so a replayed
/// capture can be gated against the very same `fleetscale.*` and
/// `hist.scale_transfer.*` baseline entries the live run produced.
pub fn scale_suite_metrics(suite: &FleetScaleSuite) -> Vec<(String, f64)> {
    let mut metrics = vec![
        ("fleetscale.commits".to_string(), suite.commits as f64),
        ("fleetscale.commits_per_vsec".to_string(), suite.commits_per_vsec),
        ("fleetscale.concurrency_peak".to_string(), suite.concurrency_peak as f64),
        ("fleetscale.dedup_ratio".to_string(), suite.dedup_ratio),
        ("fleetscale.logical_mb".to_string(), suite.logical_mb),
        ("fleetscale.physical_mb".to_string(), suite.physical_mb),
        ("fleetscale.virtual_span_s".to_string(), suite.virtual_span_s),
    ];
    hist_metrics(&mut metrics, "hist.scale_transfer", &suite.transfer_hist);
    metrics
}

/// Collects the gate metrics. Deterministic for a given `REPRO_SEED`:
/// rerunning produces bit-identical values, so the gate's ±tolerance only
/// absorbs intentional simulator changes, not noise.
pub fn collect() -> Vec<(String, f64)> {
    let mut metrics = Vec::new();
    let testbed = Testbed::new(REPRO_SEED);

    // Fig. 6 key cells: the many-small-files and single-large-file regimes
    // that separate the services most sharply.
    let small_files = BatchSpec::new(100, 10_000, FileKind::RandomBinary);
    let one_megabyte = BatchSpec::new(1, 1_000_000, FileKind::RandomBinary);
    let cells: [(&str, ServiceProfile, &BatchSpec); 5] = [
        ("dropbox", ServiceProfile::dropbox(), &small_files),
        ("google_drive", ServiceProfile::google_drive(), &small_files),
        ("cloud_drive", ServiceProfile::cloud_drive(), &small_files),
        ("dropbox", ServiceProfile::dropbox(), &one_megabyte),
        ("skydrive", ServiceProfile::skydrive(), &one_megabyte),
    ];
    for (name, profile, spec) in &cells {
        let row =
            cloudbench::benchmarks::run_performance_cell(&testbed, profile, spec, GATE_REPETITIONS);
        let label = spec.label();
        metrics.push((format!("fig6.completion_s.{name}.{label}"), row.completion_secs.mean));
        metrics.push((format!("fig6.overhead.{name}.{label}"), row.overhead.mean));
    }

    // Fleet suite at the acceptance size: the multi-tenant metrics.
    let spec = fleet_spec(&ServiceProfile::dropbox(), GATE_FLEET_CLIENTS, REPRO_SEED);
    let run = run_fleet(&spec, ObjectStore::new(), GATE_FLEET_CLIENTS);
    let row = FleetScalingRow::from_run(&run);
    metrics.push(("fleet8.goodput_mbps".to_string(), row.aggregate_goodput_bps / 1e6));
    metrics.push(("fleet8.completion_mean_s".to_string(), row.completion_secs.mean));
    metrics.push(("fleet8.dedup_ratio".to_string(), row.dedup_ratio));
    metrics.push(("fleet8.physical_mb".to_string(), row.physical_bytes as f64 / 1e6));
    metrics.push(("fleet8.uploaded_mb".to_string(), row.uploaded_payload as f64 / 1e6));
    hist_metrics(&mut metrics, "hist.sync", &run.sync_duration_histogram().summary());

    // The heterogeneous scenario matrix: per-profile completion
    // distributions, per-link goodput, dedup over churn, and GC reclamation
    // under both policies.
    let suite = run_hetero(HETERO_CLIENTS, REPRO_SEED);
    for (service, stats) in &suite.completion_by_service {
        let key = service.to_lowercase().replace(' ', "_");
        metrics.push((format!("hetero.completion_mean_s.{key}"), stats.mean));
    }
    for (link, bps) in &suite.goodput_by_link {
        metrics.push((format!("hetero.goodput_mbps.{link}"), bps / 1e6));
    }
    for row in &suite.gc_rows {
        metrics.push((format!("gc.reclaimed_mb.{}", row.policy), row.reclaimed_bytes as f64 / 1e6));
        metrics.push((format!("gc.physical_mb.{}", row.policy), row.physical_bytes as f64 / 1e6));
        metrics.push((format!("gc.freed_chunks.{}", row.policy), row.freed_chunks as f64));
    }
    let eager = suite.gc_row(GcPolicy::Eager).expect("eager row");
    metrics.push(("hetero.dedup_ratio".to_string(), eager.dedup_ratio));

    // The restore suite: down-path goodput and time-to-first-byte per link
    // class, the cross-user dedup savings of the pull direction, and the
    // clean failures of the restore-after-departure path.
    let suite = run_restore(RESTORE_CLIENTS, REPRO_SEED);
    for row in &suite.per_link {
        metrics.push((format!("restore.goodput_mbps.{}", row.link), row.restore_goodput_bps / 1e6));
        metrics.push((format!("restore.ttfb_s.{}", row.link), row.ttfb_secs));
    }
    metrics.push(("restore.downloaded_mb".to_string(), suite.downloaded_payload as f64 / 1e6));
    metrics.push(("restore.dedup_saved_mb".to_string(), suite.dedup_saved_bytes as f64 / 1e6));
    metrics.push(("restore.failures".to_string(), suite.failures as f64));
    hist_metrics(&mut metrics, "hist.restore", &suite.restore_hist);

    // The temporal schedule suite: start-up delays, idle-round accounting,
    // the arrival spread, concurrency peaks (jittered vs lock-step) and the
    // §3.1-style background-vs-payload byte split.
    let suite = run_schedule(SCHEDULE_CLIENTS, REPRO_SEED);
    metrics.push(("schedule.sync_rounds".to_string(), suite.sync_rounds as f64));
    metrics.push(("schedule.idle_rounds".to_string(), suite.idle_rounds as f64));
    metrics.push(("schedule.startup_delay_mean_s".to_string(), suite.startup_delay.mean));
    metrics.push(("schedule.completion_mean_s".to_string(), suite.completion.mean));
    metrics.push(("schedule.first_sync_spread_s".to_string(), suite.first_sync_spread_s));
    metrics.push(("schedule.concurrency_peak".to_string(), suite.concurrency_peak as f64));
    metrics.push((
        "schedule.lockstep_concurrency_peak".to_string(),
        suite.lockstep_concurrency_peak as f64,
    ));
    metrics.push(("schedule.background_kb".to_string(), suite.background_wire_bytes as f64 / 1e3));
    metrics.push(("schedule.payload_mb".to_string(), suite.payload_wire_bytes as f64 / 1e6));

    // The fault-injection suite: per link preset the retry spend and the
    // completion-time inflation of the exponential policy against the
    // fault-free control (both directions), plus the aggregate recovery
    // accounting — resume efficiency, the no-retry policy's wasted-bytes
    // ratio, backoff time and the SHA-256 verdicts of the resumed restores.
    let suite = run_faults(REPRO_SEED);
    for row in &suite.per_link {
        let exp = row.cell("exponential").expect("exponential cell");
        metrics
            .push((format!("faults.interruptions.{}", row.link), exp.stats.interruptions as f64));
        metrics.push((format!("faults.retries.{}", row.link), exp.stats.retries as f64));
        metrics.push((format!("faults.sync_inflation.{}", row.link), exp.sync_inflation));
        metrics.push((format!("faults.restore_inflation.{}", row.link), exp.restore_inflation));
    }
    let exp = suite.stats_for("exponential");
    metrics
        .push(("faults.completed_fraction".to_string(), suite.completed_fraction("exponential")));
    metrics.push(("faults.resume_efficiency".to_string(), exp.resume_efficiency()));
    metrics.push(("faults.backoff_wait_s".to_string(), exp.backoff_wait.as_secs_f64()));
    metrics.push(("faults.checksums_verified".to_string(), exp.checksums_verified as f64));
    metrics.push(("faults.wasted_ratio_none".to_string(), suite.wasted_ratio("none")));
    hist_metrics(&mut metrics, "hist.backoff", &suite.backoff_hist);

    // The fleet-scale suite: the provider's view of a 10k-client population
    // on the event heap. Deterministic for any worker count (waves hold
    // pairwise-distinct clients; store aggregates are order-independent),
    // so the values are safe to gate byte-for-byte. Wall-clock time is
    // deliberately absent — it is the one non-deterministic field.
    let suite = cloudbench::scale::run_fleet_scale(GATE_SCALE_CLIENTS, REPRO_SEED);
    metrics.extend(scale_suite_metrics(&suite));

    // The partition runner: the same 10k population split eight ways
    // across workers over one shared store. The merged run reproduces the
    // `fleetscale.*` values bit for bit (asserted in the core crate), so
    // the gate pins the split's own accounting. The sum-of-parts ratios
    // are exactly 1.0 by the merge invariants — gating them at zero
    // tolerance means any future merge bug trips the gate immediately.
    let suite =
        cloudbench::partition::run_partition_suite(GATE_SCALE_CLIENTS, GATE_PARTITIONS, REPRO_SEED);
    metrics.push(("partition.partitions".to_string(), suite.partitions as f64));
    metrics.push(("partition.commits".to_string(), suite.merged.commits as f64));
    metrics.push(("partition.commit_skew".to_string(), suite.commit_skew));
    metrics.push(("partition.finish_skew_s".to_string(), suite.finish_skew_s));
    metrics.push(("partition.merge_overhead".to_string(), suite.merge_overhead));
    metrics.push(("partition.commits_sum_ratio".to_string(), suite.commits_sum_ratio));
    metrics.push(("partition.bytes_sum_ratio".to_string(), suite.bytes_sum_ratio));
    metrics.push(("partition.hist_p99_ratio".to_string(), suite.hist_p99_ratio));
    metrics.push(("partition.curve_overlap".to_string(), suite.curve_overlap));

    // The trace-overhead suite: the same 10k population with the sharded
    // packet capture switched on. Every gated value is derived from the
    // merged capture (a pure function of the spec — the merge order is
    // worker-count independent); the wall-clock overhead bound lives in
    // the `trace_overhead` Criterion bench, which is where
    // non-deterministic numbers belong.
    let suite = cloudbench::trace_overhead::run_trace_overhead(GATE_SCALE_CLIENTS, REPRO_SEED);
    metrics.push(("trace.packets".to_string(), suite.packets as f64));
    metrics.push(("trace.flows".to_string(), suite.flows as f64));
    metrics.push(("trace.syns".to_string(), suite.syns as f64));
    metrics.push(("trace.wire_mb".to_string(), suite.wire_mb));
    metrics.push(("trace.overhead_ratio".to_string(), suite.overhead_ratio));
    metrics.push(("trace.packets_per_vsec".to_string(), suite.packets_per_vsec));

    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// One shared collection run: `collect` simulates every suite, so the
    /// assertions below share a single pass (plus one more for the
    /// determinism check) instead of re-simulating per test.
    fn collected() -> &'static Vec<(String, f64)> {
        static METRICS: OnceLock<Vec<(String, f64)>> = OnceLock::new();
        METRICS.get_or_init(collect)
    }

    #[test]
    fn metrics_are_deterministic_and_named_uniquely() {
        let a = collected();
        let b = collect();
        assert_eq!(*a, b, "gate metrics must be bit-identical across runs");
        let names: std::collections::HashSet<&String> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(names.len(), a.len(), "metric names must be unique");
        assert!(a.len() >= 10);
        for (key, value) in a.iter() {
            assert!(value.is_finite(), "{key} must be finite");
            assert!(*value > 0.0, "{key} must be positive, got {value}");
        }
    }

    #[test]
    fn schedule_suite_is_represented_in_the_gate() {
        let metrics = collected();
        let schedule: Vec<&String> =
            metrics.iter().map(|(k, _)| k).filter(|k| k.starts_with("schedule.")).collect();
        assert!(schedule.len() >= 9, "schedule.* must be gated, got {schedule:?}");
        for key in [
            "schedule.sync_rounds",
            "schedule.idle_rounds",
            "schedule.startup_delay_mean_s",
            "schedule.first_sync_spread_s",
            "schedule.concurrency_peak",
            "schedule.background_kb",
        ] {
            assert!(metrics.iter().any(|(k, _)| k == key), "{key} missing from the gate");
        }
    }

    #[test]
    fn faults_suite_is_represented_in_the_gate() {
        let metrics = collected();
        let faults: Vec<&String> =
            metrics.iter().map(|(k, _)| k).filter(|k| k.starts_with("faults.")).collect();
        assert!(faults.len() >= 16, "faults.* must be gated, got {faults:?}");
        for key in [
            "faults.retries.adsl",
            "faults.sync_inflation.campus",
            "faults.restore_inflation.3g",
            "faults.completed_fraction",
            "faults.resume_efficiency",
            "faults.wasted_ratio_none",
            "faults.checksums_verified",
        ] {
            assert!(metrics.iter().any(|(k, _)| k == key), "{key} missing from the gate");
        }
    }

    #[test]
    fn fleet_scale_suite_is_represented_in_the_gate() {
        let metrics = collected();
        let scale: Vec<&String> =
            metrics.iter().map(|(k, _)| k).filter(|k| k.starts_with("fleetscale.")).collect();
        assert!(scale.len() >= 7, "fleetscale.* must be gated, got {scale:?}");
        for key in [
            "fleetscale.commits",
            "fleetscale.commits_per_vsec",
            "fleetscale.concurrency_peak",
            "fleetscale.dedup_ratio",
            "fleetscale.virtual_span_s",
        ] {
            assert!(metrics.iter().any(|(k, _)| k == key), "{key} missing from the gate");
        }
    }

    #[test]
    fn partition_suite_is_represented_in_the_gate() {
        let metrics = collected();
        let partition: Vec<&String> =
            metrics.iter().map(|(k, _)| k).filter(|k| k.starts_with("partition.")).collect();
        assert!(partition.len() >= 9, "partition.* must be gated, got {partition:?}");
        for key in [
            "partition.partitions",
            "partition.commits",
            "partition.commit_skew",
            "partition.merge_overhead",
            "partition.commits_sum_ratio",
            "partition.hist_p99_ratio",
            "partition.curve_overlap",
        ] {
            assert!(metrics.iter().any(|(k, _)| k == key), "{key} missing from the gate");
        }
        // The merged commits gate the same value as the unsliced run.
        let fleet = metrics.iter().find(|(k, _)| k == "fleetscale.commits").unwrap().1;
        let part = metrics.iter().find(|(k, _)| k == "partition.commits").unwrap().1;
        assert_eq!(part.to_bits(), fleet.to_bits());
        // The sum-of-parts ratios are exactly 1.0 — the merge invariants.
        for key in
            ["partition.commits_sum_ratio", "partition.bytes_sum_ratio", "partition.hist_p99_ratio"]
        {
            let value = metrics.iter().find(|(k, _)| k == key).unwrap().1;
            assert_eq!(value.to_bits(), 1.0f64.to_bits(), "{key} must be exactly 1.0");
        }
    }

    #[test]
    fn trace_suite_is_represented_in_the_gate() {
        let metrics = collected();
        let trace: Vec<&String> =
            metrics.iter().map(|(k, _)| k).filter(|k| k.starts_with("trace.")).collect();
        assert!(trace.len() >= 6, "trace.* must be gated, got {trace:?}");
        for key in [
            "trace.packets",
            "trace.flows",
            "trace.syns",
            "trace.wire_mb",
            "trace.overhead_ratio",
            "trace.packets_per_vsec",
        ] {
            assert!(metrics.iter().any(|(k, _)| k == key), "{key} missing from the gate");
        }
        // One flow (and one SYN) per commit: the capture accounts the same
        // population the fleet-scale gate point drives.
        let commits = metrics.iter().find(|(k, _)| k == "fleetscale.commits").unwrap().1;
        let flows = metrics.iter().find(|(k, _)| k == "trace.flows").unwrap().1;
        assert_eq!(flows.to_bits(), commits.to_bits());
        // The capture's overhead is a thin TCP-header margin over the
        // logical volume — above 1, nowhere near the gate tolerance band.
        let ratio = metrics.iter().find(|(k, _)| k == "trace.overhead_ratio").unwrap().1;
        assert!(ratio > 1.0 && ratio < 1.01, "trace.overhead_ratio {ratio} out of band");
    }

    /// The single-sourcing contract: the collector and the suites table
    /// (the list `repro suites` prints and CI scripts over) may not drift
    /// apart in either direction.
    #[test]
    fn every_metric_prefix_is_a_registered_suite() {
        let metrics = collected();
        for (key, _) in metrics.iter() {
            let prefix = key.split('.').next().unwrap_or(key);
            assert!(
                crate::suites::by_prefix(prefix).is_some(),
                "{key}: prefix {prefix} is not in the suites table"
            );
        }
        for suite in crate::suites::SUITES {
            let dotted = format!("{}.", suite.prefix);
            assert!(
                metrics.iter().any(|(k, _)| k.starts_with(&dotted)),
                "suite {} has no gate metrics",
                suite.prefix
            );
        }
    }

    #[test]
    fn latency_histograms_are_represented_in_the_gate() {
        let metrics = collected();
        for prefix in ["hist.sync", "hist.restore", "hist.backoff", "hist.scale_transfer"] {
            for suffix in [".count", ".p50_s", ".p90_s", ".p99_s"] {
                let key = format!("{prefix}{suffix}");
                assert!(metrics.iter().any(|(k, _)| k == &key), "{key} missing from the gate");
            }
        }
    }

    /// The acceptance proof of the scheduler refactor: a legacy-configured
    /// fleet (zero think time, zero jitter, activation 1.0 — what every
    /// pre-existing suite runs) must reproduce the *committed* baseline
    /// values byte-identically, not merely within the gate's ±15%. The
    /// baseline file is the one the CI gate compares against, so any
    /// timeline drift the tolerance would absorb still fails here.
    #[test]
    fn legacy_config_reproduces_the_committed_baseline_byte_identically() {
        let baseline = crate::gate::parse_flat(include_str!("../../../bench_baseline.json"))
            .expect("committed baseline parses");
        let current = collected();
        let legacy_prefixes = ["fig6.", "fleet8.", "hetero.", "gc.", "restore.", "schedule."];
        let mut compared = 0usize;
        for (key, base) in &baseline {
            if !legacy_prefixes.iter().any(|p| key.starts_with(p)) {
                continue;
            }
            let (_, cur) = current
                .iter()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("{key} dropped from the collector"));
            assert_eq!(
                cur.to_bits(),
                base.to_bits(),
                "{key}: collected {cur} != committed baseline {base} — the legacy \
                 (lock-step) timeline drifted"
            );
            compared += 1;
        }
        assert!(compared >= 49, "only {compared} legacy metrics compared — baseline truncated?");
    }
}
