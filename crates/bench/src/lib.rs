//! # cloudbench-bench
//!
//! Benchmark harness for the IMC'13 reproduction.
//!
//! * The `repro` binary regenerates every table and figure of the paper from
//!   freshly simulated measurements (`cargo run -p cloudbench-bench --bin
//!   repro -- all`).
//! * The Criterion benches under `benches/` measure how long each experiment
//!   takes to simulate and double as regression guards for the harness itself;
//!   one bench target exists per table/figure plus ablation, substrate and
//!   fleet-scaling micro-benchmarks.
//! * [`metrics`] defines the deterministic metric set of the CI
//!   bench-regression gate (`repro bench-json` dumps it, the `bench_gate`
//!   binary compares it against the committed `bench_baseline.json` with a
//!   relative tolerance implemented in [`gate`]).
//! * [`suites`] is the single source of truth for the gated suite list —
//!   `repro suites` prints it and the CI determinism/coverage scripts
//!   iterate over that output instead of hardcoding suite names.
//! * [`cli`] is the shared argument-parsing surface every `repro`
//!   subcommand goes through: one `--json [PATH|-]` convention, strict
//!   counted flags, usage-on-error with exit 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod gate;
pub mod metrics;
pub mod suites;

/// Shared helper: the default testbed seed used by the harness, so the repro
/// binary and the benches measure the same simulated universe.
pub const REPRO_SEED: u64 = 0x2013_1023;

/// Reduced repetition count used by benches (the paper uses 24 per
/// experiment; the simulation is deterministic enough that 3 repetitions give
/// stable means for the tables while keeping bench time short).
pub const BENCH_REPETITIONS: usize = 3;
