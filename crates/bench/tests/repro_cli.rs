//! End-to-end tests of the `repro` binary's CLI surface: the suites
//! listing, the unknown-subcommand error path, and the capture → replay
//! round trip the CI replay-fidelity leg `cmp`s.

use std::path::PathBuf;
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro")).args(args).output().expect("repro spawns")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A per-test scratch directory under the target-adjacent temp root.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro_cli_{}_{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn suites_prints_the_shared_table() {
    let out = repro(&["suites"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert_eq!(stdout(&out), cloudbench_bench::suites::render_table());
    // The output is the machine-readable contract CI scripts over: one
    // tab-separated line per gated suite.
    let listing = stdout(&out);
    let lines: Vec<&str> = listing.lines().collect();
    assert_eq!(lines.len(), cloudbench_bench::suites::SUITES.len());
    for suite in cloudbench_bench::suites::SUITES {
        assert!(
            lines.iter().any(|l| l.starts_with(&format!("{}\t", suite.prefix))),
            "{} missing from the listing",
            suite.prefix
        );
    }
}

#[test]
fn unknown_subcommand_exits_nonzero_and_lists_the_valid_targets() {
    let out = repro(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown target 'frobnicate'"), "got: {err}");
    // The error must teach the valid surface: subcommands and the gated
    // suite list (derived from the shared table, never hardcoded stale).
    for needle in ["usage: repro", "fleet-scale", "replay", "suites", "bench-json"] {
        assert!(err.contains(needle), "{needle} missing from: {err}");
    }
    for suite in cloudbench_bench::suites::SUITES {
        assert!(err.contains(suite.prefix), "{} missing from: {err}", suite.prefix);
    }
}

/// The shared-CLI contract: counted flags reject malformed, zero and
/// dangling values with the usage text at exit 2 on every subcommand,
/// instead of silently falling back to their defaults (a typo like
/// `--clients 10k` used to launch a 100 000-client run).
#[test]
fn malformed_counted_flags_die_with_usage_everywhere() {
    for args in [
        ["fleet-scale", "--clients", "10k"].as_slice(),
        ["fleet-scale", "--clients", "0"].as_slice(),
        ["fleet-scale", "--clients"].as_slice(),
        ["partition", "--clients", "abc"].as_slice(),
        ["trace", "--clients", "-5"].as_slice(),
        ["fig6", "--reps", "zero"].as_slice(),
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "{args:?} must exit 2");
        let err = stderr(&out);
        assert!(err.contains("usage: repro"), "{args:?}: usage missing from {err}");
        assert!(err.contains(args[1]), "{args:?}: offending flag missing from {err}");
    }
}

/// The trace subcommand: the JSON dump is deterministic (what the CI
/// trace determinism leg `cmp`s) and the text report carries the
/// wall-time comparison the dump deliberately omits.
#[test]
fn trace_dumps_deterministic_json_and_reports_wall_time_in_text_only() {
    let a = repro(&["trace", "--clients", "300", "--json", "-"]);
    assert!(a.status.success(), "stderr: {}", stderr(&a));
    let b = repro(&["trace", "--clients", "300", "--json", "-"]);
    assert!(b.status.success(), "stderr: {}", stderr(&b));
    assert_eq!(stdout(&a), stdout(&b), "trace dumps must be byte-identical across reruns");
    let dump = stdout(&a);
    for field in ["\"packets\"", "\"flows\"", "\"overhead_ratio\""] {
        assert!(dump.contains(field), "{field} missing from: {dump}");
    }
    assert!(!dump.contains("wall"), "wall-clock fields leaked into the dump: {dump}");

    let out = repro(&["trace", "--clients", "300"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("Trace overhead"), "got: {text}");
    assert!(text.contains("wall time"), "got: {text}");
}

#[test]
fn replay_without_a_capture_fails_with_guidance() {
    let out = repro(&["replay"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--capture"), "got: {}", stderr(&out));
}

#[test]
fn replay_rejects_a_malformed_capture_file() {
    let dir = scratch("malformed");
    let path = dir.join("garbage.jsonl");
    std::fs::write(&path, "{\"format\":\"not-a-capture\",\"version\":1}\n").expect("write");
    let out = repro(&["replay", "--capture", path.to_str().expect("utf8 path")]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("cannot parse"), "got: {}", stderr(&out));
}

#[test]
fn replay_rejects_unknown_remap_names() {
    let dir = scratch("remap");
    let capture = dir.join("cap.jsonl");
    let out =
        repro(&["fleet-scale", "--clients", "40", "--capture", capture.to_str().expect("utf8")]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    let cap = capture.to_str().expect("utf8");
    let out = repro(&["replay", "--capture", cap, "--link", "carrier-pigeon"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown link preset"), "got: {}", stderr(&out));

    let out = repro(&["replay", "--capture", cap, "--profile", "nopebox"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown service profile"), "got: {}", stderr(&out));

    let out = repro(&["replay", "--capture", cap, "--link", "adsl", "--profile", "dropbox"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("mutually exclusive"), "got: {err}");
    // The rejection teaches the valid surface, matching the
    // unknown-subcommand behaviour.
    assert!(err.contains("usage: repro"), "usage text missing from: {err}");
}

/// The CI partition-determinism leg, end to end: the merged JSON dump is
/// byte-identical across partition counts, across capture-sliced vs. live
/// runs, and against the unsliced `fleet-scale` dump.
#[test]
fn partition_dumps_are_byte_identical_across_worker_counts() {
    let dir = scratch("partition");
    let capture = dir.join("cap.jsonl");
    let unsliced = dir.join("fleet.json");
    let out = repro(&[
        "fleet-scale",
        "--clients",
        "120",
        "--json",
        unsliced.to_str().expect("utf8"),
        "--capture",
        capture.to_str().expect("utf8"),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let reference = std::fs::read_to_string(&unsliced).expect("unsliced dump");

    for partitions in ["1", "5"] {
        let out =
            repro(&["partition", "--clients", "120", "--partitions", partitions, "--json", "-"]);
        assert!(out.status.success(), "k={partitions} stderr: {}", stderr(&out));
        assert_eq!(
            stdout(&out),
            reference,
            "k={partitions}: the merged dump must match the unsliced fleet-scale dump"
        );
    }

    // Sliced-capture recombine: contiguous slices replayed per partition
    // merge back to the same dump.
    let out = repro(&[
        "partition",
        "--capture",
        capture.to_str().expect("utf8"),
        "--partitions",
        "3",
        "--json",
        "-",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert_eq!(stdout(&out), reference, "sliced-capture recombine must match");

    // The text report carries the split accounting alongside the merged
    // population table.
    let out = repro(&["partition", "--clients", "120", "--partitions", "4"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("Partitioned fleet"), "got: {text}");
    assert!(text.contains("Fleet scale"), "got: {text}");
    assert!(text.contains("commit skew"), "got: {text}");
}

#[test]
fn partition_rejects_degenerate_splits_with_usage() {
    let out = repro(&["partition", "--clients", "100", "--partitions", "0"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("--partitions"), "got: {err}");
    assert!(err.contains("usage: repro"), "usage text missing from: {err}");

    let out = repro(&["partition", "--clients", "3", "--partitions", "8"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("non-empty partitions"), "got: {err}");
    assert!(err.contains("usage: repro"), "usage text missing from: {err}");
}

/// The CI replay-fidelity leg, end to end: record a capture alongside the
/// live run's JSON dump, replay it same-mix, and require the two dumps to
/// be byte-identical; the replayed `--metrics` dump must parse and carry
/// the fleet-scale gate keys.
#[test]
fn capture_replay_round_trip_is_byte_identical() {
    let dir = scratch("roundtrip");
    let capture = dir.join("cap.jsonl");
    let original = dir.join("orig.json");
    let out = repro(&[
        "fleet-scale",
        "--clients",
        "150",
        "--json",
        original.to_str().expect("utf8"),
        "--capture",
        capture.to_str().expect("utf8"),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    let replayed = dir.join("replayed.json");
    let metrics = dir.join("metrics.json");
    let out = repro(&[
        "replay",
        "--capture",
        capture.to_str().expect("utf8"),
        "--json",
        replayed.to_str().expect("utf8"),
        "--metrics",
        metrics.to_str().expect("utf8"),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    let a = std::fs::read_to_string(&original).expect("original dump");
    let b = std::fs::read_to_string(&replayed).expect("replayed dump");
    assert_eq!(a, b, "same-mix replay must reproduce the suite dump byte for byte");

    let flat = cloudbench_bench::gate::parse_flat(
        &std::fs::read_to_string(&metrics).expect("metrics dump"),
    )
    .expect("replayed metrics parse");
    for key in ["fleetscale.commits", "fleetscale.dedup_ratio", "hist.scale_transfer.count"] {
        assert!(flat.iter().any(|(k, _)| k == key), "{key} missing from the replayed metrics");
    }

    // A cross-mix replay of the same capture keeps the workload but moves
    // the timing: the dump must differ from the original.
    let out = repro(&[
        "replay",
        "--capture",
        capture.to_str().expect("utf8"),
        "--link",
        "3g",
        "--json",
        "-",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert_ne!(stdout(&out), a, "an all-3g remap cannot reproduce the original timing");
}
