//! Fig. 3 bench: uploading 100 × 10 kB and counting TCP connections for the
//! two services that open one (or four) connections per file.

use cloudbench::capability::syn_series;
use cloudbench::testbed::Testbed;
use cloudbench::ServiceProfile;
use cloudbench_bench::REPRO_SEED;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let testbed = Testbed::new(REPRO_SEED);
    let mut group = c.benchmark_group("fig3_bundling_syns");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    for profile in
        [ServiceProfile::google_drive(), ServiceProfile::cloud_drive(), ServiceProfile::dropbox()]
    {
        group.bench_with_input(
            BenchmarkId::new("syn_series_100x10kB", profile.name()),
            &profile,
            |b, p| b.iter(|| syn_series(&testbed, p)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
