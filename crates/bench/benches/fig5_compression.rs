//! Fig. 5 bench: the compression test (text, random bytes, fake JPEGs).

use cloudbench::capability::compression_series;
use cloudbench::testbed::Testbed;
use cloudbench::{FileKind, ServiceProfile};
use cloudbench_bench::REPRO_SEED;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let testbed = Testbed::new(REPRO_SEED);
    let sizes = [500_000u64, 1_000_000, 2_000_000];
    let mut group = c.benchmark_group("fig5_compression");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    for kind in [FileKind::Text, FileKind::RandomBinary, FileKind::FakeJpeg] {
        group.bench_with_input(BenchmarkId::new("dropbox", kind.label()), &kind, |b, k| {
            b.iter(|| compression_series(&testbed, &ServiceProfile::dropbox(), *k, &sizes))
        });
        group.bench_with_input(BenchmarkId::new("google_drive", kind.label()), &kind, |b, k| {
            b.iter(|| compression_series(&testbed, &ServiceProfile::google_drive(), *k, &sizes))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
