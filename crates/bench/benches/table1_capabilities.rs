//! Table 1 bench: the full §4 capability battery.

use cloudbench::capability::{detect_capabilities, CapabilityMatrix};
use cloudbench::testbed::Testbed;
use cloudbench::ServiceProfile;
use cloudbench_bench::REPRO_SEED;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let testbed = Testbed::new(REPRO_SEED);
    let mut group = c.benchmark_group("table1_capabilities");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    for profile in [ServiceProfile::dropbox(), ServiceProfile::cloud_drive()] {
        group.bench_with_input(
            BenchmarkId::new("detect_one_service", profile.name()),
            &profile,
            |b, p| b.iter(|| detect_capabilities(&testbed, p)),
        );
    }
    group.bench_function("detect_all_services", |b| {
        b.iter(|| CapabilityMatrix::detect_all(&testbed))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
