//! Fleet scaling: concurrent multi-client sync into one sharded store.
//!
//! Two acceptance invariants ride along with the measurements (asserted on
//! every run, including the CI smoke run):
//!
//! 1. **Determinism** — a concurrent 8-client fleet produces bit-identical
//!    per-client outcomes and aggregate store statistics to a sequential
//!    replay of the same clients.
//! 2. **Throughput** — at 8+ clients, the concurrent fleet against the
//!    sharded store is at least as fast (wall-clock, 15% grace for
//!    scheduler noise) as the sequential replay, and a raw multi-threaded
//!    commit storm against the sharded store is at least as fast as against
//!    the single-lock (1-shard) layout. With `FLEET_BENCH_STRICT=1` (quiet
//!    4+ core hardware) the fleet must additionally show a real >=1.2x
//!    speedup over the replay; on shared CI runners or single-core hosts
//!    parity is the honest bound, so the strict check is opt-in.
//!
//! Run with: `cargo bench -p cloudbench-bench --bench fleet_scaling`

use cloudbench::fleet::fleet_spec;
use cloudbench_bench::REPRO_SEED;
use cloudsim_services::fleet::{run_fleet, FleetSpec};
use cloudsim_services::ServiceProfile;
use cloudsim_storage::{sha256, ObjectStore, StoredChunk};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::{Duration, Instant};

/// Best-of-N wall time of a closure (minimum filters scheduler noise).
fn best_of<F: FnMut()>(n: usize, mut f: F) -> Duration {
    (0..n)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .min()
        .expect("n > 0")
}

/// A raw commit storm: `threads` users, each committing `puts` small chunks
/// (with heavy cross-user overlap) plus one manifest per 16 chunks. This
/// isolates store-lock contention from the simulation work around it.
fn commit_storm(store: &ObjectStore, threads: usize, puts: usize) {
    std::thread::scope(|scope| {
        for t in 0..threads {
            let store = store.clone();
            scope.spawn(move || {
                let user = format!("storm-user-{t}");
                for i in 0..puts {
                    // Every third chunk is shared across all users.
                    let key =
                        if i % 3 == 0 { format!("shared-{i}") } else { format!("{user}-{i}") };
                    let hash = sha256(key.as_bytes());
                    store.put_chunk(&user, StoredChunk { hash, stored_len: 4096, plain_len: 4096 });
                }
            });
        }
    });
}

fn scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3));

    for clients in [1usize, 2, 8, 32] {
        let spec = fleet_spec(&ServiceProfile::dropbox(), clients, REPRO_SEED);
        group.throughput(Throughput::Bytes(spec.total_logical_bytes()));
        group.bench_with_input(
            BenchmarkId::new("concurrent", clients),
            &spec,
            |b, spec: &FleetSpec| b.iter(|| run_fleet(spec, ObjectStore::new(), spec.clients())),
        );
    }
    group.finish();
}

fn acceptance(c: &mut Criterion) {
    // --- Invariant 1: concurrent == sequential replay, bit for bit. ---
    let spec = fleet_spec(&ServiceProfile::dropbox(), 8, REPRO_SEED);
    let concurrent = run_fleet(&spec, ObjectStore::new(), spec.clients());
    let sequential = run_fleet(&spec, ObjectStore::new(), 1);
    assert_eq!(
        concurrent.clients, sequential.clients,
        "concurrent fleet diverged from sequential replay"
    );
    assert_eq!(concurrent.aggregate(), sequential.aggregate(), "aggregate store stats diverged");
    for summary in &concurrent.clients {
        assert_eq!(
            concurrent.store.stats(&summary.user),
            sequential.store.stats(&summary.user),
            "per-user stats diverged for {}",
            summary.user
        );
    }

    // --- Invariant 2a: concurrent fleet >= sequential-replay throughput. ---
    // Minimum of three runs each; 15% grace absorbs scheduler noise on
    // small or noisy-neighbor CI runners.
    let concurrent_t = best_of(3, || {
        run_fleet(&spec, ObjectStore::new(), spec.clients());
    });
    let sequential_t = best_of(3, || {
        run_fleet(&spec, ObjectStore::new(), 1);
    });
    println!(
        "fleet 8 clients: concurrent {:.1} ms vs sequential replay {:.1} ms ({:.2}x)",
        concurrent_t.as_secs_f64() * 1e3,
        sequential_t.as_secs_f64() * 1e3,
        sequential_t.as_secs_f64() / concurrent_t.as_secs_f64().max(1e-9),
    );
    assert!(
        concurrent_t.as_secs_f64() <= sequential_t.as_secs_f64() * 1.15,
        "concurrent fleet ({concurrent_t:?}) slower than sequential replay ({sequential_t:?})"
    );
    // Demanding a real speedup is only meaningful with idle cores to run on;
    // shared CI runners can't promise that, so the strict bound is opt-in
    // (set FLEET_BENCH_STRICT=1 on dedicated hardware).
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let speedup = sequential_t.as_secs_f64() / concurrent_t.as_secs_f64().max(1e-9);
    if std::env::var_os("FLEET_BENCH_STRICT").is_some() {
        assert!(
            cores >= 4 && speedup >= 1.2,
            "FLEET_BENCH_STRICT: the 8-client fleet must beat the sequential replay by \
             >=1.2x on a 4+ core host, got {speedup:.2}x on {cores} cores"
        );
    } else if cores >= 4 && speedup < 1.2 {
        println!(
            "warning: only {speedup:.2}x fleet speedup on {cores} cores \
             (noisy host? rerun with FLEET_BENCH_STRICT=1 on quiet hardware)"
        );
    }

    // --- Invariant 2b: sharded store >= single-lock store under a storm. ---
    let threads = 8;
    let puts = 4000;
    let sharded_t = best_of(3, || {
        commit_storm(&ObjectStore::new(), threads, puts);
    });
    let single_t = best_of(3, || {
        commit_storm(&ObjectStore::with_shards(1), threads, puts);
    });
    println!(
        "commit storm {threads}x{puts}: sharded {:.1} ms vs single-lock {:.1} ms ({:.2}x)",
        sharded_t.as_secs_f64() * 1e3,
        single_t.as_secs_f64() * 1e3,
        single_t.as_secs_f64() / sharded_t.as_secs_f64().max(1e-9),
    );
    assert!(
        sharded_t.as_secs_f64() <= single_t.as_secs_f64() * 1.15,
        "sharded store ({sharded_t:?}) slower than single-lock ({single_t:?})"
    );
    // The storm's final state is shard-count independent.
    let a = ObjectStore::new();
    let b = ObjectStore::with_shards(1);
    commit_storm(&a, threads, 512);
    commit_storm(&b, threads, 512);
    assert_eq!(a.aggregate(), b.aggregate(), "shard count changed store semantics");

    // Keep the numbers visible in the bench listing too.
    let mut group = c.benchmark_group("fleet_acceptance");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements((threads * puts) as u64));
    group.bench_with_input(BenchmarkId::new("commit_storm", "sharded"), &(), |b, ()| {
        b.iter(|| commit_storm(&ObjectStore::new(), threads, puts))
    });
    group.bench_with_input(BenchmarkId::new("commit_storm", "single_lock"), &(), |b, ()| {
        b.iter(|| commit_storm(&ObjectStore::with_shards(1), threads, puts))
    });
    group.finish();
}

criterion_group!(benches, scaling, acceptance);
criterion_main!(benches);
