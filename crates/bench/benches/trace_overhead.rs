//! Trace overhead: what switching the sharded packet capture on costs.
//!
//! Two acceptance invariants ride along with the measurements (asserted on
//! every run, including the CI smoke run):
//!
//! 1. **Pure observer** — the traced fleet-scale run produces bit-identical
//!    simulation data (commits, volume, timeline, store state) to the
//!    traceless run of the same spec, and the merged capture itself is
//!    bit-identical whatever the worker count.
//! 2. **Bounded cost** — at the gate population, the traced run's
//!    wall-clock time (best of 3) stays within 1.5x of the traceless run.
//!    Each worker appends into its own preallocated shard and the k-way
//!    merge is one pass at the end, so the expected ratio is near 1; the
//!    1.5x bound leaves room for noisy CI neighbours. This bound lives
//!    here, not in the gate metrics: gate values must be deterministic,
//!    and wall time is the one number that is not.
//!
//! Run with: `cargo bench -p cloudbench-bench --bench trace_overhead`

use cloudbench::scale::scale_spec;
use cloudbench_bench::metrics::GATE_SCALE_CLIENTS;
use cloudbench_bench::REPRO_SEED;
use cloudsim_services::scale::{
    run_scale_concurrent, run_scale_traced, run_scale_traced_concurrent,
};
use cloudsim_storage::{GcPolicy, ObjectStore};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::{Duration, Instant};

/// Best-of-N wall time of a closure (minimum filters scheduler noise).
fn best_of<F: FnMut()>(n: usize, mut f: F) -> Duration {
    (0..n)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .min()
        .expect("n > 0")
}

fn overhead(c: &mut Criterion) {
    let spec = scale_spec(GATE_SCALE_CLIENTS, REPRO_SEED);

    // --- Invariant 1: capture is a pure observer. ---
    let baseline = run_scale_concurrent(&spec);
    let (traced, capture) = run_scale_traced_concurrent(&spec);
    assert_eq!(traced.commits, baseline.commits, "tracing changed the commit count");
    assert_eq!(traced.logical_bytes, baseline.logical_bytes, "tracing changed the volume");
    assert_eq!(traced.intervals, baseline.intervals, "tracing changed the timeline");
    assert_eq!(traced.aggregate(), baseline.aggregate(), "tracing changed the store state");
    // The merged capture is worker-count independent: one worker and one
    // shard reproduce it bit for bit.
    let (_, single) = run_scale_traced(&spec, ObjectStore::with_policy(GcPolicy::MarkSweep), 1);
    assert_eq!(
        capture.view().packets(),
        single.view().packets(),
        "the k-shard merge diverged from the single-shard capture"
    );
    assert_eq!(capture.view().len() as u64, traced.commits * 5, "packets per commit drifted");

    // --- Invariant 2: tracing costs at most 1.5x wall time. ---
    let traceless_t = best_of(3, || {
        run_scale_concurrent(&spec);
    });
    let traced_t = best_of(3, || {
        run_scale_traced_concurrent(&spec);
    });
    let ratio = traced_t.as_secs_f64() / traceless_t.as_secs_f64().max(1e-9);
    println!(
        "fleet-scale {} clients: traced {:.1} ms vs traceless {:.1} ms ({ratio:.2}x)",
        GATE_SCALE_CLIENTS,
        traced_t.as_secs_f64() * 1e3,
        traceless_t.as_secs_f64() * 1e3,
    );
    assert!(
        ratio <= 1.5,
        "sharded capture cost {ratio:.2}x wall time (traced {traced_t:?} vs \
         traceless {traceless_t:?}), above the 1.5x budget"
    );

    // Keep both sides visible in the bench listing.
    let mut group = c.benchmark_group("trace_overhead");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(baseline.commits));
    group.bench_with_input(BenchmarkId::new("fleet_scale", "traceless"), &spec, |b, spec| {
        b.iter(|| run_scale_concurrent(spec))
    });
    group.bench_with_input(BenchmarkId::new("fleet_scale", "traced"), &spec, |b, spec| {
        b.iter(|| run_scale_traced_concurrent(spec))
    });
    group.finish();
}

criterion_group!(benches, overhead);
criterion_main!(benches);
