//! Upload-pipeline throughput: sequential vs. parallel MB/s over the
//! paper's three compression-test file sets (dictionary text, random bytes,
//! fake JPEGs — §4.5, Fig. 5).
//!
//! The pipeline runs the full client chain — chunk → hash → delta estimate →
//! LZSS — over borrowed slices with per-worker scratch. The parallel mode
//! fans the per-chunk work out with `std::thread::scope`; on a multi-core
//! host it should exceed 2× the sequential rate while producing bit-identical
//! artifacts (asserted here on every measured configuration).
//!
//! Run with: `cargo bench -p cloudbench-bench --bench pipeline_throughput`

use cloudsim_services::ServiceProfile;
use cloudsim_storage::{FileJob, PipelineSpec, UploadPipeline};
use cloudsim_workload::{BatchSpec, FileKind, GeneratedFile};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

/// One benchmark workload: a named file set plus the capability spec the
/// pipeline applies to it.
struct Workload {
    label: &'static str,
    files: Vec<GeneratedFile>,
    spec: PipelineSpec,
}

fn spec_for(profile: &ServiceProfile) -> PipelineSpec {
    PipelineSpec {
        chunking: profile.chunking,
        compression: profile.compression,
        delta_encoding: profile.delta_encoding,
    }
}

fn workloads() -> Vec<Workload> {
    // 16 × 1 MB per set: enough chunks to occupy every worker, small enough
    // to keep the bench quick. Dropbox's profile exercises the full chain
    // (4 MB chunking, always-compress, delta).
    let dropbox = ServiceProfile::dropbox();
    let per_file = 1_000_000usize;
    let count = 16usize;
    [
        ("text", FileKind::Text),
        ("random", FileKind::RandomBinary),
        ("fake_jpeg", FileKind::FakeJpeg),
    ]
    .into_iter()
    .map(|(label, kind)| Workload {
        label,
        files: BatchSpec::new(count, per_file, kind).generate(0x51_EED),
        spec: spec_for(&dropbox),
    })
    .collect()
}

fn total_bytes(files: &[GeneratedFile]) -> u64 {
    files.iter().map(|f| f.content.len() as u64).sum()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    let sequential = UploadPipeline::sequential();
    let parallel = UploadPipeline::parallel();

    for workload in &workloads() {
        let jobs: Vec<FileJob<'_>> = workload
            .files
            .iter()
            .map(|f| FileJob { content: &f.content, previous: None })
            .collect();

        // The acceptance invariant: parallel artifacts are bit-identical to
        // sequential ones for every measured workload.
        let reference = sequential.process(&workload.spec, &jobs);
        assert_eq!(
            reference,
            parallel.process(&workload.spec, &jobs),
            "parallel pipeline diverged on {}",
            workload.label
        );

        group.throughput(Throughput::Bytes(total_bytes(&workload.files)));
        group.bench_with_input(BenchmarkId::new("sequential", workload.label), &jobs, |b, jobs| {
            b.iter(|| sequential.process(&workload.spec, jobs))
        });
        group.bench_with_input(BenchmarkId::new("parallel", workload.label), &jobs, |b, jobs| {
            b.iter(|| parallel.process(&workload.spec, jobs))
        });
    }

    // The delta path: re-upload of 16 appended-to files, where each chunk is
    // matched against its previous revision (rolling checksum + strong
    // hashes — the most CPU-heavy stage the pipeline parallelises).
    let base = BatchSpec::new(16, 1_000_000, FileKind::RandomBinary).generate(0xD317A);
    let appended: Vec<Vec<u8>> = base
        .iter()
        .map(|f| {
            let mut v = f.content.clone();
            v.extend_from_slice(&f.content[..100_000]);
            v
        })
        .collect();
    let spec = spec_for(&ServiceProfile::dropbox());
    let jobs: Vec<FileJob<'_>> = base
        .iter()
        .zip(&appended)
        .map(|(old, new)| FileJob { content: new, previous: Some(&old.content) })
        .collect();
    assert_eq!(
        sequential.process(&spec, &jobs),
        parallel.process(&spec, &jobs),
        "parallel pipeline diverged on the delta workload"
    );
    group.throughput(Throughput::Bytes(appended.iter().map(|v| v.len() as u64).sum()));
    group.bench_with_input(BenchmarkId::new("sequential", "delta_append"), &jobs, |b, jobs| {
        b.iter(|| sequential.process(&spec, jobs))
    });
    group.bench_with_input(BenchmarkId::new("parallel", "delta_append"), &jobs, |b, jobs| {
        b.iter(|| parallel.process(&spec, jobs))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
