//! Fig. 2 bench: the DNS sweep + whois + hybrid geolocation pipeline.

use cloudbench::architecture::discover_architecture;
use cloudbench::Provider;
use cloudbench_bench::REPRO_SEED;
use cloudsim_geo::ResolverFleet;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let fleet = ResolverFleet::paper_scale();
    let mut group = c.benchmark_group("fig2_geolocation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    for provider in [Provider::GoogleDrive, Provider::Dropbox, Provider::Wuala] {
        group.bench_with_input(BenchmarkId::new("discover", provider.name()), &provider, |b, p| {
            b.iter(|| discover_architecture(*p, &fleet, REPRO_SEED))
        });
    }
    group.bench_function("resolver_fleet_generation", |b| b.iter(ResolverFleet::paper_scale));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
