//! Fig. 1 bench: simulate the 16-minute idle observation for every service.

use cloudbench::idle::{idle_traffic_for, idle_traffic_series};
use cloudbench::testbed::Testbed;
use cloudbench::ServiceProfile;
use cloudbench_bench::REPRO_SEED;
use cloudsim_net::SimDuration;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let testbed = Testbed::new(REPRO_SEED);
    let mut group = c.benchmark_group("fig1_idle_traffic");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("all_services_16min", |b| b.iter(|| idle_traffic_series(&testbed)));
    group.bench_function("cloud_drive_16min", |b| {
        b.iter(|| {
            idle_traffic_for(
                &testbed,
                &ServiceProfile::cloud_drive(),
                SimDuration::from_secs(16 * 60),
                SimDuration::from_secs(60),
            )
        })
    });
    group.bench_function("wuala_16min", |b| {
        b.iter(|| {
            idle_traffic_for(
                &testbed,
                &ServiceProfile::wuala(),
                SimDuration::from_secs(16 * 60),
                SimDuration::from_secs(60),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
