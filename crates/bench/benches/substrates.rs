//! Substrate micro-benchmarks: the storage-engine primitives behind the
//! capability model (hashing, chunking, compression, delta, encryption) and
//! the flow-level TCP model. These are the pieces whose cost a real client
//! pays in CPU; the paper's "compression could reduce traffic ... at the
//! expense of processing time" trade-off is visible here.

use cloudsim_net::tcp::{ConnectionOptions, TcpConnection};
use cloudsim_net::{Network, PathSpec, SimDuration, SimTime, Simulator};
use cloudsim_storage::{
    compress, sha256, ChunkingStrategy, CompressionPolicy, ConvergentCipher, DeltaScript, Signature,
};
use cloudsim_trace::FlowKind;
use cloudsim_workload::{generate, FileKind};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    let text = generate(FileKind::Text, 1_000_000, 1);
    let random = generate(FileKind::RandomBinary, 1_000_000, 2);

    group.throughput(Throughput::Bytes(1_000_000));
    group.bench_function("sha256_1MB", |b| b.iter(|| sha256(&random)));
    group.bench_function("lzss_compress_text_1MB", |b| b.iter(|| compress(&text)));
    group.bench_function("lzss_compress_random_1MB", |b| b.iter(|| compress(&random)));
    group.bench_function("smart_policy_text_1MB", |b| {
        b.iter(|| CompressionPolicy::Smart.upload_size(&text))
    });
    group.bench_function("chacha20_convergent_1MB", |b| {
        let cipher = ConvergentCipher::new();
        b.iter(|| cipher.encrypt(&random))
    });
    group.bench_function("cdc_chunking_1MB", |b| {
        b.iter(|| ChunkingStrategy::VARIABLE.chunk(&random))
    });
    group.bench_function("rsync_delta_append_1MB", |b| {
        let mut appended = random.clone();
        appended.extend_from_slice(&generate(FileKind::RandomBinary, 100_000, 3));
        let signature = Signature::new(&random);
        b.iter(|| DeltaScript::compute(&signature, &appended))
    });

    group.throughput(Throughput::Elements(1));
    group.bench_function("tcp_model_1MB_transfer", |b| {
        b.iter(|| {
            let mut net = Network::new();
            let host = net.add_server("bench.example", [10, 0, 0, 1], 443);
            net.set_path(host, PathSpec::symmetric(SimDuration::from_millis(50), 50_000_000));
            let mut sim = Simulator::new(7);
            let mut conn = TcpConnection::open(
                &mut sim,
                &net,
                host,
                ConnectionOptions::https(FlowKind::Storage),
                SimTime::ZERO,
            );
            let established = conn.established_at();
            conn.request(&mut sim, &net, established, 1_000_000, 500, SimDuration::from_millis(20))
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
