//! Fig. 6 bench: the §5 performance suite (start-up, completion, overhead)
//! across the four workloads and five services.

use cloudbench::benchmarks::{run_performance_cell, run_performance_suite};
use cloudbench::testbed::Testbed;
use cloudbench::{BatchSpec, FileKind, ServiceProfile};
use cloudbench_bench::REPRO_SEED;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let testbed = Testbed::new(REPRO_SEED);
    let mut group = c.benchmark_group("fig6_performance");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("full_suite_1rep", |b| b.iter(|| run_performance_suite(&testbed, 1)));

    let hard_case = BatchSpec::new(100, 10_000, FileKind::RandomBinary);
    for profile in
        [ServiceProfile::dropbox(), ServiceProfile::google_drive(), ServiceProfile::cloud_drive()]
    {
        group.bench_with_input(
            BenchmarkId::new("100x10kB_cell", profile.name()),
            &profile,
            |b, p| b.iter(|| run_performance_cell(&testbed, p, &hard_case, 1)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
