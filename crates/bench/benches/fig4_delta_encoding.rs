//! Fig. 4 bench: the delta-encoding test series (append and random-offset
//! modifications) for the delta-capable and a delta-less service.

use cloudbench::capability::delta_encoding_series;
use cloudbench::testbed::Testbed;
use cloudbench::ServiceProfile;
use cloudbench_bench::REPRO_SEED;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let testbed = Testbed::new(REPRO_SEED);
    let sizes = [500_000u64, 1_000_000, 2_000_000];
    let mut group = c.benchmark_group("fig4_delta_encoding");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    for profile in [ServiceProfile::dropbox(), ServiceProfile::skydrive()] {
        group.bench_with_input(
            BenchmarkId::new("append_series", profile.name()),
            &profile,
            |b, p| b.iter(|| delta_encoding_series(&testbed, p, &sizes, false)),
        );
    }
    group.bench_function("dropbox_random_offset_10MB", |b| {
        b.iter(|| delta_encoding_series(&testbed, &ServiceProfile::dropbox(), &[10_000_000], true))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
