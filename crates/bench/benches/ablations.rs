//! Ablation benches: isolate the design choices the paper's conclusions call
//! out, by flipping one capability at a time on a fixed profile and measuring
//! the simulated completion time of the 100 × 10 kB workload.
//!
//! * bundling on/off (quantifies the Fig. 6b gap),
//! * connection reuse vs. one TCP+TLS connection per file (Fig. 3 penalty),
//! * compression always / smart / never for text content (Fig. 5),
//! * client-side encryption on/off for a Wuala-like profile (the paper's
//!   claim that encryption does not hurt performance).

use cloudbench::benchmarks::run_performance_cell;
use cloudbench::testbed::Testbed;
use cloudbench::{BatchSpec, FileKind, ServiceProfile};
use cloudbench_bench::REPRO_SEED;
use cloudsim_services::profile::TransferMode;
use cloudsim_storage::CompressionPolicy;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let testbed = Testbed::new(REPRO_SEED);
    let many_small = BatchSpec::new(100, 10_000, FileKind::RandomBinary);
    let text_batch = BatchSpec::new(10, 200_000, FileKind::Text);
    let mut group = c.benchmark_group("ablations");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    // Bundling ablation on a Dropbox-like profile.
    let bundled = ServiceProfile::dropbox();
    let unbundled = ServiceProfile::dropbox().with_transfer_mode(TransferMode::SequentialWithAcks);
    group.bench_function("dropbox_bundled_100x10kB", |b| {
        b.iter(|| run_performance_cell(&testbed, &bundled, &many_small, 1))
    });
    group.bench_function("dropbox_unbundled_100x10kB", |b| {
        b.iter(|| run_performance_cell(&testbed, &unbundled, &many_small, 1))
    });

    // Connection reuse ablation on a Google-Drive-like profile.
    let per_file = ServiceProfile::google_drive();
    let reused =
        ServiceProfile::google_drive().with_transfer_mode(TransferMode::SequentialWithAcks);
    group.bench_function("gdrive_conn_per_file_100x10kB", |b| {
        b.iter(|| run_performance_cell(&testbed, &per_file, &many_small, 1))
    });
    group.bench_function("gdrive_conn_reuse_100x10kB", |b| {
        b.iter(|| run_performance_cell(&testbed, &reused, &many_small, 1))
    });

    // Compression policy ablation on text content.
    for (label, policy) in [
        ("always", CompressionPolicy::Always),
        ("smart", CompressionPolicy::Smart),
        ("never", CompressionPolicy::Never),
    ] {
        let profile = ServiceProfile::dropbox().with_compression(policy);
        group.bench_function(criterion::BenchmarkId::new("compression_policy_text", label), |b| {
            b.iter(|| run_performance_cell(&testbed, &profile, &text_batch, 1))
        });
    }

    // Client-side encryption ablation on a Wuala-like profile.
    let encrypted = ServiceProfile::wuala();
    let plaintext = ServiceProfile::wuala().with_encryption(false);
    group.bench_function("wuala_encrypted_100x10kB", |b| {
        b.iter(|| run_performance_cell(&testbed, &encrypted, &many_small, 1))
    });
    group.bench_function("wuala_plaintext_100x10kB", |b| {
        b.iter(|| run_performance_cell(&testbed, &plaintext, &many_small, 1))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
