//! Property-based tests over the storage-engine invariants.
//!
//! These complement the unit tests with randomised inputs: compression and
//! encryption must round-trip for *any* byte string, delta scripts must
//! reconstruct *any* new revision from *any* old one, and chunking must tile
//! the input exactly regardless of strategy.

use cloudsim_storage::{
    compress, decompress, sha256, Chunk, ChunkingStrategy, CompressionPolicy, ConvergentCipher,
    DeltaScript, Signature,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compression_roundtrips_any_input(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let compressed = compress(&data);
        prop_assert_eq!(decompress(&compressed).unwrap(), data.clone());
        // Stored-mode fallback bounds the expansion to one tag byte.
        prop_assert!(compressed.len() <= data.len() + 1);
    }

    #[test]
    fn every_policy_encodes_decodably(data in proptest::collection::vec(any::<u8>(), 0..8_000)) {
        for policy in [CompressionPolicy::Never, CompressionPolicy::Always, CompressionPolicy::Smart] {
            let encoded = policy.encode(&data);
            prop_assert_eq!(decompress(&encoded).unwrap(), data.clone());
            prop_assert!(policy.upload_size(&data) <= data.len() as u64 + 1);
        }
    }

    #[test]
    fn convergent_encryption_roundtrips_and_is_deterministic(
        data in proptest::collection::vec(any::<u8>(), 0..10_000)
    ) {
        let cipher = ConvergentCipher::new();
        let key = cipher.derive_key(&data);
        let ct1 = cipher.encrypt(&data);
        let ct2 = cipher.encrypt(&data);
        prop_assert_eq!(&ct1, &ct2);
        prop_assert_eq!(ct1.len(), data.len());
        prop_assert_eq!(cipher.decrypt(&key, &ct1), data.clone());
        if data.len() > 32 {
            prop_assert_ne!(ct1, data.clone());
        }
    }

    #[test]
    fn delta_scripts_reconstruct_the_new_revision(
        old in proptest::collection::vec(any::<u8>(), 0..30_000),
        new in proptest::collection::vec(any::<u8>(), 0..30_000),
    ) {
        let signature = Signature::with_block_size(&old, 512);
        let delta = DeltaScript::compute(&signature, &new);
        prop_assert_eq!(delta.apply(&old), new.clone());
        prop_assert!(delta.literal_bytes() <= new.len() as u64);
    }

    #[test]
    fn delta_of_identical_revisions_carries_little_data(
        data in proptest::collection::vec(any::<u8>(), 2_048..20_000)
    ) {
        let signature = Signature::with_block_size(&data, 1_024);
        let delta = DeltaScript::compute(&signature, &data);
        prop_assert_eq!(delta.apply(&data), data.clone());
        // Only the trailing partial block may travel as a literal.
        prop_assert!(delta.literal_bytes() < 1_024);
    }

    #[test]
    fn chunking_tiles_the_file_exactly(
        data in proptest::collection::vec(any::<u8>(), 0..200_000),
        strategy_idx in 0usize..3,
    ) {
        let strategy = match strategy_idx {
            0 => ChunkingStrategy::None,
            1 => ChunkingStrategy::Fixed { size: 16 * 1024 },
            _ => ChunkingStrategy::ContentDefined { min: 4 * 1024, avg: 16 * 1024, max: 64 * 1024 },
        };
        let chunks: Vec<Chunk> = strategy.chunk(&data);
        let total: u64 = chunks.iter().map(|c| c.len).sum();
        prop_assert_eq!(total, data.len() as u64);
        // Chunks are contiguous, in order, and hash their exact slice.
        let mut offset = 0u64;
        for chunk in &chunks {
            prop_assert_eq!(chunk.offset, offset);
            let slice = &data[chunk.offset as usize..chunk.end() as usize];
            prop_assert_eq!(chunk.hash, sha256(slice));
            offset = chunk.end();
        }
    }

    #[test]
    fn sha256_is_stable_under_split_updates(
        data in proptest::collection::vec(any::<u8>(), 0..5_000),
        split in 0usize..5_000,
    ) {
        let split = split.min(data.len());
        let mut hasher = cloudsim_storage::hash::Sha256::new();
        hasher.update(&data[..split]);
        hasher.update(&data[split..]);
        prop_assert_eq!(hasher.finalize(), sha256(&data));
    }
}
