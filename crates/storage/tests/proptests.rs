//! Property-based tests over the storage-engine invariants.
//!
//! These complement the unit tests with randomised inputs: compression and
//! encryption must round-trip for *any* byte string, delta scripts must
//! reconstruct *any* new revision from *any* old one, and chunking must tile
//! the input exactly regardless of strategy.

use cloudsim_storage::delta::{roll, weak_sum};
use cloudsim_storage::{
    compress, decompress, sha256, Chunk, ChunkingStrategy, CompressionPolicy, ConvergentCipher,
    DeltaScript, FileJob, FileManifest, GcPolicy, ObjectStore, PipelineSpec, RestorePipeline,
    RestoreRequest, Signature, StoredChunk, UploadPipeline,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compression_roundtrips_any_input(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let compressed = compress(&data);
        prop_assert_eq!(decompress(&compressed).unwrap(), data.clone());
        // Stored-mode fallback bounds the expansion to one tag byte.
        prop_assert!(compressed.len() <= data.len() + 1);
    }

    #[test]
    fn every_policy_encodes_decodably(data in proptest::collection::vec(any::<u8>(), 0..8_000)) {
        for policy in [CompressionPolicy::Never, CompressionPolicy::Always, CompressionPolicy::Smart] {
            let encoded = policy.encode(&data);
            prop_assert_eq!(decompress(&encoded).unwrap(), data.clone());
            prop_assert!(policy.upload_size(&data) <= data.len() as u64 + 1);
        }
    }

    #[test]
    fn convergent_encryption_roundtrips_and_is_deterministic(
        data in proptest::collection::vec(any::<u8>(), 0..10_000)
    ) {
        let cipher = ConvergentCipher::new();
        let key = cipher.derive_key(&data);
        let ct1 = cipher.encrypt(&data);
        let ct2 = cipher.encrypt(&data);
        prop_assert_eq!(&ct1, &ct2);
        prop_assert_eq!(ct1.len(), data.len());
        prop_assert_eq!(cipher.decrypt(&key, &ct1), data.clone());
        if data.len() > 32 {
            prop_assert_ne!(ct1, data.clone());
        }
    }

    #[test]
    fn delta_scripts_reconstruct_the_new_revision(
        old in proptest::collection::vec(any::<u8>(), 0..30_000),
        new in proptest::collection::vec(any::<u8>(), 0..30_000),
    ) {
        let signature = Signature::with_block_size(&old, 512);
        let delta = DeltaScript::compute(&signature, &new);
        prop_assert_eq!(delta.apply(&old), new.clone());
        prop_assert!(delta.literal_bytes() <= new.len() as u64);
    }

    #[test]
    fn delta_of_identical_revisions_carries_little_data(
        data in proptest::collection::vec(any::<u8>(), 2_048..20_000)
    ) {
        let signature = Signature::with_block_size(&data, 1_024);
        let delta = DeltaScript::compute(&signature, &data);
        prop_assert_eq!(delta.apply(&data), data.clone());
        // Only the trailing partial block may travel as a literal.
        prop_assert!(delta.literal_bytes() < 1_024);
    }

    #[test]
    fn chunking_tiles_the_file_exactly(
        data in proptest::collection::vec(any::<u8>(), 0..200_000),
        strategy_idx in 0usize..3,
    ) {
        let strategy = match strategy_idx {
            0 => ChunkingStrategy::None,
            1 => ChunkingStrategy::Fixed { size: 16 * 1024 },
            _ => ChunkingStrategy::ContentDefined { min: 4 * 1024, avg: 16 * 1024, max: 64 * 1024 },
        };
        let chunks: Vec<Chunk> = strategy.chunk(&data);
        let total: u64 = chunks.iter().map(|c| c.len).sum();
        prop_assert_eq!(total, data.len() as u64);
        // Chunks are contiguous, in order, and hash their exact slice.
        let mut offset = 0u64;
        for chunk in &chunks {
            prop_assert_eq!(chunk.offset, offset);
            let slice = &data[chunk.offset as usize..chunk.end() as usize];
            prop_assert_eq!(chunk.hash, sha256(slice));
            offset = chunk.end();
        }
    }

    #[test]
    fn rolled_weak_checksum_equals_recomputation_at_every_offset(
        data in proptest::collection::vec(any::<u8>(), 600..4_000),
        block_exp in 4u32..9,
    ) {
        // The rolling update must agree with a from-scratch weak_sum() at
        // every window offset of a random buffer — the invariant that lets
        // the delta encoder find matches at arbitrary byte positions.
        let block = 1usize << block_exp; // 16..256, always < data.len()
        let mut rolled = weak_sum(&data[0..block]);
        for i in 0..=data.len() - block {
            prop_assert_eq!(rolled, weak_sum(&data[i..i + block]));
            if i + block < data.len() {
                rolled = roll(rolled, data[i], data[i + block], block);
            }
        }
    }

    #[test]
    fn pipeline_artifacts_are_mode_independent(
        file_a in proptest::collection::vec(any::<u8>(), 0..60_000),
        file_b in proptest::collection::vec(any::<u8>(), 0..60_000),
        prefix in proptest::collection::vec(any::<u8>(), 0..2_000),
        threads in 2usize..6,
    ) {
        // The acceptance property of the parallel pipeline: chunks, hashes
        // and upload byte counts identical to the sequential path, for any
        // content, including a delta job against a mutated previous
        // revision.
        let mut file_b_v2 = prefix;
        file_b_v2.extend_from_slice(&file_b);
        let jobs = vec![
            FileJob { content: &file_a, previous: None },
            FileJob { content: &file_b_v2, previous: Some(&file_b) },
        ];
        let spec = PipelineSpec {
            chunking: ChunkingStrategy::Fixed { size: 8 * 1024 },
            compression: CompressionPolicy::Always,
            delta_encoding: true,
        };
        let sequential = UploadPipeline::sequential().process(&spec, &jobs);
        let parallel = UploadPipeline::with_threads(threads).process(&spec, &jobs);
        prop_assert_eq!(&sequential, &parallel);
        // And the chunk identities agree with the standalone chunker.
        prop_assert_eq!(sequential[0].chunk_list(), spec.chunking.chunk(&file_a));
    }

    #[test]
    fn sha256_is_stable_under_split_updates(
        data in proptest::collection::vec(any::<u8>(), 0..5_000),
        split in 0usize..5_000,
    ) {
        let split = split.min(data.len());
        let mut hasher = cloudsim_storage::hash::Sha256::new();
        hasher.update(&data[..split]);
        hasher.update(&data[split..]);
        prop_assert_eq!(hasher.finalize(), sha256(&data));
    }

    #[test]
    fn concurrent_sharded_commits_equal_sequential_replay(
        users in 2usize..8,
        plan in proptest::collection::vec(any::<u16>(), 16..64),
        shards in 1usize..32,
    ) {
        // The acceptance property of the sharded store: K threads (one per
        // user) committing interleaved batches of chunks and manifests end
        // with bit-identical per-user `StoreStats`, manifests and aggregate
        // accounting to the same batches replayed sequentially on one
        // thread. The `plan` vector seeds the batch structure; a small
        // payload alphabet forces heavy cross-user chunk overlap so the
        // inter-user dedup path is exercised, and varying stored sizes per
        // uploader exercise the commutative-min canonical-size rule.
        let batches_of = |user: usize| -> Vec<Vec<StoredChunk>> {
            let mut batches = Vec::new();
            let mut chunk_batch = Vec::new();
            for (i, &v) in plan.iter().enumerate() {
                // Payload identity: a small alphabet shared by every user,
                // so most chunks collide across users.
                let payload_id = v % 23;
                let stored_len = 100 + u64::from(v % 7) * 50 + user as u64;
                chunk_batch.push(StoredChunk {
                    hash: sha256(&payload_id.to_le_bytes()),
                    stored_len,
                    plain_len: 1000,
                });
                if v % 5 == 0 || i + 1 == plan.len() {
                    batches.push(std::mem::take(&mut chunk_batch));
                }
            }
            batches
        };
        let sync_user = |store: &ObjectStore, user: usize| {
            let name = format!("prop-user-{user}");
            for (b, batch) in batches_of(user).iter().enumerate() {
                for chunk in batch {
                    store.put_chunk(&name, chunk.clone());
                }
                let manifest = FileManifest {
                    path: format!("batch-{b}.bin"),
                    size: batch.iter().map(|c| c.plain_len).sum(),
                    chunks: batch.iter().map(|c| c.hash).collect(),
                    version: 0,
                };
                store.commit_manifest(&name, manifest);
            }
        };

        let concurrent = ObjectStore::with_shards(shards);
        std::thread::scope(|scope| {
            let sync_user = &sync_user;
            for user in 0..users {
                let store = concurrent.clone();
                scope.spawn(move || sync_user(&store, user));
            }
        });

        let sequential = ObjectStore::with_shards(shards);
        for user in 0..users {
            sync_user(&sequential, user);
        }

        prop_assert_eq!(concurrent.aggregate(), sequential.aggregate());
        prop_assert_eq!(concurrent.users(), sequential.users());
        for user in 0..users {
            let name = format!("prop-user-{user}");
            prop_assert_eq!(concurrent.stats(&name), sequential.stats(&name));
            prop_assert_eq!(concurrent.list_files(&name), sequential.list_files(&name));
            for path in concurrent.list_files(&name) {
                prop_assert_eq!(
                    concurrent.manifest(&name, &path),
                    sequential.manifest(&name, &path)
                );
            }
        }
    }

    #[test]
    fn upload_restore_round_trips_byte_identically(
        files in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40_000), 1..4),
        base in proptest::collection::vec(any::<u8>(), 0..40_000),
        threads in 2usize..6,
        policy_idx in 0usize..3,
    ) {
        // The acceptance property of the restore pipeline: whatever was
        // uploaded (any content, any compression policy, with or without a
        // delta base held locally) comes back byte-identical, and the
        // parallel restore is bit-identical to the sequential one.
        let compression = match policy_idx {
            0 => CompressionPolicy::Never,
            1 => CompressionPolicy::Always,
            _ => CompressionPolicy::Smart,
        };
        let spec = PipelineSpec {
            chunking: ChunkingStrategy::Fixed { size: 8 * 1024 },
            compression,
            delta_encoding: true,
        };
        let store = ObjectStore::new();
        for (i, content) in files.iter().enumerate() {
            let chunks = spec.chunking.chunk(content);
            for chunk in &chunks {
                let data = &content[chunk.offset as usize..chunk.end() as usize];
                store.put_chunk_with_payload(
                    "prop-user",
                    StoredChunk {
                        hash: chunk.hash,
                        stored_len: chunk.len.max(1),
                        plain_len: chunk.len,
                    },
                    data,
                );
            }
            store.commit_manifest(
                "prop-user",
                FileManifest::from_chunks(&format!("f{i}.bin"), &chunks, 0),
            );
        }

        let paths: Vec<String> = (0..files.len()).map(|i| format!("f{i}.bin")).collect();
        let requests: Vec<RestoreRequest<'_>> = paths
            .iter()
            .enumerate()
            .map(|(i, path)| RestoreRequest {
                owner: "prop-user",
                path,
                // The first file restores against a random local base
                // revision, exercising the delta-vs-full decision.
                base: (i == 0).then_some(base.as_slice()),
            })
            .collect();
        let no_local =
            |_: &cloudsim_storage::ContentHash| -> Option<std::sync::Arc<[u8]>> { None };
        let sequential =
            RestorePipeline::sequential().restore_batch(&store, &spec, &requests, &no_local);
        let parallel = RestorePipeline::with_threads(threads)
            .restore_batch(&store, &spec, &requests, &no_local);
        prop_assert_eq!(&sequential, &parallel);
        for (content, restored) in files.iter().zip(&sequential) {
            let restored = restored.as_ref().expect("every uploaded file restores");
            prop_assert_eq!(&restored.content, content);
        }
    }

    #[test]
    fn gc_after_deleting_every_manifest_returns_the_store_to_zero(
        users in 1usize..6,
        plan in proptest::collection::vec(any::<u16>(), 8..48),
        eager in any::<bool>(),
    ) {
        // Per-user batches with heavy cross-user overlap (small payload
        // alphabet), committed as one manifest per batch — then every
        // manifest is hard-deleted. Whatever the GC policy and overlap
        // pattern, a final sweep must return the physical store to zero
        // bytes and zero chunks, and every reclaimed byte must be counted.
        let policy = if eager { GcPolicy::Eager } else { GcPolicy::MarkSweep };
        let store = ObjectStore::with_policy(policy);
        for user in 0..users {
            let name = format!("gc-user-{user}");
            let mut batch: Vec<StoredChunk> = Vec::new();
            let mut batch_no = 0usize;
            for (i, &v) in plan.iter().enumerate() {
                let payload_id = (v % 17, user as u8 * (v % 3) as u8);
                batch.push(StoredChunk {
                    hash: sha256(&[payload_id.0 as u8, payload_id.1]),
                    stored_len: 64 + u64::from(v % 5) * 32,
                    plain_len: 256,
                });
                if v % 4 == 0 || i + 1 == plan.len() {
                    let manifest = FileManifest {
                        path: format!("batch-{batch_no}.bin"),
                        size: batch.iter().map(|c| c.plain_len).sum(),
                        chunks: batch.iter().map(|c| c.hash).collect(),
                        version: 0,
                    };
                    for chunk in batch.drain(..) {
                        store.put_chunk(&name, chunk);
                    }
                    store.commit_manifest(&name, manifest);
                    batch_no += 1;
                }
            }
        }
        let before = store.aggregate();
        prop_assert!(before.physical_bytes > 0);

        for user in 0..users {
            let name = format!("gc-user-{user}");
            for path in store.list_files(&name) {
                prop_assert!(store.delete_manifest(&name, &path).is_some());
            }
        }
        store.collect_garbage();

        let agg = store.aggregate();
        prop_assert_eq!(agg.users, 0);
        prop_assert_eq!(agg.files, 0);
        prop_assert_eq!(agg.unique_chunks, 0);
        prop_assert_eq!(agg.physical_bytes, 0);
        prop_assert_eq!(agg.referenced_bytes, 0);
        prop_assert_eq!(agg.reclaimed_bytes, before.physical_bytes);
        prop_assert_eq!(agg.freed_chunks, before.unique_chunks);
    }

    #[test]
    fn gc_never_frees_a_still_referenced_chunk(
        keep_refs in proptest::collection::vec(any::<u8>(), 4..24),
        drop_paths in proptest::collection::vec(any::<u8>(), 1..16),
        eager in any::<bool>(),
    ) {
        // Two users share an overlapping chunk population; one user deletes
        // an arbitrary subset of its manifests. However the subsets land,
        // every chunk the *surviving* manifests reference must still be
        // resolvable afterwards, under both policies.
        let policy = if eager { GcPolicy::Eager } else { GcPolicy::MarkSweep };
        let store = ObjectStore::with_policy(policy);
        let commit = |user: &str, path: &str, ids: &[u8]| {
            let chunks: Vec<StoredChunk> = ids
                .iter()
                .map(|&id| StoredChunk {
                    hash: sha256(&[id % 13]),
                    stored_len: 128,
                    plain_len: 128,
                })
                .collect();
            for c in &chunks {
                store.put_chunk(user, c.clone());
            }
            let manifest = FileManifest {
                path: path.to_string(),
                size: chunks.iter().map(|c| c.plain_len).sum(),
                chunks: chunks.iter().map(|c| c.hash).collect(),
                version: 0,
            };
            store.commit_manifest(user, manifest);
        };
        commit("keeper", "kept.bin", &keep_refs);
        for (i, &id) in drop_paths.iter().enumerate() {
            commit("dropper", &format!("drop-{i}.bin"), &[id, id.wrapping_add(1)]);
        }

        // Dropper hard-deletes every other manifest, then GC runs.
        for (i, path) in store.list_files("dropper").into_iter().enumerate() {
            if i % 2 == 0 {
                store.delete_manifest("dropper", &path);
            }
        }
        store.collect_garbage();

        // Every chunk of the keeper's manifest and of the dropper's
        // surviving manifests must still exist physically.
        for user in ["keeper", "dropper"] {
            for path in store.list_files(user) {
                let manifest = store.manifest(user, &path).unwrap();
                for hash in &manifest.chunks {
                    prop_assert!(
                        store.has_chunk_globally(hash),
                        "{policy:?}: freed chunk still referenced by {user}/{path}"
                    );
                    prop_assert!(store.chunk(user, hash).is_some());
                }
            }
        }
    }
}
