//! The parallel download/restore pipeline.
//!
//! The upload pipeline covers one direction of the sync protocol; the
//! paper's capability and performance analysis (§4, §6) covers both. This
//! module is the way back down: given a manifest committed to the
//! [`ObjectStore`], reconstruct the file's exact bytes on a client — the
//! delete/restore test of §4.3 and the download half of the §6 performance
//! discussion.
//!
//! The pipeline mirrors the upload side's capabilities in reverse:
//!
//! * **Dedup-aware**: chunks the restoring client already holds locally (its
//!   own uploads, or content pulled in an earlier restore) are *not*
//!   re-downloaded — the cross-user savings of a shared pool apply on the
//!   down path too.
//! * **Delta-aware**: when the client holds a base revision of the path and
//!   the service delta-encodes, the server sends an rsync-style script
//!   against the same-index base chunk instead of the full chunk, whenever
//!   that is smaller.
//! * **Compressed on the wire**: full chunk downloads travel in the
//!   service's compression encoding; each worker decodes them with its own
//!   reusable [`LzssScratch`], so restores perform no per-chunk table
//!   allocation.
//! * **Deterministic**: per-chunk work is pure and merged in file/chunk
//!   order, so [`RestorePipeline::sequential`] and
//!   [`RestorePipeline::parallel`] produce bit-identical content *and* byte
//!   counts. Property tests assert upload→restore round-trips exactly.
//!
//! Failure is a value, not a panic: restoring a manifest that a churning
//! fleet hard-deleted (or whose chunks GC reclaimed) returns a typed
//! [`RestoreError`], and the store's aggregate counters are untouched —
//! restores are pure reads.

use crate::chunker::ChunkSpan;
use crate::compress::{CompressionPolicy, LzssScratch};
use crate::delta::{DeltaScript, Signature};
use crate::hash::ContentHash;
use crate::pipeline::{PipelineMode, PipelineSpec};
use crate::store::{FileManifest, ObjectStore};
use cloudsim_parallel::{auto_workers, run_indexed};
use std::sync::Arc;

/// Restores below this total size run single-threaded in auto-parallel mode
/// (same rationale and value as the upload pipeline's threshold).
const PARALLEL_THRESHOLD_BYTES: u64 = 4 * 1024 * 1024;

/// Why a restore could not reconstruct a file. Every variant names the
/// owner/path (and chunk where applicable) so a fleet harness can log the
/// failure and move on — the GC-vs-restore race of a churning fleet is an
/// expected outcome, not a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The owner has no live manifest at this path (never uploaded, soft- or
    /// hard-deleted, or the whole namespace was purged).
    ManifestMissing {
        /// User whose namespace was asked.
        user: String,
        /// Path that had no live manifest.
        path: String,
    },
    /// The manifest references a chunk the physical store no longer holds
    /// (hard-deleted and garbage-collected between the manifest read and the
    /// chunk fetch, or an inconsistent commit).
    ChunkMissing {
        /// User whose file was being restored.
        user: String,
        /// Path being restored.
        path: String,
        /// The missing chunk.
        hash: ContentHash,
    },
    /// The chunk exists but was committed without a payload (metadata-only
    /// simulation path), so its bytes cannot be served.
    PayloadUnavailable {
        /// User whose file was being restored.
        user: String,
        /// Path being restored.
        path: String,
        /// The payload-less chunk.
        hash: ContentHash,
    },
    /// The served bytes failed verification (decode error or hash mismatch).
    Corrupt {
        /// User whose file was being restored.
        user: String,
        /// Path being restored.
        path: String,
        /// The chunk that failed verification.
        hash: ContentHash,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::ManifestMissing { user, path } => {
                write!(f, "no live manifest for {user}:{path}")
            }
            RestoreError::ChunkMissing { user, path, hash } => {
                write!(f, "chunk {hash} of {user}:{path} is gone from the store")
            }
            RestoreError::PayloadUnavailable { user, path, hash } => {
                write!(f, "chunk {hash} of {user}:{path} has no stored payload")
            }
            RestoreError::Corrupt { user, path, hash } => {
                write!(f, "chunk {hash} of {user}:{path} failed verification")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// Where a restored chunk's bytes came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreSource {
    /// The restoring client already held the chunk — nothing travelled.
    LocalCopy,
    /// A delta script against a locally held base chunk travelled.
    Delta,
    /// The full chunk travelled in the service's compression encoding.
    Download,
}

/// One chunk of a restored file: identity plus what its reconstruction cost
/// on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoredChunk {
    /// Content hash of the chunk.
    pub hash: ContentHash,
    /// Plaintext length of the chunk.
    pub plain_len: u64,
    /// Payload bytes that travelled downstream for this chunk (0 for local
    /// copies).
    pub download_bytes: u64,
    /// How the chunk was reconstructed.
    pub source: RestoreSource,
}

/// A fully reconstructed file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoredFile {
    /// The user whose namespace the manifest came from.
    pub owner: String,
    /// Path of the file inside the owner's synced folder.
    pub path: String,
    /// Manifest version that was restored.
    pub version: u64,
    /// The reconstructed content — byte-identical to what was uploaded.
    pub content: Vec<u8>,
    /// Per-chunk reconstruction records, in file order.
    pub chunks: Vec<RestoredChunk>,
    /// Control-plane bytes the restore cost (manifest fetch, chunk list).
    pub metadata_bytes: u64,
}

impl RestoredFile {
    /// Payload bytes that travelled downstream for this file.
    pub fn download_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.download_bytes).sum()
    }

    /// Plaintext size of the restored file.
    pub fn logical_bytes(&self) -> u64 {
        self.content.len() as u64
    }

    /// Plaintext bytes the local-copy dedup check spared the wire.
    pub fn dedup_skipped_bytes(&self) -> u64 {
        self.chunks
            .iter()
            .filter(|c| c.source == RestoreSource::LocalCopy)
            .map(|c| c.plain_len)
            .sum()
    }
}

/// One file to restore: whose manifest, which path, and (optionally) a base
/// revision the restoring client still holds locally — the delta download's
/// reference, exactly mirroring [`crate::pipeline::FileJob::previous`].
#[derive(Debug, Clone, Copy)]
pub struct RestoreRequest<'a> {
    /// The user whose namespace holds the manifest (not necessarily the
    /// restoring client's own account — fleets pull other users' content).
    pub owner: &'a str,
    /// Path of the file inside the owner's synced folder.
    pub path: &'a str,
    /// A base revision of the path the restoring client holds locally, if
    /// any (enables delta downloads when the service delta-encodes).
    pub base: Option<&'a [u8]>,
}

/// A local chunk lookup: returns the plaintext of a chunk the restoring
/// client already holds, or `None`. Must be pure for the duration of one
/// [`RestorePipeline::restore_batch`] call.
pub type LocalChunks<'a> = &'a (dyn Fn(&ContentHash) -> Option<Arc<[u8]>> + Sync);

/// The reusable restore pipeline. Configuration-only (cheap to copy); worker
/// scratch state lives on the worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestorePipeline {
    mode: PipelineMode,
}

impl Default for RestorePipeline {
    fn default() -> Self {
        RestorePipeline::parallel()
    }
}

/// Everything stage 1 needs about one file, fetched under the store locks.
struct FetchedFile {
    manifest: FileManifest,
    /// Physical payloads in chunk order (`None` where the store had none).
    payloads: Vec<Option<Arc<[u8]>>>,
    /// Whether each payload-less chunk at least exists physically (separates
    /// [`RestoreError::PayloadUnavailable`] from [`RestoreError::ChunkMissing`]).
    present: Vec<bool>,
    /// Chunk spans of the base revision, when one was supplied and the
    /// service delta-encodes.
    base_spans: Vec<ChunkSpan>,
}

impl RestorePipeline {
    /// Single-threaded reference pipeline.
    pub fn sequential() -> RestorePipeline {
        RestorePipeline { mode: PipelineMode::Sequential }
    }

    /// Parallel pipeline using the host's available parallelism.
    pub fn parallel() -> RestorePipeline {
        RestorePipeline { mode: PipelineMode::Parallel { threads: 0 } }
    }

    /// Parallel pipeline with an explicit worker count (same semantics as
    /// [`crate::pipeline::UploadPipeline::with_threads`]).
    pub fn with_threads(threads: usize) -> RestorePipeline {
        RestorePipeline { mode: PipelineMode::Parallel { threads } }
    }

    /// A pipeline running in the given mode — the way a harness mirrors its
    /// upload pipeline's execution mode onto the restore path.
    pub fn with_mode(mode: PipelineMode) -> RestorePipeline {
        RestorePipeline { mode }
    }

    /// The configured mode.
    pub fn mode(&self) -> PipelineMode {
        self.mode
    }

    fn worker_count(&self, work_items: usize, total_bytes: u64) -> usize {
        let configured = match self.mode {
            PipelineMode::Sequential => 1,
            PipelineMode::Parallel { threads: 0 } => {
                auto_workers(work_items, total_bytes, PARALLEL_THRESHOLD_BYTES)
            }
            PipelineMode::Parallel { threads } => threads,
        };
        configured.clamp(1, work_items.max(1))
    }

    /// Restores one file. Convenience wrapper over
    /// [`RestorePipeline::restore_batch`].
    pub fn restore_file(
        &self,
        store: &ObjectStore,
        spec: &PipelineSpec,
        request: RestoreRequest<'_>,
        local: LocalChunks<'_>,
    ) -> Result<RestoredFile, RestoreError> {
        self.restore_batch(store, spec, &[request], local)
            .pop()
            .expect("restore_batch returns one result per request")
    }

    /// Restores a batch of files, returning one result per request in
    /// request order. Content and byte counts are independent of the
    /// execution mode; the store is only read, never written.
    pub fn restore_batch(
        &self,
        store: &ObjectStore,
        spec: &PipelineSpec,
        requests: &[RestoreRequest<'_>],
        local: LocalChunks<'_>,
    ) -> Vec<Result<RestoredFile, RestoreError>> {
        // Stage 0 — fetch manifests and payload handles under the store
        // locks, sequentially (lock acquisition stays out of the fan-out).
        let fetched: Vec<Result<FetchedFile, RestoreError>> = requests
            .iter()
            .map(|req| {
                let Some(manifest) = store.manifest(req.owner, req.path) else {
                    return Err(RestoreError::ManifestMissing {
                        user: req.owner.to_string(),
                        path: req.path.to_string(),
                    });
                };
                let payloads: Vec<Option<Arc<[u8]>>> =
                    manifest.chunks.iter().map(|h| store.chunk_payload(h)).collect();
                let present: Vec<bool> = manifest
                    .chunks
                    .iter()
                    .zip(&payloads)
                    .map(|(h, p)| p.is_some() || store.has_chunk_globally(h))
                    .collect();
                let base_spans = match (spec.delta_encoding, req.base) {
                    (true, Some(base)) => spec.chunking.spans(base),
                    _ => Vec::new(),
                };
                Ok(FetchedFile { manifest, payloads, present, base_spans })
            })
            .collect();

        // Stage 1 — flatten to (file, chunk) units and fan out the per-chunk
        // reconstruction: local-copy check, delta against the base chunk,
        // or full download (encode + decode under the compression policy).
        let units: Vec<(usize, usize)> = fetched
            .iter()
            .enumerate()
            .flat_map(|(file_idx, f)| {
                let chunks = f.as_ref().map(|f| f.manifest.chunks.len()).unwrap_or(0);
                (0..chunks).map(move |chunk_idx| (file_idx, chunk_idx))
            })
            .collect();
        let total_bytes: u64 =
            fetched.iter().filter_map(|f| f.as_ref().ok()).map(|f| f.manifest.size).sum();

        type ChunkOutcome = Result<(Vec<u8>, RestoredChunk), RestoreError>;
        let outcomes: Vec<ChunkOutcome> = run_indexed(
            self.worker_count(units.len(), total_bytes),
            units.len(),
            LzssScratch::new,
            |scratch, unit_idx| {
                let (file_idx, chunk_idx) = units[unit_idx];
                let req = &requests[file_idx];
                let file = fetched[file_idx].as_ref().expect("units only cover fetched files");
                let hash = file.manifest.chunks[chunk_idx];
                restore_chunk(spec, req, file, chunk_idx, hash, local, scratch)
            },
        );

        // Merge — reassemble per file in deterministic chunk order; the
        // first failing chunk (in file order) decides a file's error.
        let mut results: Vec<Result<RestoredFile, RestoreError>> = fetched
            .iter()
            .zip(requests)
            .map(|(f, req)| match f {
                Err(e) => Err(e.clone()),
                Ok(f) => Ok(RestoredFile {
                    owner: req.owner.to_string(),
                    path: req.path.to_string(),
                    version: f.manifest.version,
                    content: Vec::with_capacity(f.manifest.size as usize),
                    chunks: Vec::with_capacity(f.manifest.chunks.len()),
                    // Manifest envelope plus one hash record per chunk,
                    // mirroring the upload planner's accounting.
                    metadata_bytes: 300 + 40 * f.manifest.chunks.len() as u64,
                }),
            })
            .collect();
        for ((file_idx, _), outcome) in units.into_iter().zip(outcomes) {
            let slot = &mut results[file_idx];
            let Ok(file) = slot else { continue };
            match outcome {
                Ok((bytes, chunk)) => {
                    file.content.extend_from_slice(&bytes);
                    file.chunks.push(chunk);
                }
                Err(e) => *slot = Err(e),
            }
        }
        results
    }
}

/// Reconstructs one chunk. Pure: depends only on the fetched state, the
/// request and the spec, so the fan-out order cannot leak into the result.
fn restore_chunk(
    spec: &PipelineSpec,
    req: &RestoreRequest<'_>,
    file: &FetchedFile,
    chunk_idx: usize,
    hash: ContentHash,
    local: LocalChunks<'_>,
    scratch: &mut LzssScratch,
) -> Result<(Vec<u8>, RestoredChunk), RestoreError> {
    // Dedup on the down path: a chunk the client already holds (its own
    // uploads or an earlier restore) costs nothing on the wire.
    if let Some(bytes) = local(&hash) {
        let chunk = RestoredChunk {
            hash,
            plain_len: bytes.len() as u64,
            download_bytes: 0,
            source: RestoreSource::LocalCopy,
        };
        return Ok((bytes.to_vec(), chunk));
    }

    let corrupt =
        || RestoreError::Corrupt { user: req.owner.to_string(), path: req.path.to_string(), hash };
    let Some(payload) = file.payloads[chunk_idx].as_ref() else {
        let err = if file.present[chunk_idx] {
            RestoreError::PayloadUnavailable {
                user: req.owner.to_string(),
                path: req.path.to_string(),
                hash,
            }
        } else {
            RestoreError::ChunkMissing {
                user: req.owner.to_string(),
                path: req.path.to_string(),
                hash,
            }
        };
        return Err(err);
    };
    // No payload pre-verification here: every successful reconstruction
    // path below hashes the final content against `hash`, which covers a
    // corrupt stored payload too — hashing it twice would only slow the
    // hot per-chunk path down.

    // Delta download: the server diffs the target chunk against the
    // same-index chunk of the base revision the client still holds, and
    // sends the script when it beats the full (compressed) transfer.
    let full_wire = spec.compression.upload_size_with(scratch, payload);
    if let (Some(base), Some(span)) = (req.base, file.base_spans.get(chunk_idx)) {
        let base_chunk = &base[span.range()];
        if base_chunk != &payload[..] {
            let signature = Signature::new(base_chunk);
            let script = DeltaScript::compute(&signature, payload);
            if script.wire_size() < full_wire {
                let content = script.apply(base_chunk);
                if crate::hash::sha256(&content) != hash {
                    return Err(corrupt());
                }
                let chunk = RestoredChunk {
                    hash,
                    plain_len: content.len() as u64,
                    download_bytes: script.wire_size(),
                    source: RestoreSource::Delta,
                };
                return Ok((content, chunk));
            }
        }
    }

    // Full download in the service's wire encoding; decode with the
    // worker's reusable scratch and verify before accepting.
    let content = match spec.compression {
        CompressionPolicy::Never => payload.to_vec(),
        CompressionPolicy::Always => {
            let wire = scratch.compress_into(payload);
            crate::compress::decompress(wire).map_err(|_| corrupt())?
        }
        CompressionPolicy::Smart => {
            if crate::compress::looks_compressed(payload) {
                payload.to_vec()
            } else {
                let wire = scratch.compress_into(payload);
                crate::compress::decompress(wire).map_err(|_| corrupt())?
            }
        }
    };
    if crate::hash::sha256(&content) != hash {
        return Err(corrupt());
    }
    let chunk = RestoredChunk {
        hash,
        plain_len: content.len() as u64,
        download_bytes: full_wire,
        source: RestoreSource::Download,
    };
    Ok((content, chunk))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunker::ChunkingStrategy;
    use crate::hash::sha256;
    use crate::pipeline::{FileJob, UploadPipeline};
    use crate::store::{GcPolicy, StoredChunk};

    fn spec() -> PipelineSpec {
        PipelineSpec {
            chunking: ChunkingStrategy::Fixed { size: 64 * 1024 },
            compression: CompressionPolicy::Always,
            delta_encoding: true,
        }
    }

    fn no_local(_: &ContentHash) -> Option<Arc<[u8]>> {
        None
    }

    fn text(len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            out.extend_from_slice(b"personal cloud storage restore path ");
        }
        out.truncate(len);
        out
    }

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(0xD1B54A32D192ED03) | 1;
        while out.len() < len {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            out.extend_from_slice(&x.to_le_bytes());
        }
        out.truncate(len);
        out
    }

    /// Uploads `content` as `user:path` with payloads, mirroring how the
    /// services planner commits (chunk, put with payload, manifest).
    fn upload(store: &ObjectStore, spec: &PipelineSpec, user: &str, path: &str, content: &[u8]) {
        let chunks = spec.chunking.chunk(content);
        for chunk in &chunks {
            let data = &content[chunk.offset as usize..chunk.end() as usize];
            store.put_chunk_with_payload(
                user,
                StoredChunk {
                    hash: chunk.hash,
                    stored_len: chunk.len.max(1),
                    plain_len: chunk.len,
                },
                data,
            );
        }
        let manifest = FileManifest::from_chunks(path, &chunks, 0);
        store.commit_manifest(user, manifest);
    }

    #[test]
    fn upload_restore_round_trips_byte_identically() {
        let store = ObjectStore::new();
        let spec = spec();
        let content = text(200_000);
        upload(&store, &spec, "alice", "docs/a.txt", &content);
        let restored = RestorePipeline::sequential()
            .restore_file(
                &store,
                &spec,
                RestoreRequest { owner: "alice", path: "docs/a.txt", base: None },
                &no_local,
            )
            .unwrap();
        assert_eq!(restored.content, content);
        assert_eq!(restored.owner, "alice");
        assert_eq!(restored.version, 1);
        assert_eq!(restored.chunks.len(), 4);
        assert!(restored.chunks.iter().all(|c| c.source == RestoreSource::Download));
        // Compressible text travels compressed on the down path too.
        assert!(restored.download_bytes() < content.len() as u64 / 2);
        assert_eq!(restored.logical_bytes(), content.len() as u64);
        assert!(restored.metadata_bytes >= 300);
    }

    #[test]
    fn parallel_and_sequential_restores_are_bit_identical() {
        let store = ObjectStore::new();
        let spec = spec();
        let a = text(300_000);
        let b = pseudo_random(500_000, 3);
        upload(&store, &spec, "alice", "a.txt", &a);
        upload(&store, &spec, "alice", "b.bin", &b);
        let base = pseudo_random(500_000, 4);
        let requests = [
            RestoreRequest { owner: "alice", path: "a.txt", base: None },
            RestoreRequest { owner: "alice", path: "b.bin", base: Some(&base) },
            RestoreRequest { owner: "alice", path: "missing.bin", base: None },
        ];
        let sequential =
            RestorePipeline::sequential().restore_batch(&store, &spec, &requests, &no_local);
        for threads in [0usize, 2, 3, 7] {
            let parallel = RestorePipeline::with_threads(threads)
                .restore_batch(&store, &spec, &requests, &no_local);
            assert_eq!(sequential, parallel, "threads={threads}");
        }
        assert_eq!(sequential[0].as_ref().unwrap().content, a);
        assert_eq!(sequential[1].as_ref().unwrap().content, b);
        assert!(matches!(sequential[2], Err(RestoreError::ManifestMissing { .. })));
    }

    #[test]
    fn local_copies_cost_nothing_on_the_wire() {
        let store = ObjectStore::new();
        let spec = spec();
        let content = pseudo_random(150_000, 9);
        upload(&store, &spec, "alice", "shared.bin", &content);

        // The restoring client already holds every chunk (e.g. the shared
        // pool uploaded from its own folder).
        let chunks = spec.chunking.chunk(&content);
        let local: std::collections::HashMap<ContentHash, Arc<[u8]>> = chunks
            .iter()
            .map(|c| (c.hash, Arc::from(&content[c.offset as usize..c.end() as usize])))
            .collect();
        let restored = RestorePipeline::parallel()
            .restore_file(
                &store,
                &spec,
                RestoreRequest { owner: "alice", path: "shared.bin", base: None },
                &|h| local.get(h).cloned(),
            )
            .unwrap();
        assert_eq!(restored.content, content);
        assert_eq!(restored.download_bytes(), 0);
        assert_eq!(restored.dedup_skipped_bytes(), content.len() as u64);
        assert!(restored.chunks.iter().all(|c| c.source == RestoreSource::LocalCopy));
    }

    #[test]
    fn delta_downloads_track_the_modification_size() {
        let store = ObjectStore::new();
        let spec = spec();
        let base = pseudo_random(256 * 1024, 5);
        let mut new = base.clone();
        for b in &mut new[1000..2000] {
            *b ^= 0xFF;
        }
        upload(&store, &spec, "alice", "doc.bin", &new);
        let restored = RestorePipeline::sequential()
            .restore_file(
                &store,
                &spec,
                RestoreRequest { owner: "alice", path: "doc.bin", base: Some(&base) },
                &no_local,
            )
            .unwrap();
        assert_eq!(restored.content, new);
        // Only the first 64 kB chunk differs; it travels as a delta far
        // smaller than the chunk, the rest as identical-chunk deltas or
        // plain downloads of identical content… identical same-index chunks
        // short-circuit to full downloads of incompressible data, so check
        // the modified chunk specifically.
        assert_eq!(restored.chunks[0].source, RestoreSource::Delta);
        assert!(
            restored.chunks[0].download_bytes < 10_000,
            "delta should track the 1 kB flip, got {}",
            restored.chunks[0].download_bytes
        );
    }

    #[test]
    fn restore_after_hard_delete_returns_a_typed_error() {
        let store = ObjectStore::with_policy(GcPolicy::Eager);
        let spec = spec();
        let content = pseudo_random(100_000, 7);
        upload(&store, &spec, "alice", "gone.bin", &content);
        let before = store.aggregate();
        store.delete_manifest("alice", "gone.bin").unwrap();

        let err = RestorePipeline::sequential()
            .restore_file(
                &store,
                &spec,
                RestoreRequest { owner: "alice", path: "gone.bin", base: None },
                &no_local,
            )
            .unwrap_err();
        assert_eq!(
            err,
            RestoreError::ManifestMissing { user: "alice".into(), path: "gone.bin".into() }
        );
        assert!(!err.to_string().is_empty());

        // Purging the whole namespace behaves the same.
        store.purge_user("alice");
        let err = RestorePipeline::sequential()
            .restore_file(
                &store,
                &spec,
                RestoreRequest { owner: "alice", path: "gone.bin", base: None },
                &no_local,
            )
            .unwrap_err();
        assert!(matches!(err, RestoreError::ManifestMissing { .. }));

        // Restores are pure reads: counters moved only by the deletes, and
        // nothing went negative.
        let after = store.aggregate();
        assert_eq!(after.referenced_bytes, 0);
        assert_eq!(after.physical_bytes, 0);
        assert_eq!(after.chunk_puts, before.chunk_puts);
        assert_eq!(after.server_dedup_hits, before.server_dedup_hits);
    }

    #[test]
    fn payload_less_chunks_report_payload_unavailable() {
        let store = ObjectStore::new();
        let spec = spec();
        let data = b"metadata only commit".to_vec();
        let hash = sha256(&data);
        store.put_chunk(
            "alice",
            StoredChunk { hash, stored_len: data.len() as u64, plain_len: data.len() as u64 },
        );
        store.commit_manifest(
            "alice",
            FileManifest {
                path: "m.bin".into(),
                size: data.len() as u64,
                chunks: vec![hash],
                version: 0,
            },
        );
        let err = RestorePipeline::sequential()
            .restore_file(
                &store,
                &spec,
                RestoreRequest { owner: "alice", path: "m.bin", base: None },
                &no_local,
            )
            .unwrap_err();
        assert!(matches!(err, RestoreError::PayloadUnavailable { .. }), "{err}");
        // A local copy still reconstructs a payload-less chunk.
        let bytes: Arc<[u8]> = Arc::from(&data[..]);
        let restored = RestorePipeline::sequential()
            .restore_file(
                &store,
                &spec,
                RestoreRequest { owner: "alice", path: "m.bin", base: None },
                &|h| (*h == hash).then(|| bytes.clone()),
            )
            .unwrap();
        assert_eq!(restored.content, data);
    }

    #[test]
    fn cross_user_restores_read_the_owners_namespace() {
        let store = ObjectStore::new();
        let spec = spec();
        let content = text(120_000);
        upload(&store, &spec, "bob", "folder/report.txt", &content);
        // Alice pulls Bob's file; her own namespace stays empty.
        let restored = RestorePipeline::parallel()
            .restore_file(
                &store,
                &spec,
                RestoreRequest { owner: "bob", path: "folder/report.txt", base: None },
                &no_local,
            )
            .unwrap();
        assert_eq!(restored.content, content);
        assert_eq!(restored.owner, "bob");
        assert_eq!(store.stats("alice").chunks, 0);
        // The wrong owner gets a typed miss, not Bob's bytes.
        let err = RestorePipeline::parallel()
            .restore_file(
                &store,
                &spec,
                RestoreRequest { owner: "alice", path: "folder/report.txt", base: None },
                &no_local,
            )
            .unwrap_err();
        assert!(matches!(err, RestoreError::ManifestMissing { .. }));
    }

    #[test]
    fn never_and_smart_policies_serve_uncompressed_wire_forms() {
        for compression in [CompressionPolicy::Never, CompressionPolicy::Smart] {
            let spec = PipelineSpec { compression, ..spec() };
            let store = ObjectStore::new();
            let mut fake_jpeg = b"\xFF\xD8\xFF\xE0".to_vec();
            fake_jpeg.extend_from_slice(&text(50_000));
            upload(&store, &spec, "alice", "photo.jpg", &fake_jpeg);
            let restored = RestorePipeline::sequential()
                .restore_file(
                    &store,
                    &spec,
                    RestoreRequest { owner: "alice", path: "photo.jpg", base: None },
                    &no_local,
                )
                .unwrap();
            assert_eq!(restored.content, fake_jpeg, "{compression:?}");
            // Neither policy compresses a (fake) JPEG: full size travels.
            assert!(
                restored.download_bytes() >= fake_jpeg.len() as u64,
                "{compression:?}: {}",
                restored.download_bytes()
            );
        }
    }

    #[test]
    fn upload_pipeline_artifacts_restore_identically() {
        // End-to-end over the two pipelines: process a batch with the
        // upload pipeline, commit it with payloads, restore it back.
        let spec = spec();
        let store = ObjectStore::new();
        let contents: Vec<Vec<u8>> =
            (0..4).map(|i| pseudo_random(80_000 + i * 30_000, 40 + i as u64)).collect();
        let jobs: Vec<FileJob<'_>> =
            contents.iter().map(|c| FileJob { content: c, previous: None }).collect();
        let artifacts = UploadPipeline::parallel().process(&spec, &jobs);
        for (i, (content, file)) in contents.iter().zip(&artifacts).enumerate() {
            let path = format!("f{i}.bin");
            for art in &file.chunks {
                let data = &content[art.chunk.offset as usize..art.chunk.end() as usize];
                store.put_chunk_with_payload(
                    "alice",
                    StoredChunk {
                        hash: art.chunk.hash,
                        stored_len: art.full_upload_bytes.max(1),
                        plain_len: art.chunk.len,
                    },
                    data,
                );
            }
            store.commit_manifest("alice", FileManifest::from_chunks(&path, &file.chunk_list(), 0));
        }
        for (i, content) in contents.iter().enumerate() {
            let path = format!("f{i}.bin");
            let restored = RestorePipeline::parallel()
                .restore_file(
                    &store,
                    &spec,
                    RestoreRequest { owner: "alice", path: &path, base: None },
                    &no_local,
                )
                .unwrap();
            assert_eq!(&restored.content, content, "{path}");
        }
    }
}
