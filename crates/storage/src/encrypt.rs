//! Client-side (convergent) encryption.
//!
//! Wuala encrypts data on the client before upload, and the paper highlights
//! two findings about it: encryption does not noticeably hurt synchronisation
//! performance (§6), and deduplication keeps working because "two identical
//! files generate two identical encrypted versions" (§4.3). The latter is the
//! defining property of *convergent encryption*: the key is derived from the
//! content itself, so equal plaintexts map to equal ciphertexts while
//! different plaintexts remain mutually unintelligible.
//!
//! The cipher is ChaCha20 (RFC 7539), implemented locally and validated
//! against the RFC test vector; the convergent key is the SHA-256 of the
//! plaintext and the nonce is derived from the key.

use crate::hash::{sha256, ContentHash};

/// ChaCha20 block function state.
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha20_block(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> [u8; 64] {
    let constants = [0x61707865u32, 0x3320646e, 0x79622d32, 0x6b206574];
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&constants);
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[4 * i],
            nonce[4 * i + 1],
            nonce[4 * i + 2],
            nonce[4 * i + 3],
        ]);
    }
    let mut working = state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Raw ChaCha20 stream cipher: XORs `data` with the keystream.
pub fn chacha20_xor(
    key: &[u8; 32],
    nonce: &[u8; 12],
    initial_counter: u32,
    data: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    for (block_idx, chunk) in data.chunks(64).enumerate() {
        let keystream = chacha20_block(key, nonce, initial_counter + block_idx as u32);
        out.extend(chunk.iter().zip(keystream.iter()).map(|(d, k)| d ^ k));
    }
    out
}

/// Convergent encryption: key and nonce are derived from the plaintext, so
/// identical plaintexts produce identical ciphertexts (preserving
/// deduplication) while the ciphertext reveals nothing about a plaintext one
/// does not already possess.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConvergentCipher;

impl ConvergentCipher {
    /// Creates the cipher (stateless).
    pub fn new() -> Self {
        ConvergentCipher
    }

    /// Derives the convergent key (SHA-256 of the plaintext).
    pub fn derive_key(&self, plaintext: &[u8]) -> ContentHash {
        sha256(plaintext)
    }

    /// Encrypts `plaintext` with its convergent key. Returns the ciphertext;
    /// the key needed for decryption is [`ConvergentCipher::derive_key`].
    pub fn encrypt(&self, plaintext: &[u8]) -> Vec<u8> {
        let key_hash = self.derive_key(plaintext);
        self.encrypt_with_key(&key_hash, plaintext)
    }

    /// Encrypts with an explicit (already derived) key.
    pub fn encrypt_with_key(&self, key: &ContentHash, plaintext: &[u8]) -> Vec<u8> {
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&sha256(&key.0).0[..12]);
        chacha20_xor(&key.0, &nonce, 1, plaintext)
    }

    /// Decrypts a ciphertext produced by [`ConvergentCipher::encrypt`], given
    /// the convergent key of the original plaintext.
    pub fn decrypt(&self, key: &ContentHash, ciphertext: &[u8]) -> Vec<u8> {
        // ChaCha20 is an XOR stream cipher: decryption is encryption.
        self.encrypt_with_key(key, ciphertext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 7539 §2.4.2 test vector.
    #[test]
    fn rfc7539_encryption_vector() {
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let ciphertext = chacha20_xor(&key, &nonce, 1, plaintext);
        let expected_prefix = [
            0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80, 0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d,
            0x69, 0x81, 0xe9, 0x7e, 0x7a, 0xec, 0x1d, 0x43, 0x60, 0xc2, 0x0a, 0x27, 0xaf, 0xcc,
            0xfd, 0x9f, 0xae, 0x0b,
        ];
        assert_eq!(&ciphertext[..32], &expected_prefix);
        assert_eq!(ciphertext.len(), plaintext.len());
        // Round trip.
        assert_eq!(chacha20_xor(&key, &nonce, 1, &ciphertext), plaintext);
    }

    #[test]
    fn convergent_encryption_is_deterministic() {
        let cipher = ConvergentCipher::new();
        let data = b"the same file synced from two folders".repeat(100);
        let c1 = cipher.encrypt(&data);
        let c2 = cipher.encrypt(&data);
        assert_eq!(c1, c2, "identical plaintexts must give identical ciphertexts");
        assert_ne!(c1, data, "ciphertext must differ from plaintext");
    }

    #[test]
    fn different_plaintexts_give_unrelated_ciphertexts() {
        let cipher = ConvergentCipher::new();
        let a = cipher.encrypt(&vec![0u8; 4096]);
        let b = cipher.encrypt(&vec![1u8; 4096]);
        assert_ne!(a, b);
        // Hamming-style check: roughly half the bytes should differ.
        let differing = a.iter().zip(b.iter()).filter(|(x, y)| x != y).count();
        assert!(differing > 3000);
    }

    #[test]
    fn decrypt_restores_the_plaintext() {
        let cipher = ConvergentCipher::new();
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let key = cipher.derive_key(&data);
        let ciphertext = cipher.encrypt(&data);
        assert_eq!(cipher.decrypt(&key, &ciphertext), data);
    }

    #[test]
    fn ciphertext_length_matches_plaintext_length() {
        // Convergent encryption must not inflate uploads, otherwise Wuala's
        // traffic volumes in Fig. 5 would not sit on the "no compression" line.
        let cipher = ConvergentCipher::new();
        for len in [0usize, 1, 63, 64, 65, 1000, 65_537] {
            let data = vec![7u8; len];
            assert_eq!(cipher.encrypt(&data).len(), len);
        }
    }

    #[test]
    fn empty_plaintext_is_handled() {
        let cipher = ConvergentCipher::new();
        let c = cipher.encrypt(b"");
        assert!(c.is_empty());
        let key = cipher.derive_key(b"");
        assert!(cipher.decrypt(&key, &c).is_empty());
    }
}
