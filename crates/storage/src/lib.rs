//! # cloudsim-storage
//!
//! The storage-engine substrate behind the simulated personal cloud storage
//! services.
//!
//! The IMC'13 paper probes five *client capabilities* (§4): chunking,
//! bundling, client-side deduplication, delta encoding and (smart)
//! compression. For the capability detectors of the benchmark suite to have
//! something real to discover, this crate provides functional implementations
//! of each mechanism rather than behavioural flags:
//!
//! * [`hash`] — SHA-256 content hashing (the basis of dedup and delta),
//! * [`chunker`] — fixed-size and content-defined chunking,
//! * [`compress`] — an LZSS compressor with *always* / *smart* (magic-number
//!   aware) / *never* policies, mirroring Dropbox vs. Google Drive vs. the
//!   rest (§4.5),
//! * [`delta`] — an rsync-style rolling-hash delta encoder (Dropbox is the
//!   only service that implements it, §4.4),
//! * [`dedup`] — a content-addressed deduplication index (Dropbox and Wuala,
//!   §4.3),
//! * [`encrypt`] — convergent client-side encryption (Wuala's privacy layer,
//!   which keeps dedup possible because identical plaintexts yield identical
//!   ciphertexts, §4.3),
//! * [`store`] — the server-side object store (chunks, file manifests, user
//!   namespaces) the simulated services commit uploads to.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunker;
pub mod compress;
pub mod dedup;
pub mod delta;
pub mod encrypt;
pub mod hash;
pub mod store;

pub use chunker::{Chunk, ChunkingStrategy};
pub use compress::{compress, decompress, CompressionPolicy};
pub use dedup::DedupIndex;
pub use delta::{DeltaScript, Signature};
pub use encrypt::ConvergentCipher;
pub use hash::{sha256, ContentHash};
pub use store::{FileManifest, ObjectStore, StoredChunk};
