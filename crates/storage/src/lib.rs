//! # cloudsim-storage
//!
//! The storage-engine substrate behind the simulated personal cloud storage
//! services.
//!
//! The IMC'13 paper probes five *client capabilities* (§4): chunking,
//! bundling, client-side deduplication, delta encoding and (smart)
//! compression. For the capability detectors of the benchmark suite to have
//! something real to discover, this crate provides functional implementations
//! of each mechanism rather than behavioural flags:
//!
//! * [`hash`] — SHA-256 content hashing (the basis of dedup and delta),
//! * [`chunker`] — fixed-size and content-defined chunking,
//! * [`mod@compress`] — an LZSS compressor with *always* / *smart* (magic-number
//!   aware) / *never* policies, mirroring Dropbox vs. Google Drive vs. the
//!   rest (§4.5),
//! * [`delta`] — an rsync-style rolling-hash delta encoder (Dropbox is the
//!   only service that implements it, §4.4),
//! * [`dedup`] — a content-addressed deduplication index (Dropbox and Wuala,
//!   §4.3),
//! * [`encrypt`] — convergent client-side encryption (Wuala's privacy layer,
//!   which keeps dedup possible because identical plaintexts yield identical
//!   ciphertexts, §4.3),
//! * [`store`] — the sharded server-side object store (a content-addressed
//!   chunk table with inter-user deduplication plus per-user file manifests)
//!   the simulated services commit uploads to; lock shards keyed by
//!   chunk-hash prefix and user name let a concurrent client fleet commit
//!   without serializing on one lock,
//! * [`pipeline`] — the parallel, zero-copy upload pipeline that runs
//!   chunking, hashing, delta estimation and compression over borrowed
//!   slices with preallocated per-worker scratch, fanned out across chunks
//!   and files with `std::thread::scope`,
//! * [`restore`] — the download direction: a parallel restore pipeline that
//!   reads manifests back out of the store, skips chunks the client already
//!   holds, downloads deltas against locally held bases, decodes the wire
//!   encoding with reusable scratch and reassembles byte-identical content
//!   (failing with typed errors, not panics, on hard-deleted manifests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunker;
pub mod compress;
pub mod dedup;
pub mod delta;
pub mod encrypt;
pub mod hash;
pub mod pipeline;
pub mod restore;
pub mod store;

pub use chunker::{Chunk, ChunkSpan, ChunkingStrategy};
pub use compress::{compress, decompress, CompressionPolicy, LzssScratch};
pub use dedup::DedupIndex;
pub use delta::{DeltaScript, Signature};
pub use encrypt::ConvergentCipher;
pub use hash::{sha256, ContentHash};
pub use pipeline::{
    ChunkArtifacts, DeltaEstimate, FileArtifacts, FileJob, PipelineMode, PipelineSpec,
    UploadPipeline,
};
pub use restore::{
    RestoreError, RestorePipeline, RestoreRequest, RestoreSource, RestoredChunk, RestoredFile,
};
pub use store::{
    AggregateStats, FileManifest, GcPolicy, GcStats, ObjectStore, StoreStats, StoredChunk,
    DEFAULT_SHARDS,
};
