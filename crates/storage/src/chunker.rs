//! File chunking.
//!
//! §4.1 of the paper finds that Dropbox splits files into 4 MB chunks, Google
//! Drive into 8 MB chunks, SkyDrive and Wuala use variable chunk sizes, and
//! Cloud Drive does not chunk at all. Chunking "simplifies upload recovery in
//! case of failures" and interacts with deduplication and delta encoding
//! (Fig. 4 right: a 10 MB Wuala file is split into 3 chunks and only the two
//! modified chunks are re-uploaded).
//!
//! Two chunkers are provided: a fixed-size splitter and a content-defined
//! splitter based on a Gear-style rolling hash, which yields variable chunk
//! sizes whose boundaries survive insertions (the behaviour observed for
//! SkyDrive and Wuala).

use crate::hash::{sha256, ContentHash};
use serde::{Deserialize, Serialize};

/// How a service splits file content before upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChunkingStrategy {
    /// Files are uploaded as single objects (Cloud Drive).
    None,
    /// Fixed-size chunks of the given size in bytes (Dropbox: 4 MiB, Google
    /// Drive: 8 MiB).
    Fixed {
        /// Chunk size in bytes.
        size: u64,
    },
    /// Content-defined chunking with the given minimum, average (target) and
    /// maximum chunk sizes (SkyDrive, Wuala).
    ContentDefined {
        /// Smallest chunk the splitter will emit.
        min: u64,
        /// Target average chunk size (must be a power of two).
        avg: u64,
        /// Largest chunk the splitter will emit.
        max: u64,
    },
}

impl ChunkingStrategy {
    /// Dropbox's fixed 4 MiB chunks.
    pub const DROPBOX: ChunkingStrategy = ChunkingStrategy::Fixed { size: 4 * 1024 * 1024 };
    /// Google Drive's fixed 8 MiB chunks.
    pub const GOOGLE_DRIVE: ChunkingStrategy = ChunkingStrategy::Fixed { size: 8 * 1024 * 1024 };
    /// A variable-size splitter averaging ~2 MiB (SkyDrive/Wuala-like).
    pub const VARIABLE: ChunkingStrategy = ChunkingStrategy::ContentDefined {
        min: 1024 * 1024,
        avg: 2 * 1024 * 1024,
        max: 4 * 1024 * 1024,
    };

    /// A human-readable description matching Table 1 of the paper
    /// ("4 MB", "8 MB", "var.", "no").
    pub fn describe(&self) -> String {
        match self {
            ChunkingStrategy::None => "no".to_string(),
            ChunkingStrategy::Fixed { size } => format!("{} MB", size / (1024 * 1024)),
            ChunkingStrategy::ContentDefined { .. } => "var.".to_string(),
        }
    }

    /// Splits `data` into chunks according to the strategy.
    pub fn chunk(&self, data: &[u8]) -> Vec<Chunk> {
        self.spans(data)
            .into_iter()
            .map(|span| Chunk::from_slice(span.offset, &data[span.range()]))
            .collect()
    }

    /// Computes chunk boundaries only, without hashing the content — the
    /// cheap sequential part of chunking. The upload pipeline fans the
    /// per-span hashing and coding out across worker threads.
    pub fn spans(&self, data: &[u8]) -> Vec<ChunkSpan> {
        match *self {
            ChunkingStrategy::None => {
                if data.is_empty() {
                    Vec::new()
                } else {
                    vec![ChunkSpan { offset: 0, len: data.len() as u64 }]
                }
            }
            ChunkingStrategy::Fixed { size } => {
                assert!(size > 0, "chunk size must be positive");
                let mut spans = Vec::with_capacity(data.len() / size as usize + 1);
                let mut offset = 0u64;
                while (offset as usize) < data.len() {
                    let len = size.min(data.len() as u64 - offset);
                    spans.push(ChunkSpan { offset, len });
                    offset += len;
                }
                spans
            }
            ChunkingStrategy::ContentDefined { min, avg, max } => {
                content_defined_spans(data, min as usize, avg as usize, max as usize)
            }
        }
    }
}

/// A chunk boundary: offset and length, before the content is hashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkSpan {
    /// Byte offset of the chunk within the file.
    pub offset: u64,
    /// Chunk length in bytes.
    pub len: u64,
}

impl ChunkSpan {
    /// The byte range of the span.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.offset as usize..(self.offset + self.len) as usize
    }
}

/// One chunk of a file: its position, length and content hash.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chunk {
    /// Byte offset of the chunk within the file.
    pub offset: u64,
    /// Chunk length in bytes.
    pub len: u64,
    /// SHA-256 of the chunk content.
    pub hash: ContentHash,
}

impl Chunk {
    /// Builds a chunk record from a slice of file content.
    pub fn from_slice(offset: u64, data: &[u8]) -> Chunk {
        Chunk { offset, len: data.len() as u64, hash: sha256(data) }
    }

    /// The exclusive end offset of the chunk.
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

/// Gear-table rolling hash for content-defined chunking. The table is a fixed
/// pseudo-random permutation derived from a splitmix64 stream so the chunker
/// is fully deterministic across runs. It is built once at compile time —
/// the original implementation recomputed all 256 entries on every chunking
/// call, a fixed cost the pipeline pays millions of times.
static GEAR_TABLE: [u64; 256] = build_gear_table();

const fn build_gear_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut x = 0x9E3779B97F4A7C15u64;
    let mut i = 0usize;
    while i < 256 {
        x = x.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        table[i] = z ^ (z >> 31);
        i += 1;
    }
    table
}

fn content_defined_spans(data: &[u8], min: usize, avg: usize, max: usize) -> Vec<ChunkSpan> {
    assert!(min > 0 && min <= avg && avg <= max, "invalid chunking parameters");
    assert!(avg.is_power_of_two(), "average chunk size must be a power of two");
    if data.is_empty() {
        return Vec::new();
    }
    // A boundary is declared when log2(avg) selected bits of the rolling hash
    // are all zero, which happens with probability 1/avg per position and thus
    // yields an expected chunk length of `avg`. Bits 16.. are used because the
    // gear hash mixes the most recent ~48 bytes into them.
    let bits = avg.trailing_zeros();
    let mask: u64 = ((1u64 << bits) - 1) << 16;

    let mut spans = Vec::new();
    let mut start = 0usize;
    let mut hash: u64 = 0;
    let mut i = 0usize;
    while i < data.len() {
        hash = (hash << 1).wrapping_add(GEAR_TABLE[data[i] as usize]);
        let length = i - start + 1;
        let at_boundary = length >= min && (hash & mask) == 0;
        if at_boundary || length >= max || i == data.len() - 1 {
            spans.push(ChunkSpan { offset: start as u64, len: length as u64 });
            start = i + 1;
            hash = 0;
        }
        i += 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        // Mix the seed so that nearby seeds produce unrelated streams.
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(0xD1B54A32D192ED03) | 1;
        while out.len() < len {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            out.extend_from_slice(&x.to_le_bytes());
        }
        out.truncate(len);
        out
    }

    #[test]
    fn no_chunking_returns_a_single_object() {
        let data = pseudo_random(100_000, 1);
        let chunks = ChunkingStrategy::None.chunk(&data);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].offset, 0);
        assert_eq!(chunks[0].len, 100_000);
        assert!(ChunkingStrategy::None.chunk(&[]).is_empty());
    }

    #[test]
    fn fixed_chunking_matches_paper_sizes() {
        let data = pseudo_random(10 * 1024 * 1024, 2);
        let dropbox = ChunkingStrategy::DROPBOX.chunk(&data);
        assert_eq!(dropbox.len(), 3); // 4 + 4 + 2 MB
        assert_eq!(dropbox[0].len, 4 * 1024 * 1024);
        assert_eq!(dropbox[2].len, 2 * 1024 * 1024);
        let gdrive = ChunkingStrategy::GOOGLE_DRIVE.chunk(&data);
        assert_eq!(gdrive.len(), 2); // 8 + 2 MB
                                     // Offsets tile the file exactly.
        assert_eq!(dropbox.iter().map(|c| c.len).sum::<u64>(), data.len() as u64);
        assert_eq!(dropbox[1].offset, dropbox[0].end());
    }

    #[test]
    fn fixed_chunks_of_same_content_share_hashes() {
        let data = pseudo_random(8 * 1024 * 1024, 3);
        let a = ChunkingStrategy::DROPBOX.chunk(&data);
        let b = ChunkingStrategy::DROPBOX.chunk(&data);
        assert_eq!(a, b);
    }

    #[test]
    fn content_defined_chunk_sizes_are_within_bounds_and_variable() {
        let data = pseudo_random(16 * 1024 * 1024, 4);
        let strategy = ChunkingStrategy::ContentDefined {
            min: 256 * 1024,
            avg: 1024 * 1024,
            max: 4 * 1024 * 1024,
        };
        let chunks = strategy.chunk(&data);
        assert!(chunks.len() >= 3, "expected several chunks, got {}", chunks.len());
        assert_eq!(chunks.iter().map(|c| c.len).sum::<u64>(), data.len() as u64);
        for c in &chunks[..chunks.len() - 1] {
            assert!(c.len >= 256 * 1024, "chunk below min: {}", c.len);
            assert!(c.len <= 4 * 1024 * 1024, "chunk above max: {}", c.len);
        }
        // Variable: not all chunks the same size.
        let first = chunks[0].len;
        assert!(chunks.iter().any(|c| c.len != first));
        assert_eq!(strategy.describe(), "var.");
    }

    #[test]
    fn content_defined_boundaries_survive_a_prefix_insertion() {
        // Insert bytes at the front; most chunk hashes must still match,
        // which is what makes variable chunking dedup-friendly (Fig. 4 right).
        let data = pseudo_random(8 * 1024 * 1024, 5);
        let strategy = ChunkingStrategy::ContentDefined {
            min: 128 * 1024,
            avg: 512 * 1024,
            max: 2 * 1024 * 1024,
        };
        let before = strategy.chunk(&data);
        let mut shifted = pseudo_random(10_000, 99);
        shifted.extend_from_slice(&data);
        let after = strategy.chunk(&shifted);
        let before_hashes: std::collections::HashSet<_> = before.iter().map(|c| c.hash).collect();
        let preserved = after.iter().filter(|c| before_hashes.contains(&c.hash)).count();
        assert!(
            preserved * 2 >= before.len(),
            "only {preserved} of {} chunks survived the shift",
            before.len()
        );
    }

    #[test]
    fn describe_matches_table1_wording() {
        assert_eq!(ChunkingStrategy::DROPBOX.describe(), "4 MB");
        assert_eq!(ChunkingStrategy::GOOGLE_DRIVE.describe(), "8 MB");
        assert_eq!(ChunkingStrategy::None.describe(), "no");
    }

    #[test]
    fn small_files_are_one_chunk_under_every_strategy() {
        let data = pseudo_random(10_000, 6);
        for strategy in [
            ChunkingStrategy::None,
            ChunkingStrategy::DROPBOX,
            ChunkingStrategy::GOOGLE_DRIVE,
            ChunkingStrategy::VARIABLE,
        ] {
            let chunks = strategy.chunk(&data);
            assert_eq!(chunks.len(), 1, "strategy {strategy:?}");
            assert_eq!(chunks[0].len, 10_000);
        }
    }

    #[test]
    fn spans_agree_with_chunks_under_every_strategy() {
        let data = pseudo_random(6 * 1024 * 1024, 17);
        for strategy in [
            ChunkingStrategy::None,
            ChunkingStrategy::DROPBOX,
            ChunkingStrategy::GOOGLE_DRIVE,
            ChunkingStrategy::VARIABLE,
        ] {
            let spans = strategy.spans(&data);
            let chunks = strategy.chunk(&data);
            assert_eq!(spans.len(), chunks.len(), "{strategy:?}");
            for (span, chunk) in spans.iter().zip(&chunks) {
                assert_eq!(span.offset, chunk.offset);
                assert_eq!(span.len, chunk.len);
                assert_eq!(chunk.hash, sha256(&data[span.range()]));
            }
        }
        assert!(ChunkingStrategy::VARIABLE.spans(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_fixed_size_panics() {
        let _ = ChunkingStrategy::Fixed { size: 0 }.chunk(b"abc");
    }

    #[test]
    #[should_panic(expected = "invalid chunking parameters")]
    fn invalid_cdc_parameters_panic() {
        let _ = ChunkingStrategy::ContentDefined { min: 10, avg: 8, max: 100 }.chunk(b"abc");
    }
}
