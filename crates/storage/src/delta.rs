//! Rsync-style delta encoding.
//!
//! §4.4: "Delta encoding is a specialized compression technique that
//! calculates file differences among two copies, allowing the transmission of
//! only the modifications between revisions." The paper's test appends or
//! inserts data at the beginning, end or a random position of a file and
//! checks whether the uploaded volume tracks the modification size — which
//! requires a *rolling* hash so that matches are found at arbitrary byte
//! offsets. Dropbox is the only service that implements this.
//!
//! The implementation follows the classic rsync scheme: the old revision is
//! summarised as per-block `(weak Adler-32-style checksum, strong SHA-256)`
//! signatures; the new revision is scanned with a rolling window, emitting
//! `Copy` operations for blocks already on the server and `Literal` runs for
//! new data.

use crate::hash::{sha256, ContentHash};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Default delta block size (rsync uses ~700–16 kB; Dropbox-scale clients use
/// a few kB per block inside each 4 MB chunk).
pub const DEFAULT_BLOCK_SIZE: usize = 8 * 1024;

/// Weak rolling checksum (Adler-32 flavour used by rsync). Public so the
/// property tests can assert the rolled value equals a from-scratch
/// recomputation at every offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WeakSum(pub u32);

/// Computes the weak checksum of a block from scratch.
pub fn weak_sum(data: &[u8]) -> WeakSum {
    let mut a: u32 = 0;
    let mut b: u32 = 0;
    for (i, &byte) in data.iter().enumerate() {
        a = a.wrapping_add(byte as u32);
        b = b.wrapping_add((data.len() - i) as u32 * byte as u32);
    }
    WeakSum((a & 0xFFFF) | (b << 16))
}

/// Rolls the weak checksum forward by one byte: the sum of
/// `data[i+1..i+1+len]` from the sum of `data[i..i+len]` in O(1).
pub fn roll(sum: WeakSum, out_byte: u8, in_byte: u8, block_len: usize) -> WeakSum {
    let a = sum.0 & 0xFFFF;
    let b = sum.0 >> 16;
    let a = a.wrapping_sub(out_byte as u32).wrapping_add(in_byte as u32) & 0xFFFF;
    let b = b
        .wrapping_sub(block_len as u32 * out_byte as u32)
        .wrapping_add(a)
        .wrapping_sub(in_byte as u32)
        .wrapping_add(in_byte as u32); // keep formula explicit; a already includes in_byte
    WeakSum(a | (b << 16))
}

/// Signature of the server-side (old) revision of a file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    /// Block size the signature was computed with.
    pub block_size: usize,
    /// Strong hash of each block, in order.
    pub blocks: Vec<ContentHash>,
    /// Total length of the old revision.
    pub total_len: u64,
    #[serde(skip)]
    weak_index: HashMap<u32, Vec<usize>>,
}

impl Signature {
    /// Computes the signature of `old` with the default block size.
    pub fn new(old: &[u8]) -> Signature {
        Signature::with_block_size(old, DEFAULT_BLOCK_SIZE)
    }

    /// Computes the signature of `old` with an explicit block size.
    pub fn with_block_size(old: &[u8], block_size: usize) -> Signature {
        assert!(block_size > 0, "block size must be positive");
        let mut blocks = Vec::new();
        let mut weak_index: HashMap<u32, Vec<usize>> = HashMap::new();
        for (i, block) in old.chunks(block_size).enumerate() {
            blocks.push(sha256(block));
            if block.len() == block_size {
                weak_index.entry(weak_sum(block).0).or_default().push(i);
            }
        }
        Signature { block_size, blocks, total_len: old.len() as u64, weak_index }
    }

    /// Number of blocks in the signature.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Size of the signature on the wire: one weak (4 B) and one strong (32 B)
    /// checksum per block — this is control traffic the delta protocol costs.
    pub fn wire_size(&self) -> u64 {
        self.blocks.len() as u64 * 36
    }
}

/// One instruction of a delta script.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeltaOp {
    /// Copy block `index` of the old revision.
    Copy {
        /// Index of the old-revision block to copy.
        index: usize,
    },
    /// Emit the given literal bytes.
    Literal {
        /// Raw bytes not present in the old revision.
        data: Vec<u8>,
    },
}

/// A delta script transforming the old revision into the new one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaScript {
    /// Block size of the signature this script refers to.
    pub block_size: usize,
    /// The instructions, in output order.
    pub ops: Vec<DeltaOp>,
}

impl DeltaScript {
    /// Computes the delta of `new` against the signature of the old revision.
    pub fn compute(signature: &Signature, new: &[u8]) -> DeltaScript {
        let block_size = signature.block_size;
        let mut ops: Vec<DeltaOp> = Vec::new();
        let mut literal: Vec<u8> = Vec::new();
        let mut i = 0usize;

        let mut current_weak: Option<WeakSum> = None;

        while i < new.len() {
            if i + block_size <= new.len() {
                let window = &new[i..i + block_size];
                let weak = match current_weak {
                    Some(w) => w,
                    None => weak_sum(window),
                };
                let matched = signature.weak_index.get(&weak.0).and_then(|candidates| {
                    let strong = sha256(window);
                    candidates.iter().copied().find(|&idx| signature.blocks[idx] == strong)
                });
                if let Some(idx) = matched {
                    if !literal.is_empty() {
                        ops.push(DeltaOp::Literal { data: std::mem::take(&mut literal) });
                    }
                    ops.push(DeltaOp::Copy { index: idx });
                    i += block_size;
                    current_weak = None;
                    continue;
                }
                // No match: shift the window one byte, keep rolling.
                literal.push(new[i]);
                if i + block_size < new.len() {
                    current_weak = Some(roll(weak, new[i], new[i + block_size], block_size));
                } else {
                    current_weak = None;
                }
                i += 1;
            } else {
                literal.push(new[i]);
                i += 1;
            }
        }
        if !literal.is_empty() {
            ops.push(DeltaOp::Literal { data: literal });
        }
        DeltaScript { block_size, ops }
    }

    /// Applies the script to the old revision, reconstructing the new one.
    pub fn apply(&self, old: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        for op in &self.ops {
            match op {
                DeltaOp::Copy { index } => {
                    let start = index * self.block_size;
                    let end = (start + self.block_size).min(old.len());
                    out.extend_from_slice(&old[start..end]);
                }
                DeltaOp::Literal { data } => out.extend_from_slice(data),
            }
        }
        out
    }

    /// Bytes of new (literal) data the script carries.
    pub fn literal_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                DeltaOp::Literal { data } => data.len() as u64,
                DeltaOp::Copy { .. } => 0,
            })
            .sum()
    }

    /// Number of copy instructions.
    pub fn copy_count(&self) -> usize {
        self.ops.iter().filter(|op| matches!(op, DeltaOp::Copy { .. })).count()
    }

    /// Size of the script on the wire: literals plus a small fixed cost per
    /// instruction (the quantity Fig. 4 plots for Dropbox).
    pub fn wire_size(&self) -> u64 {
        let op_overhead = self.ops.len() as u64 * 8;
        self.literal_bytes() + op_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        // Mix the seed so that nearby seeds produce unrelated streams.
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(0xD1B54A32D192ED03) | 1;
        while out.len() < len {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            out.extend_from_slice(&x.to_le_bytes());
        }
        out.truncate(len);
        out
    }

    #[test]
    fn identical_files_produce_a_copy_only_script() {
        let old = pseudo_random(100_000, 1);
        let sig = Signature::new(&old);
        let delta = DeltaScript::compute(&sig, &old);
        assert_eq!(delta.literal_bytes(), old.len() as u64 % DEFAULT_BLOCK_SIZE as u64);
        assert!(delta.copy_count() >= old.len() / DEFAULT_BLOCK_SIZE);
        assert_eq!(delta.apply(&old), old);
        assert!(delta.wire_size() < old.len() as u64 / 4);
    }

    #[test]
    fn append_uploads_roughly_the_appended_bytes() {
        // The paper's Fig. 4 (left): data appended at the end of a file.
        let old = pseudo_random(1_000_000, 2);
        let mut new = old.clone();
        new.extend_from_slice(&pseudo_random(100_000, 3));
        let sig = Signature::new(&old);
        let delta = DeltaScript::compute(&sig, &new);
        assert_eq!(delta.apply(&old), new);
        let literal = delta.literal_bytes();
        assert!(
            (100_000..120_000).contains(&literal),
            "literal bytes {literal} should track the 100 kB append"
        );
    }

    #[test]
    fn prepend_uploads_roughly_the_prepended_bytes() {
        // Rolling matching must find the old content even though every byte
        // offset shifted (this is what separates delta encoding from naive
        // block diffing).
        let old = pseudo_random(1_000_000, 4);
        let mut new = pseudo_random(50_000, 5);
        new.extend_from_slice(&old);
        let sig = Signature::new(&old);
        let delta = DeltaScript::compute(&sig, &new);
        assert_eq!(delta.apply(&old), new);
        let literal = delta.literal_bytes();
        assert!(
            (50_000..70_000).contains(&literal),
            "literal bytes {literal} should track the 50 kB prepend"
        );
    }

    #[test]
    fn random_offset_insertion_uploads_roughly_the_inserted_bytes() {
        let old = pseudo_random(2_000_000, 6);
        let insert_at = 777_777;
        let inserted = pseudo_random(30_000, 7);
        let mut new = Vec::with_capacity(old.len() + inserted.len());
        new.extend_from_slice(&old[..insert_at]);
        new.extend_from_slice(&inserted);
        new.extend_from_slice(&old[insert_at..]);
        let sig = Signature::new(&old);
        let delta = DeltaScript::compute(&sig, &new);
        assert_eq!(delta.apply(&old), new);
        let literal = delta.literal_bytes();
        assert!(
            literal < 30_000 + 2 * DEFAULT_BLOCK_SIZE as u64,
            "literal bytes {literal} should be close to the 30 kB insertion"
        );
    }

    #[test]
    fn completely_different_files_transmit_everything() {
        let old = pseudo_random(200_000, 8);
        let new = pseudo_random(200_000, 9);
        let sig = Signature::new(&old);
        let delta = DeltaScript::compute(&sig, &new);
        assert_eq!(delta.apply(&old), new);
        assert_eq!(delta.literal_bytes(), 200_000);
        assert_eq!(delta.copy_count(), 0);
    }

    #[test]
    fn signature_wire_size_scales_with_block_count() {
        let data = pseudo_random(160_000, 10);
        let sig = Signature::with_block_size(&data, 16_000);
        assert_eq!(sig.block_count(), 10);
        assert_eq!(sig.wire_size(), 360);
        assert_eq!(sig.total_len, 160_000);
    }

    #[test]
    fn small_edits_in_place_only_touch_affected_blocks() {
        let old = pseudo_random(512 * 1024, 11);
        let mut new = old.clone();
        // Flip 10 bytes in the middle of one block.
        for b in &mut new[100_000..100_010] {
            *b ^= 0xFF;
        }
        let sig = Signature::new(&old);
        let delta = DeltaScript::compute(&sig, &new);
        assert_eq!(delta.apply(&old), new);
        assert!(delta.literal_bytes() <= 2 * DEFAULT_BLOCK_SIZE as u64);
    }

    #[test]
    fn empty_inputs_are_handled() {
        let sig = Signature::new(&[]);
        assert_eq!(sig.block_count(), 0);
        let delta = DeltaScript::compute(&sig, b"brand new content");
        assert_eq!(delta.apply(&[]), b"brand new content");
        let delta_empty = DeltaScript::compute(&Signature::new(b"old stuff"), &[]);
        assert_eq!(delta_empty.apply(b"old stuff"), Vec::<u8>::new());
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_panics() {
        let _ = Signature::with_block_size(b"abc", 0);
    }

    #[test]
    fn weak_sum_rolls_correctly() {
        let data = pseudo_random(4_000, 12);
        let block = 256;
        let mut rolled = weak_sum(&data[0..block]);
        for i in 0..data.len() - block - 1 {
            rolled = roll(rolled, data[i], data[i + block], block);
            let direct = weak_sum(&data[i + 1..i + 1 + block]);
            assert_eq!(rolled, direct, "rolling diverged at offset {i}");
        }
    }
}
