//! Transparent compression of uploads.
//!
//! §4.5 of the paper finds that Dropbox compresses *everything* before
//! transmission (wasting CPU and sometimes bytes on already-compressed
//! content), Google Drive compresses *smartly* (it detects JPEG content from
//! the file header and skips compression), and the other three services do
//! not compress at all. The compression test uses three file sets: highly
//! compressible dictionary text, incompressible random bytes, and "fake
//! JPEGs" (JPEG header but text payload) that expose whether the smart policy
//! looks at magic numbers only or at the actual content.
//!
//! The compressor is a self-contained LZSS (LZ77 with a literal/match flag
//! bitmap): dictionary text compresses to a fraction of its size, random
//! bytes expand by the flag overhead (~1/8), which is exactly the behaviour
//! Fig. 5 shows for Dropbox.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// When a service compresses data before upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompressionPolicy {
    /// Never compress (SkyDrive, Wuala, Cloud Drive).
    Never,
    /// Compress every file regardless of content (Dropbox).
    Always,
    /// Compress unless the file looks already compressed, judged by magic
    /// numbers in its first bytes (Google Drive).
    Smart,
}

impl CompressionPolicy {
    /// Table-1 wording: "no", "always", "smart".
    pub fn describe(&self) -> &'static str {
        match self {
            CompressionPolicy::Never => "no",
            CompressionPolicy::Always => "always",
            CompressionPolicy::Smart => "smart",
        }
    }

    /// Number of bytes that would actually be uploaded for `data` under this
    /// policy (the quantity Fig. 5 plots). Compression is only kept when it
    /// helps; like real implementations, an incompressible input falls back to
    /// stored mode with a one-byte marker.
    pub fn upload_size(&self, data: &[u8]) -> u64 {
        with_thread_scratch(|scratch| self.upload_size_with(scratch, data))
    }

    /// [`CompressionPolicy::upload_size`] against an explicit, caller-owned
    /// scratch state — the form the upload pipeline's worker threads use so
    /// the coder tables are reused across chunks without any locking.
    pub fn upload_size_with(&self, scratch: &mut LzssScratch, data: &[u8]) -> u64 {
        match self {
            CompressionPolicy::Never => data.len() as u64,
            CompressionPolicy::Always => scratch.upload_size(data),
            CompressionPolicy::Smart => {
                if looks_compressed(data) {
                    data.len() as u64
                } else {
                    scratch.upload_size(data)
                }
            }
        }
    }

    /// Transforms `data` into the byte stream that goes on the wire.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        match self {
            CompressionPolicy::Never => stored(data),
            CompressionPolicy::Always => compress(data),
            CompressionPolicy::Smart => {
                if looks_compressed(data) {
                    stored(data)
                } else {
                    compress(data)
                }
            }
        }
    }
}

/// Dropbox in the paper compresses with zlib; the LZSS implemented here is
/// weaker, so sizes are scaled against what the paper's Fig. 5(a) shows for
/// dictionary text. The wire format starts with a 1-byte tag: 0 = stored,
/// 1 = LZSS.
const TAG_STORED: u8 = 0;
const TAG_LZSS: u8 = 1;

/// Window and match-length limits of the LZSS coder.
const WINDOW: usize = 32 * 1024;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 259;

fn stored(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + 1);
    out.push(TAG_STORED);
    out.extend_from_slice(data);
    out
}

/// Sentinel for "no chain entry" in the match-finder tables.
const NO_POS: u32 = u32::MAX;

/// Number of hash-chain candidates examined per position.
const MAX_TRIES: u32 = 32;

/// Reusable match-finder state of the LZSS coder.
///
/// The original coder allocated a fresh 64 k-entry `head` table plus an
/// O(input) `prev` chain vector *per call*, which made the allocator the
/// bottleneck of the upload pipeline. The scratch replaces `prev` with a
/// ring buffer of `WINDOW` entries indexed by `position & (WINDOW - 1)` —
/// valid because candidates further than `WINDOW` back are never followed —
/// and uses `u32` indices throughout, shrinking the working set 4× and
/// reducing the per-call cost to one `memset` of the `head` table. The
/// output buffer is reused as well, so a warmed-up scratch performs **zero
/// heap allocation per call**.
///
/// One scratch per worker thread: exclusivity comes from the `&mut self`
/// receivers (the type itself auto-derives `Send`/`Sync` like any plain
/// `Vec` holder — there is no internal locking to share it through). The
/// emitted byte stream is identical to the original coder's.
#[derive(Debug, Clone)]
pub struct LzssScratch {
    /// Hash → most recent position with that 4-byte-prefix hash.
    head: Vec<u32>,
    /// Ring buffer: `chain[pos & (WINDOW-1)]` = previous position with the
    /// same prefix hash as `pos` (only meaningful within the window).
    chain: Vec<u32>,
    /// Reused output buffer.
    buf: Vec<u8>,
}

impl Default for LzssScratch {
    fn default() -> Self {
        LzssScratch::new()
    }
}

impl LzssScratch {
    /// Allocates the scratch tables (the only allocations the coder makes).
    pub fn new() -> LzssScratch {
        LzssScratch { head: vec![NO_POS; 1 << 16], chain: vec![NO_POS; WINDOW], buf: Vec::new() }
    }

    /// Bytes of heap the scratch currently owns — test hook for the
    /// zero-per-call-growth guarantee.
    pub fn heap_bytes(&self) -> usize {
        self.head.capacity() * 4 + self.chain.capacity() * 4 + self.buf.capacity()
    }

    /// Compresses `data`, returning the wire bytes as a slice into the
    /// reused internal buffer (valid until the next call). Falls back to
    /// stored mode when compression would expand the input.
    pub fn compress_into(&mut self, data: &[u8]) -> &[u8] {
        assert!((data.len() as u64) < NO_POS as u64, "input too large for the LZSS coder");
        self.head.fill(NO_POS);
        let head = &mut self.head;
        let chain = &mut self.chain;
        let out = &mut self.buf;
        out.clear();
        out.push(TAG_LZSS);
        out.extend_from_slice(&(data.len() as u32).to_le_bytes());

        let hash = |window: &[u8]| -> usize {
            let v = u32::from_le_bytes([window[0], window[1], window[2], window[3]]);
            ((v.wrapping_mul(2654435761)) >> 16) as usize
        };
        let insert = |head: &mut [u32], chain: &mut [u32], h: usize, pos: usize| {
            chain[pos & (WINDOW - 1)] = head[h];
            head[h] = pos as u32;
        };

        let mut flags_pos = out.len();
        out.push(0);
        let mut flag_bit = 0u8;
        let mut i = 0usize;

        let push_token = |out: &mut Vec<u8>,
                          flags_pos: &mut usize,
                          flag_bit: &mut u8,
                          is_match: bool,
                          bytes: &[u8]| {
            if *flag_bit == 8 {
                *flags_pos = out.len();
                out.push(0);
                *flag_bit = 0;
            }
            if is_match {
                out[*flags_pos] |= 1 << *flag_bit;
            }
            *flag_bit += 1;
            out.extend_from_slice(bytes);
        };

        while i < data.len() {
            let mut best_len = 0usize;
            let mut best_dist = 0usize;
            if i + MIN_MATCH <= data.len() {
                let h = hash(&data[i..i + 4]);
                let mut candidate = head[h];
                let mut tries = MAX_TRIES;
                while candidate != NO_POS && tries > 0 {
                    let c = candidate as usize;
                    if i - c > WINDOW {
                        break;
                    }
                    let limit = (data.len() - i).min(MAX_MATCH);
                    let mut l = 0usize;
                    while l < limit && data[c + l] == data[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_dist = i - c;
                        if l >= MAX_MATCH {
                            break;
                        }
                    }
                    candidate = chain[c & (WINDOW - 1)];
                    tries -= 1;
                }
            }

            if best_len >= MIN_MATCH {
                // Match token: 2-byte distance, 1-byte length (len - MIN_MATCH).
                let token = [
                    (best_dist & 0xFF) as u8,
                    (best_dist >> 8) as u8,
                    (best_len - MIN_MATCH) as u8,
                ];
                push_token(out, &mut flags_pos, &mut flag_bit, true, &token);
                // Insert the skipped positions into the hash chains.
                let end = i + best_len;
                while i < end && i + 4 <= data.len() {
                    let h = hash(&data[i..i + 4]);
                    insert(head, chain, h, i);
                    i += 1;
                }
                i = end.max(i);
            } else {
                push_token(out, &mut flags_pos, &mut flag_bit, false, &data[i..i + 1]);
                if i + 4 <= data.len() {
                    let h = hash(&data[i..i + 4]);
                    insert(head, chain, h, i);
                }
                i += 1;
            }
        }

        if out.len() > data.len() {
            out.clear();
            out.push(TAG_STORED);
            out.extend_from_slice(data);
        }
        out
    }

    /// Bytes that travel on the wire for `data` (compressed or stored-mode
    /// fallback), without materialising an owned output.
    pub fn upload_size(&mut self, data: &[u8]) -> u64 {
        (self.compress_into(data).len() as u64).min(data.len() as u64 + 1)
    }
}

thread_local! {
    /// Shared scratch for the allocation-free [`compress`] entry point.
    static THREAD_SCRATCH: RefCell<LzssScratch> = RefCell::new(LzssScratch::new());
}

fn with_thread_scratch<T>(f: impl FnOnce(&mut LzssScratch) -> T) -> T {
    THREAD_SCRATCH.with(|scratch| f(&mut scratch.borrow_mut()))
}

/// Compresses `data` with LZSS. Falls back to stored mode when compression
/// would expand the input. Uses a per-thread [`LzssScratch`], so repeated
/// calls do not re-allocate the match-finder tables; pipeline workers that
/// own a scratch should call [`LzssScratch::compress_into`] directly.
pub fn compress(data: &[u8]) -> Vec<u8> {
    with_thread_scratch(|scratch| scratch.compress_into(data).to_vec())
}

/// Decompresses a stream produced by [`compress`] or
/// [`CompressionPolicy::encode`].
pub fn decompress(stream: &[u8]) -> Result<Vec<u8>, DecompressError> {
    let Some((&tag, rest)) = stream.split_first() else {
        return Err(DecompressError::Truncated);
    };
    match tag {
        TAG_STORED => Ok(rest.to_vec()),
        TAG_LZSS => decompress_lzss(rest),
        other => Err(DecompressError::BadTag(other)),
    }
}

/// Errors produced while decoding a compressed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecompressError {
    /// The stream ended unexpectedly.
    Truncated,
    /// The stream carried an unknown format tag.
    BadTag(u8),
    /// A match token referenced data before the start of the output.
    BadDistance,
}

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "compressed stream is truncated"),
            DecompressError::BadTag(t) => write!(f, "unknown compression tag {t}"),
            DecompressError::BadDistance => write!(f, "match distance out of range"),
        }
    }
}

impl std::error::Error for DecompressError {}

fn decompress_lzss(stream: &[u8]) -> Result<Vec<u8>, DecompressError> {
    if stream.len() < 4 {
        return Err(DecompressError::Truncated);
    }
    let expected = u32::from_le_bytes([stream[0], stream[1], stream[2], stream[3]]) as usize;
    let mut out = Vec::with_capacity(expected);
    let mut i = 4usize;
    while out.len() < expected {
        if i >= stream.len() {
            return Err(DecompressError::Truncated);
        }
        let flags = stream[i];
        i += 1;
        for bit in 0..8 {
            if out.len() >= expected {
                break;
            }
            let is_match = flags & (1 << bit) != 0;
            if is_match {
                if i + 3 > stream.len() {
                    return Err(DecompressError::Truncated);
                }
                let dist = stream[i] as usize | ((stream[i + 1] as usize) << 8);
                let len = stream[i + 2] as usize + MIN_MATCH;
                i += 3;
                if dist == 0 || dist > out.len() {
                    return Err(DecompressError::BadDistance);
                }
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            } else {
                if i >= stream.len() {
                    return Err(DecompressError::Truncated);
                }
                out.push(stream[i]);
                i += 1;
            }
        }
    }
    Ok(out)
}

/// Magic-number sniffing, the paper's suggested "verify the file format before
/// trying to compress it (e.g., using magic numbers)" approach. Only the
/// header is inspected — which is why the *fake JPEG* test (JPEG header, text
/// body) fools the smart policy into skipping compression (Fig. 5c shows
/// Google Drive uploading fake JPEGs uncompressed).
pub fn looks_compressed(data: &[u8]) -> bool {
    const SIGNATURES: &[&[u8]] = &[
        b"\xFF\xD8\xFF",         // JPEG
        b"\x89PNG\r\n\x1a\n",    // PNG
        b"GIF87a",               // GIF
        b"GIF89a",               // GIF
        b"PK\x03\x04",           // ZIP / OOXML
        b"\x1F\x8B",             // gzip
        b"7z\xBC\xAF\x27\x1C",   // 7-Zip
        b"Rar!\x1A\x07",         // RAR
        b"\x42\x5A\x68",         // bzip2
        b"\x00\x00\x00\x1Cftyp", // MP4
        b"OggS",                 // Ogg
        b"fLaC",                 // FLAC
        b"\xFF\xFB",             // MP3
        b"ID3",                  // MP3 with ID3 tag
    ];
    SIGNATURES.iter().any(|sig| data.starts_with(sig))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dictionary_text(len: usize) -> Vec<u8> {
        #[rustfmt::skip]
        const WORDS: &[&str] = &[
            "cloud", "storage", "benchmark", "synchronization", "personal", "measurement",
            "service", "traffic", "capability", "performance", "network", "protocol",
        ];
        let mut out = Vec::with_capacity(len);
        let mut i = 0usize;
        while out.len() < len {
            out.extend_from_slice(WORDS[i % WORDS.len()].as_bytes());
            out.push(b' ');
            i += 1;
        }
        out.truncate(len);
        out
    }

    fn random_bytes(len: usize, seed: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        // Mix the seed so that nearby seeds produce unrelated streams.
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(0xD1B54A32D192ED03) | 1;
        while out.len() < len {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            out.extend_from_slice(&x.to_le_bytes());
        }
        out.truncate(len);
        out
    }

    #[test]
    fn text_compresses_well_and_roundtrips() {
        let text = dictionary_text(200_000);
        let compressed = compress(&text);
        assert!(
            compressed.len() < text.len() / 3,
            "text should compress to <1/3: {} -> {}",
            text.len(),
            compressed.len()
        );
        assert_eq!(decompress(&compressed).unwrap(), text);
    }

    #[test]
    fn random_bytes_fall_back_to_stored_mode() {
        let data = random_bytes(100_000, 7);
        let compressed = compress(&data);
        assert_eq!(compressed.len(), data.len() + 1, "stored mode adds exactly one tag byte");
        assert_eq!(decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn roundtrip_various_sizes_and_patterns() {
        for (i, data) in [
            Vec::new(),
            vec![0u8; 1],
            vec![42u8; 10_000],
            dictionary_text(1),
            dictionary_text(65),
            random_bytes(3, 1),
            random_bytes(70_000, 2),
            dictionary_text(300_000),
        ]
        .into_iter()
        .enumerate()
        {
            let c = compress(&data);
            assert_eq!(decompress(&c).unwrap(), data, "case {i}");
            let s = stored(&data);
            assert_eq!(decompress(&s).unwrap(), data, "stored case {i}");
        }
    }

    #[test]
    fn policies_match_the_paper_behaviour() {
        let text = dictionary_text(500_000);
        let random = random_bytes(500_000, 3);
        let mut fake_jpeg = b"\xFF\xD8\xFF\xE0".to_vec();
        fake_jpeg.extend_from_slice(&dictionary_text(500_000 - 4));

        // Never: uploads exactly the input size for every content type.
        assert_eq!(CompressionPolicy::Never.upload_size(&text), 500_000);
        assert_eq!(CompressionPolicy::Never.upload_size(&random), 500_000);
        assert_eq!(CompressionPolicy::Never.upload_size(&fake_jpeg), 500_000);

        // Always (Dropbox): shrinks text, does not shrink random data, and
        // wastes effort compressing the fake JPEG (but does shrink it, since
        // its body is text).
        assert!(CompressionPolicy::Always.upload_size(&text) < 200_000);
        assert!(CompressionPolicy::Always.upload_size(&random) >= 500_000);
        assert!(CompressionPolicy::Always.upload_size(&fake_jpeg) < 200_000);

        // Smart (Google Drive): shrinks text, skips the (fake) JPEG entirely,
        // and gains nothing on random bytes (stored-mode marker only).
        assert!(CompressionPolicy::Smart.upload_size(&text) < 200_000);
        assert_eq!(CompressionPolicy::Smart.upload_size(&fake_jpeg), 500_000);
        let smart_random = CompressionPolicy::Smart.upload_size(&random);
        assert!((500_000..=500_001).contains(&smart_random), "got {smart_random}");
    }

    #[test]
    fn encode_roundtrips_under_every_policy() {
        let text = dictionary_text(50_000);
        for policy in
            [CompressionPolicy::Never, CompressionPolicy::Always, CompressionPolicy::Smart]
        {
            let encoded = policy.encode(&text);
            assert_eq!(decompress(&encoded).unwrap(), text, "{policy:?}");
        }
    }

    #[test]
    fn magic_number_detection() {
        assert!(looks_compressed(b"\xFF\xD8\xFF\xE0 rest of jpeg"));
        assert!(looks_compressed(b"\x89PNG\r\n\x1a\n...."));
        assert!(looks_compressed(b"PK\x03\x04zipfile"));
        assert!(looks_compressed(b"\x1F\x8Bgzip"));
        assert!(!looks_compressed(b"plain text document"));
        assert!(!looks_compressed(b""));
        assert!(!looks_compressed(&[0u8; 100]));
    }

    #[test]
    fn describe_matches_table1_wording() {
        assert_eq!(CompressionPolicy::Never.describe(), "no");
        assert_eq!(CompressionPolicy::Always.describe(), "always");
        assert_eq!(CompressionPolicy::Smart.describe(), "smart");
    }

    #[test]
    fn scratch_reuse_is_allocation_stable_and_correct() {
        let mut scratch = LzssScratch::new();
        let inputs = [
            dictionary_text(150_000),
            random_bytes(100_000, 21),
            dictionary_text(10),
            Vec::new(),
            dictionary_text(300_000),
        ];
        // Warm up with every input so the output buffer reaches its
        // high-water mark, then assert the heap footprint never grows again.
        for data in &inputs {
            let _ = scratch.compress_into(data);
        }
        let footprint = scratch.heap_bytes();
        for (i, data) in inputs.iter().enumerate() {
            let wire = scratch.compress_into(data).to_vec();
            assert_eq!(decompress(&wire).unwrap(), *data, "case {i}");
            assert_eq!(wire, compress(data), "scratch and one-shot paths must agree, case {i}");
            assert_eq!(
                scratch.heap_bytes(),
                footprint,
                "per-call heap growth detected on case {i}"
            );
        }
    }

    /// Regression pin for the emitted byte stream itself: the scratch-based
    /// coder was written to be byte-identical to the original per-call
    /// allocator version, and every figure of the paper reproduction depends
    /// on these byte counts staying put. A future match-finder change that
    /// alters the stream (even roundtrip-correctly) must update these
    /// digests deliberately.
    #[test]
    fn compressed_streams_are_byte_stable() {
        use crate::hash::sha256;
        let text = dictionary_text(200_000);
        let c1 = compress(&text);
        assert_eq!(c1.len(), 2548);
        assert_eq!(
            sha256(&c1).to_hex(),
            "7f9700701e586d9657b9f0c81acceab1a5f5b6d7a69dc1f3102e37079ea7f022"
        );
        let mut mixed = pseudo_random_for_golden(50_000, 42);
        mixed.extend_from_slice(&dictionary_text(50_000));
        mixed.extend_from_slice(&mixed.clone()[..30_000]);
        let c2 = compress(&mixed);
        assert_eq!(c2.len(), 90739);
        assert_eq!(
            sha256(&c2).to_hex(),
            "7def903e84f30d1b5ee829360797c8dbce762c5760336545fe8a4f9b41f74f8e"
        );
    }

    /// Same generator as `random_bytes`, pinned separately so test-helper
    /// refactors cannot silently change the golden inputs.
    fn pseudo_random_for_golden(len: usize, seed: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(0xD1B54A32D192ED03) | 1;
        while out.len() < len {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            out.extend_from_slice(&x.to_le_bytes());
        }
        out.truncate(len);
        out
    }

    #[test]
    fn upload_size_with_matches_upload_size() {
        let mut scratch = LzssScratch::new();
        let text = dictionary_text(80_000);
        let random = random_bytes(80_000, 5);
        let mut fake_jpeg = b"\xFF\xD8\xFF\xE0".to_vec();
        fake_jpeg.extend_from_slice(&dictionary_text(20_000));
        for policy in
            [CompressionPolicy::Never, CompressionPolicy::Always, CompressionPolicy::Smart]
        {
            for data in [&text, &random, &fake_jpeg] {
                assert_eq!(
                    policy.upload_size_with(&mut scratch, data),
                    policy.upload_size(data),
                    "{policy:?}"
                );
            }
        }
    }

    #[test]
    fn decompress_rejects_malformed_streams() {
        assert_eq!(decompress(&[]), Err(DecompressError::Truncated));
        assert_eq!(decompress(&[9, 1, 2]), Err(DecompressError::BadTag(9)));
        assert_eq!(decompress(&[TAG_LZSS, 1, 0]), Err(DecompressError::Truncated));
        // A match that points before the beginning of the output.
        let bad = vec![TAG_LZSS, 10, 0, 0, 0, 0b0000_0001, 5, 0, 2];
        assert_eq!(decompress(&bad), Err(DecompressError::BadDistance));
        assert!(!DecompressError::Truncated.to_string().is_empty());
        assert!(!DecompressError::BadTag(3).to_string().is_empty());
        assert!(!DecompressError::BadDistance.to_string().is_empty());
    }
}
