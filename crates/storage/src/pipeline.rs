//! The parallel, zero-copy upload pipeline.
//!
//! The paper's capability experiments (§4, Figs. 4–6) all flow through the
//! client-side processing chain — chunk → hash → dedup probe → delta →
//! compress — and a realistic benchmark harness must not be bottlenecked on
//! that chain running single-threaded with per-call scratch allocations.
//! This module makes the chain a first-class, measured subsystem:
//!
//! * **Zero-copy**: every stage works on borrowed slices of the original
//!   file content ([`FileJob`] holds `&[u8]`); nothing is copied until a
//!   result must be owned.
//! * **Preallocated scratch**: each worker owns one
//!   [`crate::compress::LzssScratch`], so the LZSS coder
//!   performs no per-chunk heap allocation, and the content-defined chunker
//!   reads a `static` gear table.
//! * **Parallel**: work is fanned out across *chunks and files* with
//!   `std::thread::scope` — first the per-file boundary scans, then the
//!   flattened `(file, chunk)` hash/delta/compress units, so one huge file
//!   parallelises as well as many small ones.
//! * **Deterministic**: workers tag every result with its work-item index
//!   and the merge step reassembles them in file/chunk order, so the
//!   produced artifacts — and therefore every downstream byte count — are
//!   bit-identical between [`UploadPipeline::sequential`] and
//!   [`UploadPipeline::parallel`]. Property tests assert this.
//!
//! The pipeline computes the *pure* per-chunk quantities (hash, compressed
//! upload size, candidate delta estimate). The stateful decisions — dedup
//! index queries, server commits — stay sequential in
//! `cloudsim_services::UploadPlanner`, which consumes these artifacts in
//! deterministic file order.

use crate::chunker::{Chunk, ChunkSpan, ChunkingStrategy};
use crate::compress::{CompressionPolicy, LzssScratch};
use crate::delta::{DeltaScript, Signature};
use crate::hash::ContentHash;
use cloudsim_parallel::{auto_workers, run_indexed};

/// Batches smaller than this (total content bytes) run single-threaded in
/// auto-parallel mode: the scoped-thread fan-out costs more than the work,
/// and harnesses that are already parallel at a higher level (one thread per
/// benchmark cell) would otherwise oversubscribe the host with nested
/// spawns. An explicit nonzero [`UploadPipeline::with_threads`] count is
/// honoured regardless.
const PARALLEL_THRESHOLD_BYTES: u64 = 4 * 1024 * 1024;

/// How the pipeline schedules its work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineMode {
    /// Single-threaded reference execution (also the fallback on one-core
    /// hosts). Produces bit-identical artifacts to `Parallel`.
    Sequential,
    /// Fan out across worker threads. `threads == 0` means "use the host's
    /// available parallelism".
    Parallel {
        /// Worker thread count; `0` auto-detects.
        threads: usize,
    },
}

/// What the pipeline computes per chunk (see [`ChunkArtifacts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaEstimate {
    /// Wire size of the delta script against the previous revision's
    /// same-index chunk.
    pub wire_bytes: u64,
    /// Wire size of the block signature the client must download/compare
    /// (control-plane cost of the delta protocol).
    pub signature_bytes: u64,
}

/// Per-chunk pipeline output: identity plus the byte counts every upload
/// decision needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkArtifacts {
    /// The chunk (offset, length, SHA-256).
    pub chunk: Chunk,
    /// Bytes a full upload of this chunk would transfer under the service's
    /// compression policy. `0` when the estimate is provably never read:
    /// the chunk was skipped by the known-chunk filter of
    /// [`UploadPipeline::process_filtered`] (a dedup hit uploads nothing) or
    /// its [`DeltaEstimate`] already wins over any full upload.
    pub full_upload_bytes: u64,
    /// Candidate delta transfer, present only when the service delta-encodes
    /// and the previous revision has a differing same-index chunk (and the
    /// chunk was not skipped by the known-chunk filter).
    pub delta: Option<DeltaEstimate>,
}

/// Per-file pipeline output, in file order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileArtifacts {
    /// Chunk artifacts in chunk order.
    pub chunks: Vec<ChunkArtifacts>,
}

impl FileArtifacts {
    /// The plain [`Chunk`] list (identical to what
    /// [`ChunkingStrategy::chunk`] returns for the same content).
    pub fn chunk_list(&self) -> Vec<Chunk> {
        self.chunks.iter().map(|c| c.chunk.clone()).collect()
    }
}

/// One file to process: borrowed content plus the borrowed previous revision
/// (when the service delta-encodes and the path has history).
#[derive(Debug, Clone, Copy)]
pub struct FileJob<'a> {
    /// The new revision's content.
    pub content: &'a [u8],
    /// The previous revision the server holds for this path, if any.
    pub previous: Option<&'a [u8]>,
}

/// The capability parameters the pipeline applies (a projection of the
/// service profile that `cloudsim_storage` can see without depending on the
/// services crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineSpec {
    /// Chunking strategy.
    pub chunking: ChunkingStrategy,
    /// Compression policy for full chunk uploads.
    pub compression: CompressionPolicy,
    /// Whether the service delta-encodes modified files.
    pub delta_encoding: bool,
}

/// The reusable upload pipeline. Cheap to clone (configuration only); worker
/// scratch state lives on the worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UploadPipeline {
    mode: PipelineMode,
}

impl Default for UploadPipeline {
    fn default() -> Self {
        UploadPipeline::parallel()
    }
}

impl UploadPipeline {
    /// Single-threaded reference pipeline.
    pub fn sequential() -> UploadPipeline {
        UploadPipeline { mode: PipelineMode::Sequential }
    }

    /// Parallel pipeline using the host's available parallelism.
    pub fn parallel() -> UploadPipeline {
        UploadPipeline { mode: PipelineMode::Parallel { threads: 0 } }
    }

    /// Parallel pipeline with an explicit worker count. `1` behaves like
    /// [`UploadPipeline::sequential`]; a count of `0` is identical to
    /// [`UploadPipeline::parallel`] (auto-detect, subject to the small-batch
    /// threshold); any other count is honoured unconditionally.
    pub fn with_threads(threads: usize) -> UploadPipeline {
        UploadPipeline { mode: PipelineMode::Parallel { threads } }
    }

    /// The configured mode.
    pub fn mode(&self) -> PipelineMode {
        self.mode
    }

    fn worker_count(&self, work_items: usize, total_bytes: u64) -> usize {
        let configured = match self.mode {
            PipelineMode::Sequential => 1,
            // Auto mode applies the shared sizing policy; an explicit thread
            // count is honoured unconditionally (tests pin it to exercise
            // the concurrent path on arbitrarily small inputs).
            PipelineMode::Parallel { threads: 0 } => {
                auto_workers(work_items, total_bytes, PARALLEL_THRESHOLD_BYTES)
            }
            PipelineMode::Parallel { threads } => threads,
        };
        configured.clamp(1, work_items.max(1))
    }

    /// Runs the full chain over a batch of files, returning artifacts in
    /// file order. All byte counts are independent of the execution mode.
    pub fn process(&self, spec: &PipelineSpec, jobs: &[FileJob<'_>]) -> Vec<FileArtifacts> {
        self.process_filtered(spec, jobs, &|_| false)
    }

    /// [`UploadPipeline::process`] with a *known-chunk filter*: chunks whose
    /// hash the filter recognises (typically a read-only dedup-index lookup)
    /// skip the expensive upload estimates — a dedup hit uploads nothing, so
    /// neither the compressed size nor a delta script would ever be read.
    /// The filter sees the batch's *initial* state only (it must be pure);
    /// chunks that become duplicates within the batch still carry estimates,
    /// which the merge step simply ignores. Artifacts remain bit-identical
    /// across execution modes for any given filter.
    pub fn process_filtered(
        &self,
        spec: &PipelineSpec,
        jobs: &[FileJob<'_>],
        known: &(dyn Fn(&ContentHash) -> bool + Sync),
    ) -> Vec<FileArtifacts> {
        let total_bytes: u64 = jobs.iter().map(|j| j.content.len() as u64).sum();

        // Stage 1 — boundary scans, parallel over files: spans of the new
        // revision, plus spans of the previous revision when delta encoding
        // will want same-index chunk pairs.
        let boundaries: Vec<(Vec<ChunkSpan>, Vec<ChunkSpan>)> = run_indexed(
            self.worker_count(jobs.len(), total_bytes),
            jobs.len(),
            || (),
            |(), file_idx| {
                let job = &jobs[file_idx];
                let new_spans = spec.chunking.spans(job.content);
                let old_spans = match (spec.delta_encoding, job.previous) {
                    (true, Some(old)) => spec.chunking.spans(old),
                    _ => Vec::new(),
                };
                (new_spans, old_spans)
            },
        );

        // Stage 2 — flatten to (file, chunk) work units and fan out the
        // expensive per-chunk work: SHA-256, then (unless the chunk is
        // already known to the server) LZSS coding and delta estimation.
        let units: Vec<(usize, usize)> = boundaries
            .iter()
            .enumerate()
            .flat_map(|(file_idx, (new_spans, _))| {
                (0..new_spans.len()).map(move |chunk_idx| (file_idx, chunk_idx))
            })
            .collect();

        let chunk_artifacts: Vec<ChunkArtifacts> = run_indexed(
            self.worker_count(units.len(), total_bytes),
            units.len(),
            LzssScratch::new,
            |scratch, unit_idx| {
                let (file_idx, chunk_idx) = units[unit_idx];
                let job = &jobs[file_idx];
                let (new_spans, old_spans) = &boundaries[file_idx];
                let span = new_spans[chunk_idx];
                let data = &job.content[span.range()];

                let chunk = Chunk::from_slice(span.offset, data);
                if known(&chunk.hash) {
                    return ChunkArtifacts { chunk, full_upload_bytes: 0, delta: None };
                }
                let delta = match (job.previous, old_spans.get(chunk_idx)) {
                    (Some(old), Some(old_span)) => {
                        let old_data = &old[old_span.range()];
                        if old_data != data {
                            let signature = Signature::new(old_data);
                            let script = DeltaScript::compute(&signature, data);
                            Some(DeltaEstimate {
                                wire_bytes: script.wire_size(),
                                signature_bytes: signature.wire_size(),
                            })
                        } else {
                            None
                        }
                    }
                    _ => None,
                };
                // A winning delta (the merge step's condition) means the full
                // upload size is never read — skip the LZSS pass entirely,
                // matching the old sequential planner's early return.
                let full_upload_bytes = match delta {
                    Some(est) if est.wire_bytes < span.len => 0,
                    _ => spec.compression.upload_size_with(scratch, data),
                };
                ChunkArtifacts { chunk, full_upload_bytes, delta }
            },
        );

        // Merge — reassemble per-file in deterministic order.
        let mut out: Vec<FileArtifacts> = boundaries
            .iter()
            .map(|(new_spans, _)| FileArtifacts { chunks: Vec::with_capacity(new_spans.len()) })
            .collect();
        for ((file_idx, _), artifact) in units.into_iter().zip(chunk_artifacts) {
            out[file_idx].chunks.push(artifact);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(0xD1B54A32D192ED03) | 1;
        while out.len() < len {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            out.extend_from_slice(&x.to_le_bytes());
        }
        out.truncate(len);
        out
    }

    fn text(len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            out.extend_from_slice(b"benchmarking personal cloud storage services ");
        }
        out.truncate(len);
        out
    }

    fn spec() -> PipelineSpec {
        PipelineSpec {
            chunking: ChunkingStrategy::Fixed { size: 256 * 1024 },
            compression: CompressionPolicy::Always,
            delta_encoding: true,
        }
    }

    #[test]
    fn parallel_and_sequential_artifacts_are_identical() {
        let file_a = text(700_000);
        let file_b = pseudo_random(1_200_000, 3);
        let mut file_b_v2 = file_b.clone();
        file_b_v2.extend_from_slice(&pseudo_random(50_000, 4));
        let jobs = vec![
            FileJob { content: &file_a, previous: None },
            FileJob { content: &file_b_v2, previous: Some(&file_b) },
            FileJob { content: &[], previous: None },
        ];
        let spec = spec();
        let sequential = UploadPipeline::sequential().process(&spec, &jobs);
        for threads in [0usize, 2, 3, 7] {
            let parallel = UploadPipeline::with_threads(threads).process(&spec, &jobs);
            assert_eq!(sequential, parallel, "threads={threads}");
        }
    }

    #[test]
    fn artifacts_match_the_standalone_substrates() {
        let content = pseudo_random(900_000, 9);
        let jobs = vec![FileJob { content: &content, previous: None }];
        let spec = spec();
        let arts = UploadPipeline::parallel().process(&spec, &jobs);
        assert_eq!(arts.len(), 1);
        assert_eq!(arts[0].chunk_list(), spec.chunking.chunk(&content));
        for art in &arts[0].chunks {
            let data =
                &content[art.chunk.offset as usize..(art.chunk.offset + art.chunk.len) as usize];
            assert_eq!(art.full_upload_bytes, spec.compression.upload_size(data));
            assert!(art.delta.is_none());
        }
    }

    #[test]
    fn delta_estimates_appear_only_for_differing_same_index_chunks() {
        let old = pseudo_random(600_000, 5);
        let mut new = old.clone();
        // Mutate only the second 256 kB chunk.
        for b in &mut new[300_000..300_100] {
            *b ^= 0xFF;
        }
        let jobs = vec![FileJob { content: &new, previous: Some(&old) }];
        let arts = UploadPipeline::sequential().process(&spec(), &jobs);
        let chunks = &arts[0].chunks;
        assert_eq!(chunks.len(), 3);
        assert!(chunks[0].delta.is_none(), "identical chunk needs no delta");
        let est = chunks[1].delta.expect("modified chunk must carry a delta estimate");
        assert!(est.wire_bytes < chunks[1].chunk.len, "delta must beat a full upload");
        assert!(chunks[2].delta.is_none());
    }

    #[test]
    fn no_delta_estimates_when_the_capability_is_off() {
        let old = pseudo_random(100_000, 6);
        let new = pseudo_random(100_000, 7);
        let jobs = vec![FileJob { content: &new, previous: Some(&old) }];
        let mut spec = spec();
        spec.delta_encoding = false;
        let arts = UploadPipeline::parallel().process(&spec, &jobs);
        assert!(arts[0].chunks.iter().all(|c| c.delta.is_none()));
    }

    #[test]
    fn known_chunk_filter_skips_estimates_without_changing_identity() {
        let content = pseudo_random(600_000, 11);
        let jobs = vec![FileJob { content: &content, previous: None }];
        let spec = spec();
        let unfiltered = UploadPipeline::sequential().process(&spec, &jobs);
        // Mark the middle chunk as already known to the server.
        let known_hash = unfiltered[0].chunks[1].chunk.hash;
        for pipeline in [UploadPipeline::sequential(), UploadPipeline::with_threads(3)] {
            let filtered = pipeline.process_filtered(&spec, &jobs, &|h| *h == known_hash);
            assert_eq!(filtered[0].chunk_list(), unfiltered[0].chunk_list());
            assert_eq!(filtered[0].chunks[1].full_upload_bytes, 0, "skipped estimate");
            assert!(filtered[0].chunks[1].delta.is_none());
            assert_eq!(filtered[0].chunks[0], unfiltered[0].chunks[0]);
            assert_eq!(filtered[0].chunks[2], unfiltered[0].chunks[2]);
        }
    }
}
