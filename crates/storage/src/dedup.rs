//! Content-addressed deduplication index.
//!
//! §4.3: "Server data deduplication eliminates replicas on the storage server.
//! In case the same content is already present on the storage, replicas in the
//! client folder can be identified to save upload capacity too." The paper
//! finds that only Dropbox and Wuala implement client-side dedup, and that
//! both "can identify copies of users' files even after they are deleted and
//! later restored" — i.e. the index is not garbage-collected when the last
//! reference disappears.
//!
//! [`DedupIndex`] models the per-user chunk index a client queries before
//! deciding whether a chunk needs to be uploaded at all.

use crate::hash::ContentHash;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Deduplication index: which chunk hashes the server already knows for a
/// given user account.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DedupIndex {
    /// Hash → reference count of *live* files. Entries whose count drops to
    /// zero are kept (with count 0), matching the delete-and-restore finding.
    entries: HashMap<ContentHash, u64>,
    /// Number of uploads avoided thanks to the index (for reporting).
    hits: u64,
    /// Number of chunk uploads that actually had to happen.
    misses: u64,
}

impl DedupIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        DedupIndex::default()
    }

    /// Returns `true` when the chunk is already known to the server (upload
    /// can be skipped) and records the query outcome in the hit/miss counters.
    pub fn check_and_record(&mut self, hash: &ContentHash) -> bool {
        if self.entries.contains_key(hash) {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Returns `true` when the chunk is known, without touching the counters.
    pub fn contains(&self, hash: &ContentHash) -> bool {
        self.entries.contains_key(hash)
    }

    /// Registers a chunk as stored (after an upload) or referenced by one more
    /// file (after a dedup hit).
    pub fn add_reference(&mut self, hash: ContentHash) {
        *self.entries.entry(hash).or_insert(0) += 1;
    }

    /// Drops one reference (a file using the chunk was deleted). The entry is
    /// retained even at zero references so that restoring the file later still
    /// deduplicates — the behaviour observed for Dropbox and Wuala.
    pub fn remove_reference(&mut self, hash: &ContentHash) {
        if let Some(count) = self.entries.get_mut(hash) {
            *count = count.saturating_sub(1);
        }
    }

    /// Number of distinct chunk hashes the index knows about.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the index knows no chunks.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of dedup queries that found the chunk already stored.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of dedup queries that required an upload.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Live reference count for a chunk (0 when unknown or unreferenced).
    pub fn references(&self, hash: &ContentHash) -> u64 {
        self.entries.get(hash).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::sha256;

    #[test]
    fn unknown_chunks_miss_then_hit_after_upload() {
        let mut index = DedupIndex::new();
        let h = sha256(b"chunk one");
        assert!(!index.check_and_record(&h));
        index.add_reference(h);
        assert!(index.check_and_record(&h));
        assert_eq!(index.hits(), 1);
        assert_eq!(index.misses(), 1);
        assert_eq!(index.len(), 1);
        assert!(!index.is_empty());
    }

    #[test]
    fn copies_in_other_folders_are_detected() {
        // The paper's test: same payload under a different name in a second
        // folder, then a copy in a third folder — only the first upload counts.
        let mut index = DedupIndex::new();
        let payload = sha256(b"random payload");
        assert!(!index.check_and_record(&payload));
        index.add_reference(payload);
        for _ in 0..2 {
            assert!(index.check_and_record(&payload));
            index.add_reference(payload);
        }
        assert_eq!(index.references(&payload), 3);
        assert_eq!(index.misses(), 1);
        assert_eq!(index.hits(), 2);
    }

    #[test]
    fn dedup_survives_delete_and_restore() {
        let mut index = DedupIndex::new();
        let h = sha256(b"file to be deleted");
        index.add_reference(h);
        index.add_reference(h);
        index.add_reference(h);
        // Delete all copies.
        index.remove_reference(&h);
        index.remove_reference(&h);
        index.remove_reference(&h);
        assert_eq!(index.references(&h), 0);
        // Restoring the original file must still hit the index.
        assert!(index.check_and_record(&h), "dedup must survive delete/restore");
    }

    #[test]
    fn removing_an_unknown_reference_is_a_no_op() {
        let mut index = DedupIndex::new();
        let h = sha256(b"never stored");
        index.remove_reference(&h);
        assert_eq!(index.references(&h), 0);
        assert!(index.is_empty());
    }

    #[test]
    fn contains_does_not_change_counters() {
        let mut index = DedupIndex::new();
        let h = sha256(b"x");
        index.add_reference(h);
        assert!(index.contains(&h));
        assert!(!index.contains(&sha256(b"y")));
        assert_eq!(index.hits(), 0);
        assert_eq!(index.misses(), 0);
    }
}
