//! SHA-256 content hashing.
//!
//! Content hashes drive client-side deduplication (§4.3: "replicas in the
//! client folder can be identified to save upload capacity") and the strong
//! block checksums of the delta encoder (§4.4). The implementation follows
//! FIPS 180-4 and is validated against the standard test vectors; no external
//! crypto crate is required.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 256-bit content hash.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ContentHash(pub [u8; 32]);

impl ContentHash {
    /// Hexadecimal rendering of the hash. Uses a nibble lookup table instead
    /// of a per-byte `format!` — this sits under every manifest and report
    /// render, where the formatting machinery dominated the cost.
    pub fn to_hex(&self) -> String {
        const HEX: &[u8; 16] = b"0123456789abcdef";
        let mut out = Vec::with_capacity(64);
        for &byte in &self.0 {
            out.push(HEX[(byte >> 4) as usize]);
            out.push(HEX[(byte & 0x0F) as usize]);
        }
        // Safety of from_utf8: every pushed byte is an ASCII hex digit.
        String::from_utf8(out).expect("hex digits are valid UTF-8")
    }

    /// A short prefix, handy for logs and debug output.
    pub fn short(&self) -> String {
        self.to_hex()[..12].to_string()
    }
}

impl fmt::Debug for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ContentHash({})", self.short())
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 { state: H0, buffer: [0u8; 64], buffer_len: 0, total_len: 0 }
    }

    /// Feeds data into the hasher.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len += data.len() as u64;
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress_block(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress_block(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Finishes the hash and returns the digest.
    pub fn finalize(mut self) -> ContentHash {
        let bit_len = self.total_len * 8;
        // Padding: 0x80, zeros, then the 64-bit big-endian length.
        let mut pad = [0u8; 128];
        pad[0] = 0x80;
        let pad_len =
            if self.buffer_len < 56 { 56 - self.buffer_len } else { 120 - self.buffer_len };
        let mut tail = Vec::with_capacity(pad_len + 8);
        tail.extend_from_slice(&pad[..pad_len]);
        tail.extend_from_slice(&bit_len.to_be_bytes());
        self.update(&tail);
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        ContentHash(out)
    }

    fn compress_block(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// Hashes a byte slice in one call.
pub fn sha256(data: &[u8]) -> ContentHash {
    let mut hasher = Sha256::new();
    hasher.update(data);
    hasher.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_test_vectors() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_updates_match_one_shot() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let one_shot = sha256(&data);
        for chunk_size in [1usize, 3, 63, 64, 65, 1000] {
            let mut hasher = Sha256::new();
            for chunk in data.chunks(chunk_size) {
                hasher.update(chunk);
            }
            assert_eq!(hasher.finalize(), one_shot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths around the 56-byte padding boundary exercise both branches.
        for len in 54..=66usize {
            let data = vec![0x5Au8; len];
            let h1 = sha256(&data);
            let mut hasher = Sha256::new();
            hasher.update(&data[..len / 2]);
            hasher.update(&data[len / 2..]);
            assert_eq!(hasher.finalize(), h1, "length {len}");
        }
    }

    #[test]
    fn different_content_different_hash() {
        let a = sha256(b"hello world");
        let b = sha256(b"hello worlc");
        assert_ne!(a, b);
        assert_eq!(a, sha256(b"hello world"));
    }

    #[test]
    fn hex_and_debug_rendering() {
        let h = sha256(b"abc");
        assert_eq!(h.to_hex().len(), 64);
        assert_eq!(h.short().len(), 12);
        assert!(format!("{h:?}").contains(&h.short()));
        assert_eq!(format!("{h}"), h.to_hex());
    }
}
