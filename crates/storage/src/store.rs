//! Server-side object store, sharded for concurrent multi-client fleets.
//!
//! The storage back-end the simulated services commit uploads to: a
//! content-addressed chunk store plus per-user file manifests. It backs the
//! capability experiments end-to-end — e.g. the deduplication test of §4.3
//! uploads, copies, deletes and restores files and the store (together with
//! [`crate::dedup::DedupIndex`]) determines how many bytes actually had to
//! travel.
//!
//! # Sharding
//!
//! A fleet of concurrent sync clients (one OS thread per simulated user)
//! commits into one shared store, so the original single
//! `RwLock<HashMap<user, Namespace>>` would serialize every upload. The
//! store is therefore split into two independent shard arrays:
//!
//! * **user shards** — per-user state (file manifests, the user's logical
//!   view of their chunks, version counters), sharded by a hash of the user
//!   name. Two clients syncing as different users touch different locks.
//! * **chunk shards** — the physical content-addressed chunk table shared by
//!   *all* users, sharded by the first byte of the chunk hash. This is where
//!   server-side inter-user deduplication (§4.3) happens: the second user to
//!   upload a chunk adds a reference instead of new bytes.
//!
//! Aggregate accounting (unique chunks, physical bytes, per-user referenced
//! bytes, server-side dedup hits) lives in atomic counters updated with
//! order-independent operations only (count of distinct keys, sums of
//! per-user values, a commutative `min` for the canonical stored size), so a
//! concurrent fleet run ends with **bit-identical** [`AggregateStats`] to a
//! sequential replay of the same per-user operations — the property the
//! `fleet_scaling` bench and the storage property tests assert.
//!
//! # Garbage collection
//!
//! Originally the store never freed a byte — matching the delete/restore
//! observation of §4.3, where providers retain chunks so a restored file
//! needs no re-upload. Long-lived churning fleets (clients leaving and
//! hard-deleting their accounts) need reclamation, so each user namespace
//! now keeps a per-chunk count of live-manifest references and the store
//! supports two hard-delete entry points:
//!
//! * [`ObjectStore::delete_manifest`] removes one manifest and releases the
//!   user's chunks that no remaining live manifest references;
//! * [`ObjectStore::purge_user`] hard-deletes a whole namespace (a departing
//!   fleet client), releasing every chunk the user still holds — including
//!   chunks retained only for soft-deleted or superseded revisions.
//!
//! A released chunk decrements the physical entry's owner count. What happens
//! at zero owners is the [`GcPolicy`]: `Eager` frees the bytes immediately
//! inside the release; `MarkSweep` leaves the entry in place until a
//! [`ObjectStore::collect_garbage`] pass sweeps all owner-less entries.
//! Releases only ever *decrement*, so concurrent releases commute, and the
//! fleet harness phase-separates commits from releases per round — which
//! keeps a churning concurrent run bit-identical to its sequential replay.
//! (The §4.3 soft [`ObjectStore::delete_file`] still frees nothing.)

use crate::chunker::Chunk;
use crate::hash::ContentHash;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A chunk as stored on the server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredChunk {
    /// Content hash of the (possibly transformed) chunk payload.
    pub hash: ContentHash,
    /// Stored size in bytes (after compression/encryption, i.e. what occupies
    /// server capacity).
    pub stored_len: u64,
    /// Original plaintext length of the chunk.
    pub plain_len: u64,
}

/// The manifest of one file version: the ordered list of chunk hashes plus
/// bookkeeping metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileManifest {
    /// Path of the file inside the synced folder.
    pub path: String,
    /// Total plaintext size.
    pub size: u64,
    /// Ordered chunk hashes making up the content.
    pub chunks: Vec<ContentHash>,
    /// Monotonically increasing version number.
    pub version: u64,
}

impl FileManifest {
    /// Builds a manifest from the chunk list produced by a
    /// [`crate::chunker::ChunkingStrategy`].
    pub fn from_chunks(path: &str, chunks: &[Chunk], version: u64) -> FileManifest {
        FileManifest {
            path: path.to_string(),
            size: chunks.iter().map(|c| c.len).sum(),
            chunks: chunks.iter().map(|c| c.hash).collect(),
            version,
        }
    }
}

/// Statistics about the state of one user's namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StoreStats {
    /// Number of live file manifests.
    pub files: usize,
    /// Number of distinct chunks held.
    pub chunks: usize,
    /// Bytes occupied by chunk payloads on the server.
    pub stored_bytes: u64,
    /// Sum of the plaintext sizes of live files (logical size).
    pub logical_bytes: u64,
}

/// Aggregate statistics of the whole store, across every user namespace.
///
/// All fields are order-independent functions of the set of per-user
/// operations performed, so a concurrent fleet and a sequential replay of
/// the same per-user commits produce bit-identical values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AggregateStats {
    /// Number of user namespaces that hold at least one chunk or file.
    pub users: usize,
    /// Live file manifests summed over all users.
    pub files: usize,
    /// Plaintext bytes of live files summed over all users.
    pub logical_bytes: u64,
    /// Distinct chunk hashes in the physical store (after inter-user dedup).
    pub unique_chunks: u64,
    /// Bytes the server physically stores (each unique chunk counted once,
    /// at the most compact representation any user uploaded).
    pub physical_bytes: u64,
    /// Bytes the server would store without inter-user dedup: the sum of
    /// every user's own view of their stored chunks.
    pub referenced_bytes: u64,
    /// Chunk commits that found the payload already present in the physical
    /// store (uploaded earlier by the same or another user).
    pub server_dedup_hits: u64,
    /// Total accepted chunk commits (new to the committing user).
    pub chunk_puts: u64,
    /// Manifests hard-deleted via [`ObjectStore::delete_manifest`] or
    /// [`ObjectStore::purge_user`] (the soft §4.3 delete is not counted).
    pub manifest_deletes: u64,
    /// Bytes reclaimed by garbage collection (eager frees and mark-sweep
    /// passes combined).
    pub reclaimed_bytes: u64,
    /// Physical chunk entries freed by garbage collection.
    pub freed_chunks: u64,
}

impl AggregateStats {
    /// Server-side deduplication ratio: logical chunk bytes over physical
    /// bytes (1.0 = no redundancy across users, higher = more savings).
    /// 0.0 when the store holds no physical bytes — an empty store, or one
    /// churn + GC fully reclaimed — never NaN or infinite.
    pub fn dedup_ratio(&self) -> f64 {
        if self.physical_bytes == 0 {
            0.0
        } else {
            self.referenced_bytes as f64 / self.physical_bytes as f64
        }
    }

    /// Bytes inter-user deduplication saved compared to storing every user's
    /// chunks verbatim.
    pub fn saved_bytes(&self) -> u64 {
        self.referenced_bytes.saturating_sub(self.physical_bytes)
    }
}

/// When (if ever) the store frees chunk entries whose owner count reaches
/// zero after manifest hard-deletes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum GcPolicy {
    /// Free the physical entry the moment its last owner releases it.
    Eager,
    /// Leave owner-less entries in place until a [`ObjectStore::collect_garbage`]
    /// pass sweeps them. Without such passes this is the original
    /// never-collect behaviour, so it is the default.
    #[default]
    MarkSweep,
}

impl GcPolicy {
    /// Stable lowercase label (used in report rows and metric keys).
    pub fn label(&self) -> &'static str {
        match self {
            GcPolicy::Eager => "eager",
            GcPolicy::MarkSweep => "mark_sweep",
        }
    }
}

/// What one garbage-collection pass (or eager release) freed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GcStats {
    /// Physical chunk entries removed.
    pub freed_chunks: u64,
    /// Stored bytes reclaimed.
    pub freed_bytes: u64,
}

/// A per-user namespace: manifests and the user's logical view of chunks.
#[derive(Debug, Default)]
struct UserSpace {
    files: HashMap<String, FileManifest>,
    chunks: HashMap<ContentHash, StoredChunk>,
    /// Occurrences of each chunk across the user's *live* manifests. Chunks
    /// at zero references stay in `chunks` (retention for §4.3 restores and
    /// client-side dedup consistency) until a hard delete releases them.
    chunk_refs: HashMap<ContentHash, u64>,
    /// Chunks whose reference count ever dropped to zero through a
    /// *supersede* (a manifest replacing the same path). The retention
    /// promise of [`ObjectStore::commit_manifest`] covers them even if a
    /// later manifest re-references them and is then hard-deleted — only
    /// [`ObjectStore::purge_user`] releases retained chunks.
    retained: std::collections::HashSet<ContentHash>,
    next_version: u64,
}

/// One entry of the physical content-addressed chunk table.
#[derive(Debug)]
struct ChunkEntry {
    record: StoredChunk,
    /// Number of distinct users referencing the chunk.
    owners: u64,
    /// The plaintext chunk payload, when the committer provided it (see
    /// [`ObjectStore::put_chunk_with_payload`]). Restores are served from
    /// here; metadata-only commits leave it `None` and a restore of such a
    /// chunk reports [`crate::restore::RestoreError::PayloadUnavailable`].
    /// `Arc` because concurrent restores share the bytes without copying.
    payload: Option<Arc<[u8]>>,
}

#[derive(Debug)]
struct StoreInner {
    user_shards: Box<[RwLock<HashMap<String, UserSpace>>]>,
    chunk_shards: Box<[RwLock<HashMap<ContentHash, ChunkEntry>>]>,
    policy: GcPolicy,
    unique_chunks: AtomicU64,
    physical_bytes: AtomicU64,
    referenced_bytes: AtomicU64,
    server_dedup_hits: AtomicU64,
    chunk_puts: AtomicU64,
    manifest_deletes: AtomicU64,
    reclaimed_bytes: AtomicU64,
    freed_chunks: AtomicU64,
}

/// The server-side object store, shared by control and storage servers of a
/// simulated service — and, since the fleet harness exists, by every client
/// of a multi-user fleet. Clones share the same underlying shards.
#[derive(Debug, Clone)]
pub struct ObjectStore {
    inner: Arc<StoreInner>,
}

impl Default for ObjectStore {
    fn default() -> Self {
        ObjectStore::new()
    }
}

/// Default shard count for both shard arrays. Enough to keep a 32-client
/// fleet's writers on distinct locks with high probability while staying
/// cheap to iterate for aggregate reads.
pub const DEFAULT_SHARDS: usize = 16;

fn shard_for_user(user: &str, shards: usize) -> usize {
    // FNV-1a over the user name; stable across runs (no RandomState).
    let mut h = 0xcbf29ce484222325u64;
    for b in user.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % shards as u64) as usize
}

fn shard_for_chunk(hash: &ContentHash, shards: usize) -> usize {
    // SHA-256 output is uniform: the first bytes are an ideal shard key.
    (u16::from_be_bytes([hash.0[0], hash.0[1]]) as usize) % shards
}

impl ObjectStore {
    /// Creates an empty store with [`DEFAULT_SHARDS`] lock shards and the
    /// default (never-collecting-until-swept) [`GcPolicy::MarkSweep`].
    pub fn new() -> Self {
        ObjectStore::with_shards(DEFAULT_SHARDS)
    }

    /// Creates an empty store with an explicit shard count (1 = the original
    /// single-lock layout, used as the contention baseline in benches).
    pub fn with_shards(shards: usize) -> Self {
        ObjectStore::with_shards_and_policy(shards, GcPolicy::default())
    }

    /// Creates an empty default-sharded store with an explicit GC policy.
    pub fn with_policy(policy: GcPolicy) -> Self {
        ObjectStore::with_shards_and_policy(DEFAULT_SHARDS, policy)
    }

    /// Creates an empty store with explicit shard count and GC policy.
    pub fn with_shards_and_policy(shards: usize, policy: GcPolicy) -> Self {
        let shards = shards.max(1);
        let user_shards = (0..shards).map(|_| RwLock::new(HashMap::new())).collect();
        let chunk_shards = (0..shards).map(|_| RwLock::new(HashMap::new())).collect();
        ObjectStore {
            inner: Arc::new(StoreInner {
                user_shards,
                chunk_shards,
                policy,
                unique_chunks: AtomicU64::new(0),
                physical_bytes: AtomicU64::new(0),
                referenced_bytes: AtomicU64::new(0),
                server_dedup_hits: AtomicU64::new(0),
                chunk_puts: AtomicU64::new(0),
                manifest_deletes: AtomicU64::new(0),
                reclaimed_bytes: AtomicU64::new(0),
                freed_chunks: AtomicU64::new(0),
            }),
        }
    }

    /// Number of lock shards in each shard array.
    pub fn shard_count(&self) -> usize {
        self.inner.user_shards.len()
    }

    /// The garbage-collection policy this store was built with.
    pub fn gc_policy(&self) -> GcPolicy {
        self.inner.policy
    }

    fn user_shard(&self, user: &str) -> &RwLock<HashMap<String, UserSpace>> {
        &self.inner.user_shards[shard_for_user(user, self.inner.user_shards.len())]
    }

    fn chunk_shard(&self, hash: &ContentHash) -> &RwLock<HashMap<ContentHash, ChunkEntry>> {
        &self.inner.chunk_shards[shard_for_chunk(hash, self.inner.chunk_shards.len())]
    }

    /// True when the user's namespace already holds a chunk with this hash
    /// (server-side deduplication check).
    pub fn has_chunk(&self, user: &str, hash: &ContentHash) -> bool {
        self.user_shard(user)
            .read()
            .get(user)
            .map(|ns| ns.chunks.contains_key(hash))
            .unwrap_or(false)
    }

    /// True when *any* user has stored this chunk — the inter-user question a
    /// dedup-capable server answers before accepting an upload.
    pub fn has_chunk_globally(&self, hash: &ContentHash) -> bool {
        self.chunk_shard(hash).read().contains_key(hash)
    }

    /// Stores a chunk payload for a user. Returns `true` when the chunk was
    /// new *to this user*, `false` when the user already had it (nothing is
    /// overwritten either way).
    ///
    /// Physically the payload is stored at most once across all users: a put
    /// whose hash another user already committed only adds a reference, and
    /// the canonical stored size is the minimum any committer reported (the
    /// server keeps the most compact representation it has seen — `min` is
    /// commutative, which keeps aggregate stats independent of commit order).
    pub fn put_chunk(&self, user: &str, chunk: StoredChunk) -> bool {
        self.put_chunk_inner(user, chunk, None)
    }

    /// [`ObjectStore::put_chunk`] carrying the plaintext chunk payload, so
    /// restores can reassemble byte-identical file content. The payload is
    /// kept at most once per physical entry regardless of how many users
    /// commit it (hash-equal plaintexts are identical bytes, so which
    /// committer's copy survives is unobservable), and it is freed together
    /// with the entry when garbage collection reclaims it.
    pub fn put_chunk_with_payload(&self, user: &str, chunk: StoredChunk, payload: &[u8]) -> bool {
        debug_assert_eq!(
            crate::hash::sha256(payload),
            chunk.hash,
            "payload does not match the chunk hash"
        );
        debug_assert_eq!(payload.len() as u64, chunk.plain_len);
        self.put_chunk_inner(user, chunk, Some(payload))
    }

    fn put_chunk_inner(&self, user: &str, chunk: StoredChunk, payload: Option<&[u8]>) -> bool {
        // Lock discipline: user shard first, released before the chunk shard
        // is taken — the two arrays are never held simultaneously.
        {
            let mut guard = self.user_shard(user).write();
            let ns = guard.entry(user.to_string()).or_default();
            match ns.chunks.entry(chunk.hash) {
                std::collections::hash_map::Entry::Occupied(_) => return false,
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(chunk.clone());
                }
            }
        }

        let stats = &*self.inner;
        stats.chunk_puts.fetch_add(1, Ordering::Relaxed);
        stats.referenced_bytes.fetch_add(chunk.stored_len, Ordering::Relaxed);

        let mut shard = self.chunk_shard(&chunk.hash).write();
        match shard.entry(chunk.hash) {
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                let entry = slot.get_mut();
                entry.owners += 1;
                if chunk.stored_len < entry.record.stored_len {
                    let saved = entry.record.stored_len - chunk.stored_len;
                    entry.record = chunk;
                    stats.physical_bytes.fetch_sub(saved, Ordering::Relaxed);
                }
                if entry.payload.is_none() {
                    if let Some(payload) = payload {
                        entry.payload = Some(Arc::from(payload));
                    }
                }
                stats.server_dedup_hits.fetch_add(1, Ordering::Relaxed);
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                stats.unique_chunks.fetch_add(1, Ordering::Relaxed);
                stats.physical_bytes.fetch_add(chunk.stored_len, Ordering::Relaxed);
                slot.insert(ChunkEntry {
                    record: chunk,
                    owners: 1,
                    payload: payload.map(Arc::from),
                });
            }
        }
        true
    }

    /// Commits a file manifest (creating or replacing the path). Returns the
    /// version number assigned. Panics if any referenced chunk is missing
    /// from the user's namespace — a protocol error a real service would
    /// reject as well.
    ///
    /// Reference accounting: the new manifest's chunk occurrences are
    /// counted; a replaced revision's occurrences are released *logically*
    /// (the counts drop) but its chunks stay retained in the namespace, so
    /// client-side dedup state never dangles and §4.3 restores stay free.
    pub fn commit_manifest(&self, user: &str, mut manifest: FileManifest) -> u64 {
        let mut guard = self.user_shard(user).write();
        let ns = guard.entry(user.to_string()).or_default();
        for hash in &manifest.chunks {
            assert!(ns.chunks.contains_key(hash), "manifest references unknown chunk {hash}");
        }
        for hash in &manifest.chunks {
            *ns.chunk_refs.entry(*hash).or_insert(0) += 1;
        }
        ns.next_version += 1;
        manifest.version = ns.next_version;
        let version = manifest.version;
        if let Some(replaced) = ns.files.insert(manifest.path.clone(), manifest) {
            for hash in &replaced.chunks {
                if let Some(refs) = ns.chunk_refs.get_mut(hash) {
                    *refs = refs.saturating_sub(1);
                    if *refs == 0 {
                        // The supersede retention promise above outlives any
                        // later re-reference: mark the chunk so a subsequent
                        // delete_manifest keeps it.
                        ns.retained.insert(*hash);
                    }
                }
            }
        }
        version
    }

    /// Hard-deletes a file manifest and releases the chunks no remaining
    /// live manifest of the user references — the departure path churning
    /// fleets take, as opposed to the §4.3 soft [`ObjectStore::delete_file`].
    /// Chunks under the supersede retention promise of
    /// [`ObjectStore::commit_manifest`] are kept even at zero references
    /// (only [`ObjectStore::purge_user`] releases those). Returns the
    /// released stored bytes (the user's own representation), or `None` when
    /// the path had no live manifest.
    ///
    /// Caller contract: a hard delete means the data is *gone* server-side.
    /// A client that keeps a dedup index for this user must drop the deleted
    /// chunks from it (or reset it, as `UploadPlanner::purge_account` does)
    /// — otherwise its next dedup-skipped upload commits a manifest whose
    /// chunks the store no longer holds, which is rejected.
    pub fn delete_manifest(&self, user: &str, path: &str) -> Option<u64> {
        let released: Vec<StoredChunk> = {
            let mut guard = self.user_shard(user).write();
            let ns = guard.get_mut(user)?;
            let manifest = ns.files.remove(path)?;
            let mut released = Vec::new();
            for hash in &manifest.chunks {
                // A manifest may reference a hash several times; entries can
                // reach zero (and be released) on an earlier occurrence.
                let Some(refs) = ns.chunk_refs.get_mut(hash) else { continue };
                *refs = refs.saturating_sub(1);
                if *refs == 0 {
                    ns.chunk_refs.remove(hash);
                    if ns.retained.contains(hash) {
                        // An earlier supersede promised to keep this chunk
                        // (restores and client-side dedup may rely on it).
                        continue;
                    }
                    if let Some(stored) = ns.chunks.remove(hash) {
                        released.push(stored);
                    }
                }
            }
            released
        };
        self.inner.manifest_deletes.fetch_add(1, Ordering::Relaxed);
        Some(self.release_chunks(&released))
    }

    /// Hard-deletes a whole user namespace: every live manifest plus every
    /// retained chunk (soft-deleted and superseded revisions included). This
    /// is what a fleet client leaving the service calls. Returns the released
    /// stored bytes.
    pub fn purge_user(&self, user: &str) -> u64 {
        let (released, deleted_files) = {
            let mut guard = self.user_shard(user).write();
            let Some(ns) = guard.remove(user) else {
                return 0;
            };
            (ns.chunks.into_values().collect::<Vec<_>>(), ns.files.len() as u64)
        };
        self.inner.manifest_deletes.fetch_add(deleted_files, Ordering::Relaxed);
        self.release_chunks(&released)
    }

    /// Releases a batch of chunks a user no longer holds: per-user referenced
    /// bytes drop, and each physical entry loses one owner. Owner-less
    /// entries are freed immediately under [`GcPolicy::Eager`] and left for
    /// [`ObjectStore::collect_garbage`] under [`GcPolicy::MarkSweep`].
    /// Releases only decrement, so concurrent releases commute.
    fn release_chunks(&self, released: &[StoredChunk]) -> u64 {
        let stats = &*self.inner;
        let mut released_bytes = 0u64;
        for stored in released {
            released_bytes += stored.stored_len;
            stats.referenced_bytes.fetch_sub(stored.stored_len, Ordering::Relaxed);
            let mut shard = self.chunk_shard(&stored.hash).write();
            if let Some(entry) = shard.get_mut(&stored.hash) {
                entry.owners = entry.owners.saturating_sub(1);
                if entry.owners == 0 && stats.policy == GcPolicy::Eager {
                    let freed = entry.record.stored_len;
                    shard.remove(&stored.hash);
                    stats.unique_chunks.fetch_sub(1, Ordering::Relaxed);
                    stats.physical_bytes.fetch_sub(freed, Ordering::Relaxed);
                    stats.reclaimed_bytes.fetch_add(freed, Ordering::Relaxed);
                    stats.freed_chunks.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        released_bytes
    }

    /// Sweeps every chunk shard, freeing entries no user owns any more. The
    /// periodic companion of [`GcPolicy::MarkSweep`]; a no-op (zero stats)
    /// under [`GcPolicy::Eager`], where releases already freed everything.
    pub fn collect_garbage(&self) -> GcStats {
        let stats = &*self.inner;
        let mut pass = GcStats::default();
        for shard in self.inner.chunk_shards.iter() {
            let mut guard = shard.write();
            guard.retain(|_, entry| {
                if entry.owners > 0 {
                    return true;
                }
                pass.freed_chunks += 1;
                pass.freed_bytes += entry.record.stored_len;
                false
            });
        }
        if pass.freed_chunks > 0 {
            stats.unique_chunks.fetch_sub(pass.freed_chunks, Ordering::Relaxed);
            stats.physical_bytes.fetch_sub(pass.freed_bytes, Ordering::Relaxed);
            stats.reclaimed_bytes.fetch_add(pass.freed_bytes, Ordering::Relaxed);
            stats.freed_chunks.fetch_add(pass.freed_chunks, Ordering::Relaxed);
        }
        pass
    }

    /// Fetches the current manifest of a path.
    pub fn manifest(&self, user: &str, path: &str) -> Option<FileManifest> {
        self.user_shard(user).read().get(user).and_then(|ns| ns.files.get(path).cloned())
    }

    /// Deletes a file. The chunks it referenced are *not* garbage-collected,
    /// matching the delete/restore observation of §4.3. Returns `true` when a
    /// file was removed.
    pub fn delete_file(&self, user: &str, path: &str) -> bool {
        self.user_shard(user)
            .write()
            .get_mut(user)
            .map(|ns| ns.files.remove(path).is_some())
            .unwrap_or(false)
    }

    /// Lists the live file paths of a user, sorted.
    pub fn list_files(&self, user: &str) -> Vec<String> {
        let mut paths: Vec<String> = self
            .user_shard(user)
            .read()
            .get(user)
            .map(|ns| ns.files.keys().cloned().collect())
            .unwrap_or_default();
        paths.sort();
        paths
    }

    /// Returns a stored chunk record as the user sees it (their own uploaded
    /// representation, not the canonical physical one).
    pub fn chunk(&self, user: &str, hash: &ContentHash) -> Option<StoredChunk> {
        self.user_shard(user).read().get(user).and_then(|ns| ns.chunks.get(hash).cloned())
    }

    /// Number of distinct users that committed a given chunk.
    pub fn chunk_owners(&self, hash: &ContentHash) -> u64 {
        self.chunk_shard(hash).read().get(hash).map(|e| e.owners).unwrap_or(0)
    }

    /// The plaintext payload of a physical chunk, when a committer provided
    /// one via [`ObjectStore::put_chunk_with_payload`]. `None` for unknown
    /// (or garbage-collected) hashes and for metadata-only commits. The
    /// restore pipeline serves file reconstructions from here.
    pub fn chunk_payload(&self, hash: &ContentHash) -> Option<Arc<[u8]>> {
        self.chunk_shard(hash).read().get(hash).and_then(|e| e.payload.clone())
    }

    /// Aggregate statistics of a user's namespace.
    pub fn stats(&self, user: &str) -> StoreStats {
        let guard = self.user_shard(user).read();
        let Some(ns) = guard.get(user) else {
            return StoreStats::default();
        };
        StoreStats {
            files: ns.files.len(),
            chunks: ns.chunks.len(),
            stored_bytes: ns.chunks.values().map(|c| c.stored_len).sum(),
            logical_bytes: ns.files.values().map(|f| f.size).sum(),
        }
    }

    /// The user names with a non-empty namespace, sorted.
    pub fn users(&self) -> Vec<String> {
        let mut users = Vec::new();
        for shard in self.inner.user_shards.iter() {
            let guard = shard.read();
            users.extend(
                guard
                    .iter()
                    .filter(|(_, ns)| !ns.files.is_empty() || !ns.chunks.is_empty())
                    .map(|(name, _)| name.clone()),
            );
        }
        users.sort();
        users
    }

    /// Aggregate statistics across every user namespace. Chunk-level fields
    /// come from the atomic counters; file-level fields are summed over the
    /// user shards under their read locks.
    pub fn aggregate(&self) -> AggregateStats {
        let mut users = 0usize;
        let mut files = 0usize;
        let mut logical_bytes = 0u64;
        for shard in self.inner.user_shards.iter() {
            let guard = shard.read();
            for ns in guard.values() {
                if ns.files.is_empty() && ns.chunks.is_empty() {
                    continue;
                }
                users += 1;
                files += ns.files.len();
                logical_bytes += ns.files.values().map(|f| f.size).sum::<u64>();
            }
        }
        let stats = &*self.inner;
        AggregateStats {
            users,
            files,
            logical_bytes,
            unique_chunks: stats.unique_chunks.load(Ordering::Relaxed),
            physical_bytes: stats.physical_bytes.load(Ordering::Relaxed),
            referenced_bytes: stats.referenced_bytes.load(Ordering::Relaxed),
            server_dedup_hits: stats.server_dedup_hits.load(Ordering::Relaxed),
            chunk_puts: stats.chunk_puts.load(Ordering::Relaxed),
            manifest_deletes: stats.manifest_deletes.load(Ordering::Relaxed),
            reclaimed_bytes: stats.reclaimed_bytes.load(Ordering::Relaxed),
            freed_chunks: stats.freed_chunks.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunker::ChunkingStrategy;
    use crate::hash::sha256;

    fn stored(data: &[u8]) -> StoredChunk {
        StoredChunk {
            hash: sha256(data),
            stored_len: data.len() as u64,
            plain_len: data.len() as u64,
        }
    }

    #[test]
    fn put_get_and_dedup_of_chunks() {
        let store = ObjectStore::new();
        let c = stored(b"hello chunk");
        assert!(!store.has_chunk("alice", &c.hash));
        assert!(store.put_chunk("alice", c.clone()));
        assert!(store.has_chunk("alice", &c.hash));
        // Second put of the same content is a no-op.
        assert!(!store.put_chunk("alice", c.clone()));
        assert_eq!(store.chunk("alice", &c.hash), Some(c.clone()));
        // Namespaces are isolated per user (logical view)…
        assert!(!store.has_chunk("bob", &c.hash));
        assert_eq!(store.chunk("bob", &c.hash), None);
        // …but the physical store knows the chunk globally.
        assert!(store.has_chunk_globally(&c.hash));
        assert_eq!(store.chunk_owners(&c.hash), 1);
    }

    #[test]
    fn manifests_commit_and_version() {
        let store = ObjectStore::new();
        let data = vec![9u8; 100_000];
        let chunks = ChunkingStrategy::Fixed { size: 30_000 }.chunk(&data);
        for ch in &chunks {
            store.put_chunk(
                "alice",
                StoredChunk { hash: ch.hash, stored_len: ch.len, plain_len: ch.len },
            );
        }
        let manifest = FileManifest::from_chunks("docs/report.bin", &chunks, 0);
        assert_eq!(manifest.size, 100_000);
        let v1 = store.commit_manifest("alice", manifest.clone());
        let v2 = store.commit_manifest("alice", manifest);
        assert_eq!(v1, 1);
        assert_eq!(v2, 2);
        let fetched = store.manifest("alice", "docs/report.bin").unwrap();
        assert_eq!(fetched.version, 2);
        assert_eq!(fetched.chunks.len(), chunks.len());
        assert_eq!(store.list_files("alice"), vec!["docs/report.bin".to_string()]);
    }

    #[test]
    #[should_panic(expected = "manifest references unknown chunk")]
    fn committing_a_manifest_with_missing_chunks_panics() {
        let store = ObjectStore::new();
        let manifest = FileManifest {
            path: "x".into(),
            size: 10,
            chunks: vec![sha256(b"never uploaded")],
            version: 0,
        };
        store.commit_manifest("alice", manifest);
    }

    #[test]
    #[should_panic(expected = "manifest references unknown chunk")]
    fn another_users_chunks_do_not_satisfy_a_manifest() {
        let store = ObjectStore::new();
        let c = stored(b"bob's bytes");
        store.put_chunk("bob", c.clone());
        let manifest =
            FileManifest { path: "x".into(), size: 10, chunks: vec![c.hash], version: 0 };
        store.commit_manifest("alice", manifest);
    }

    #[test]
    fn delete_keeps_chunks_for_later_restore() {
        let store = ObjectStore::new();
        let c = stored(b"content that will be deleted");
        store.put_chunk("alice", c.clone());
        let manifest = FileManifest {
            path: "a.bin".into(),
            size: c.plain_len,
            chunks: vec![c.hash],
            version: 0,
        };
        store.commit_manifest("alice", manifest);
        assert!(store.delete_file("alice", "a.bin"));
        assert!(!store.delete_file("alice", "a.bin"));
        assert!(store.manifest("alice", "a.bin").is_none());
        // The chunk survives deletion, so a restore needs no re-upload.
        assert!(store.has_chunk("alice", &c.hash));
        let stats = store.stats("alice");
        assert_eq!(stats.files, 0);
        assert_eq!(stats.chunks, 1);
    }

    #[test]
    fn stats_reflect_logical_and_stored_bytes() {
        let store = ObjectStore::new();
        assert_eq!(store.stats("nobody"), StoreStats::default());
        let c1 = stored(&vec![1u8; 1000]);
        let c2 = StoredChunk { hash: sha256(b"compressed"), stored_len: 400, plain_len: 1000 };
        store.put_chunk("alice", c1.clone());
        store.put_chunk("alice", c2.clone());
        store.commit_manifest(
            "alice",
            FileManifest { path: "f1".into(), size: 1000, chunks: vec![c1.hash], version: 0 },
        );
        store.commit_manifest(
            "alice",
            FileManifest { path: "f2".into(), size: 1000, chunks: vec![c2.hash], version: 0 },
        );
        let stats = store.stats("alice");
        assert_eq!(stats.files, 2);
        assert_eq!(stats.chunks, 2);
        assert_eq!(stats.stored_bytes, 1400);
        assert_eq!(stats.logical_bytes, 2000);
    }

    #[test]
    fn store_handles_are_shared_clones() {
        let store = ObjectStore::new();
        let clone = store.clone();
        clone.put_chunk("alice", stored(b"via clone"));
        assert!(store.has_chunk("alice", &sha256(b"via clone")));
    }

    #[test]
    fn inter_user_dedup_stores_bytes_once() {
        let store = ObjectStore::new();
        let shared = stored(&vec![7u8; 5000]);
        let private = stored(b"only alice");
        assert!(store.put_chunk("alice", shared.clone()));
        assert!(store.put_chunk("alice", private.clone()));
        // Bob uploads the same shared payload: accepted (new to him), but the
        // server physically keeps one copy.
        assert!(store.put_chunk("bob", shared.clone()));
        let agg = store.aggregate();
        assert_eq!(agg.unique_chunks, 2);
        assert_eq!(agg.physical_bytes, 5000 + private.stored_len);
        assert_eq!(agg.referenced_bytes, 2 * 5000 + private.stored_len);
        assert_eq!(agg.server_dedup_hits, 1);
        assert_eq!(agg.chunk_puts, 3);
        assert_eq!(agg.saved_bytes(), 5000);
        assert!(agg.dedup_ratio() > 1.0);
        assert_eq!(store.chunk_owners(&shared.hash), 2);
        // Per-user views are unaffected.
        assert_eq!(store.stats("alice").chunks, 2);
        assert_eq!(store.stats("bob").chunks, 1);
    }

    #[test]
    fn canonical_stored_size_is_the_minimum_seen() {
        let store = ObjectStore::new();
        let hash = sha256(b"same plaintext");
        // Alice's service compresses poorly, Bob's well; order must not
        // matter for the physical accounting.
        store.put_chunk("alice", StoredChunk { hash, stored_len: 900, plain_len: 1000 });
        store.put_chunk("bob", StoredChunk { hash, stored_len: 600, plain_len: 1000 });
        assert_eq!(store.aggregate().physical_bytes, 600);

        let store2 = ObjectStore::new();
        store2.put_chunk("bob", StoredChunk { hash, stored_len: 600, plain_len: 1000 });
        store2.put_chunk("alice", StoredChunk { hash, stored_len: 900, plain_len: 1000 });
        assert_eq!(store2.aggregate().physical_bytes, 600);
        assert_eq!(store.aggregate(), store2.aggregate());
    }

    #[test]
    fn users_and_aggregate_cover_all_namespaces() {
        let store = ObjectStore::new();
        for user in ["u1", "u2", "u3"] {
            let c = stored(user.as_bytes());
            store.put_chunk(user, c.clone());
            store.commit_manifest(
                user,
                FileManifest {
                    path: "f".into(),
                    size: c.plain_len,
                    chunks: vec![c.hash],
                    version: 0,
                },
            );
        }
        assert_eq!(store.users(), vec!["u1", "u2", "u3"]);
        let agg = store.aggregate();
        assert_eq!(agg.users, 3);
        assert_eq!(agg.files, 3);
        assert_eq!(agg.unique_chunks, 3);
        assert_eq!(agg.logical_bytes, 6);
    }

    #[test]
    fn single_shard_store_behaves_identically() {
        let sharded = ObjectStore::with_shards(16);
        let single = ObjectStore::with_shards(1);
        assert_eq!(sharded.shard_count(), 16);
        assert_eq!(single.shard_count(), 1);
        for store in [&sharded, &single] {
            for i in 0..50u32 {
                let user = format!("user-{}", i % 5);
                store.put_chunk(&user, stored(&i.to_le_bytes()));
            }
        }
        assert_eq!(sharded.aggregate(), single.aggregate());
        for i in 0..5 {
            let user = format!("user-{i}");
            assert_eq!(sharded.stats(&user), single.stats(&user));
        }
    }

    #[test]
    fn concurrent_access_from_multiple_threads() {
        let store = ObjectStore::new();
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let data = format!("thread {t} chunk {i}");
                    store.put_chunk("shared", stored(data.as_bytes()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.stats("shared").chunks, 400);
        assert_eq!(store.aggregate().unique_chunks, 400);
    }

    fn manifest_for(path: &str, chunks: &[&StoredChunk]) -> FileManifest {
        FileManifest {
            path: path.into(),
            size: chunks.iter().map(|c| c.plain_len).sum(),
            chunks: chunks.iter().map(|c| c.hash).collect(),
            version: 0,
        }
    }

    #[test]
    fn delete_manifest_releases_unreferenced_chunks_eagerly() {
        let store = ObjectStore::with_policy(GcPolicy::Eager);
        let private = stored(b"alice only");
        let shared = stored(b"in two files");
        store.put_chunk("alice", private.clone());
        store.put_chunk("alice", shared.clone());
        store.commit_manifest("alice", manifest_for("a.bin", &[&private, &shared]));
        store.commit_manifest("alice", manifest_for("b.bin", &[&shared]));

        // Deleting a.bin frees the private chunk but keeps the shared one:
        // b.bin still references it.
        let released = store.delete_manifest("alice", "a.bin").unwrap();
        assert_eq!(released, private.stored_len);
        let agg = store.aggregate();
        assert_eq!(agg.unique_chunks, 1);
        assert_eq!(agg.reclaimed_bytes, private.stored_len);
        assert_eq!(agg.freed_chunks, 1);
        assert_eq!(agg.manifest_deletes, 1);
        assert!(!store.has_chunk_globally(&private.hash));
        assert!(store.has_chunk_globally(&shared.hash));

        // Deleting b.bin empties the namespace and the physical store.
        store.delete_manifest("alice", "b.bin").unwrap();
        let agg = store.aggregate();
        assert_eq!(agg.users, 0);
        assert_eq!(agg.unique_chunks, 0);
        assert_eq!(agg.physical_bytes, 0);
        assert_eq!(agg.referenced_bytes, 0);
        assert_eq!(agg.reclaimed_bytes, private.stored_len + shared.stored_len);
        // Unknown paths and users report None.
        assert_eq!(store.delete_manifest("alice", "b.bin"), None);
        assert_eq!(store.delete_manifest("nobody", "x"), None);
    }

    #[test]
    fn mark_sweep_defers_frees_to_the_collection_pass() {
        let store = ObjectStore::new();
        assert_eq!(store.gc_policy(), GcPolicy::MarkSweep);
        let c = stored(b"swept later");
        store.put_chunk("alice", c.clone());
        store.commit_manifest("alice", manifest_for("a.bin", &[&c]));
        store.delete_manifest("alice", "a.bin").unwrap();

        // Released but not yet freed: physical bytes survive the release…
        let agg = store.aggregate();
        assert_eq!(agg.physical_bytes, c.stored_len);
        assert_eq!(agg.referenced_bytes, 0);
        assert_eq!(agg.reclaimed_bytes, 0);
        assert!(store.has_chunk_globally(&c.hash));

        // …until the sweep.
        let pass = store.collect_garbage();
        assert_eq!(pass, GcStats { freed_chunks: 1, freed_bytes: c.stored_len });
        let agg = store.aggregate();
        assert_eq!(agg.physical_bytes, 0);
        assert_eq!(agg.unique_chunks, 0);
        assert_eq!(agg.reclaimed_bytes, c.stored_len);
        assert!(!store.has_chunk_globally(&c.hash));
        // A second sweep finds nothing.
        assert_eq!(store.collect_garbage(), GcStats::default());
    }

    #[test]
    fn gc_never_frees_chunks_other_users_still_reference() {
        for policy in [GcPolicy::Eager, GcPolicy::MarkSweep] {
            let store = ObjectStore::with_policy(policy);
            let shared = stored(b"popular payload");
            for user in ["alice", "bob"] {
                store.put_chunk(user, shared.clone());
                store.commit_manifest(user, manifest_for("f.bin", &[&shared]));
            }
            store.delete_manifest("alice", "f.bin").unwrap();
            store.collect_garbage();
            assert!(store.has_chunk_globally(&shared.hash), "{policy:?}");
            assert_eq!(store.aggregate().physical_bytes, shared.stored_len, "{policy:?}");
            assert_eq!(store.chunk_owners(&shared.hash), 1, "{policy:?}");
            // Bob's view is untouched.
            assert_eq!(store.stats("bob").chunks, 1, "{policy:?}");
        }
    }

    #[test]
    fn soft_delete_retains_superseded_and_deleted_revisions_until_purge() {
        let store = ObjectStore::with_policy(GcPolicy::Eager);
        let v1 = stored(b"revision one");
        let v2 = stored(b"revision two");
        store.put_chunk("alice", v1.clone());
        store.commit_manifest("alice", manifest_for("doc.bin", &[&v1]));
        // Supersede: v1's refs drop but its bytes are retained (a restore or
        // dedup hit must not dangle).
        store.put_chunk("alice", v2.clone());
        store.commit_manifest("alice", manifest_for("doc.bin", &[&v2]));
        assert!(store.has_chunk("alice", &v1.hash));

        // Soft delete (§4.3) frees nothing either.
        assert!(store.delete_file("alice", "doc.bin"));
        store.collect_garbage();
        assert_eq!(store.aggregate().physical_bytes, v1.stored_len + v2.stored_len);

        // purge_user hard-deletes the namespace, retained revisions included.
        let released = store.purge_user("alice");
        assert_eq!(released, v1.stored_len + v2.stored_len);
        let agg = store.aggregate();
        assert_eq!(agg.users, 0);
        assert_eq!(agg.physical_bytes, 0);
        assert_eq!(agg.referenced_bytes, 0);
        assert_eq!(store.purge_user("alice"), 0, "second purge is a no-op");
    }

    #[test]
    fn delete_manifest_honours_the_supersede_retention_promise() {
        // doc.bin v1 holds chunk A; v2 supersedes it (A's refs drop to 0 but
        // A is retained). other.bin then re-references A and is hard-deleted:
        // A must survive, because the supersede retention outlives the
        // re-reference — a later manifest that dedup-skips A's upload (the
        // client-side index still knows it) must still commit.
        let store = ObjectStore::with_policy(GcPolicy::Eager);
        let a = stored(b"retained by supersede");
        let b = stored(b"revision two");
        store.put_chunk("alice", a.clone());
        store.commit_manifest("alice", manifest_for("doc.bin", &[&a]));
        store.put_chunk("alice", b.clone());
        store.commit_manifest("alice", manifest_for("doc.bin", &[&b]));

        store.commit_manifest("alice", manifest_for("other.bin", &[&a]));
        store.delete_manifest("alice", "other.bin").unwrap();

        // A is still in the namespace and physically present…
        assert!(store.has_chunk("alice", &a.hash));
        assert!(store.has_chunk_globally(&a.hash));
        // …so a dedup-skipping manifest referencing it commits fine.
        store.commit_manifest("alice", manifest_for("restored.bin", &[&a]));
        // purge_user still reclaims everything, retention included.
        store.purge_user("alice");
        assert_eq!(store.aggregate().physical_bytes, 0);
    }

    #[test]
    fn chunks_can_be_reuploaded_after_collection() {
        let store = ObjectStore::with_policy(GcPolicy::Eager);
        let c = stored(b"comes back");
        store.put_chunk("alice", c.clone());
        store.commit_manifest("alice", manifest_for("a.bin", &[&c]));
        store.delete_manifest("alice", "a.bin");
        assert!(!store.has_chunk_globally(&c.hash));

        // A fresh upload after the free is a new physical entry, not a dedup
        // hit — the bytes really were gone.
        let hits_before = store.aggregate().server_dedup_hits;
        assert!(store.put_chunk("bob", c.clone()));
        let agg = store.aggregate();
        assert_eq!(agg.server_dedup_hits, hits_before);
        assert_eq!(agg.unique_chunks, 1);
        assert_eq!(agg.physical_bytes, c.stored_len);
    }

    #[test]
    fn concurrent_releases_match_sequential_releases() {
        // The churn determinism contract at the store level: after a commit
        // phase, concurrent manifest hard-deletes produce bit-identical
        // aggregates to a sequential replay, under both GC policies.
        for policy in [GcPolicy::Eager, GcPolicy::MarkSweep] {
            let build = || {
                let store = ObjectStore::with_policy(policy);
                for t in 0..8u32 {
                    let user = format!("user-{t}");
                    for i in 0..40u32 {
                        // Chunks i%10 are shared across all users.
                        let data = vec![(i % 10) as u8; 128 + (i % 10) as usize];
                        let c = stored(&data);
                        store.put_chunk(&user, c.clone());
                        store.commit_manifest(&user, manifest_for(&format!("f{i:02}.bin"), &[&c]));
                    }
                }
                store
            };

            let concurrent = build();
            std::thread::scope(|scope| {
                for t in 0..8u32 {
                    let store = concurrent.clone();
                    scope.spawn(move || {
                        let user = format!("user-{t}");
                        for path in store.list_files(&user) {
                            store.delete_manifest(&user, &path);
                        }
                    });
                }
            });
            concurrent.collect_garbage();

            let sequential = build();
            for t in 0..8u32 {
                let user = format!("user-{t}");
                for path in sequential.list_files(&user) {
                    sequential.delete_manifest(&user, &path);
                }
            }
            sequential.collect_garbage();

            assert_eq!(concurrent.aggregate(), sequential.aggregate(), "{policy:?}");
            assert_eq!(concurrent.aggregate().physical_bytes, 0, "{policy:?}");
            assert_eq!(concurrent.aggregate().users, 0, "{policy:?}");
        }
    }

    #[test]
    fn payloads_are_stored_once_and_freed_with_the_entry() {
        let store = ObjectStore::with_policy(GcPolicy::Eager);
        let data = b"payload bytes served to restores".to_vec();
        let c = stored(&data);
        // Metadata-only commit leaves no payload…
        assert!(store.put_chunk("alice", c.clone()));
        assert_eq!(store.chunk_payload(&c.hash), None);
        // …a later payload-carrying commit (another user) fills it in.
        assert!(store.put_chunk_with_payload("bob", c.clone(), &data));
        assert_eq!(store.chunk_payload(&c.hash).as_deref(), Some(&data[..]));
        // Aggregate accounting is identical to the payload-less path.
        assert_eq!(store.aggregate().unique_chunks, 1);
        assert_eq!(store.aggregate().server_dedup_hits, 1);

        // Releasing both owners frees the entry and its payload.
        store.commit_manifest("alice", manifest_for("a.bin", &[&c]));
        store.commit_manifest("bob", manifest_for("b.bin", &[&c]));
        store.delete_manifest("alice", "a.bin");
        store.delete_manifest("bob", "b.bin");
        assert_eq!(store.chunk_payload(&c.hash), None);
        assert!(!store.has_chunk_globally(&c.hash));
    }

    #[test]
    fn concurrent_users_match_sequential_replay() {
        // The determinism contract of the sharded refactor, in miniature:
        // 8 threads (users) commit overlapping chunk sets concurrently; a
        // sequential replay of the same per-user commits into a fresh store
        // yields bit-identical per-user and aggregate statistics.
        let concurrent = ObjectStore::new();
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let store = concurrent.clone();
            handles.push(std::thread::spawn(move || {
                let user = format!("user-{t}");
                for i in 0..60u32 {
                    // Every user shares chunks i%20, giving heavy overlap.
                    let data = vec![(i % 20) as u8; 256 + (i % 20) as usize];
                    store.put_chunk(&user, stored(&data));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }

        let sequential = ObjectStore::new();
        for t in 0..8u32 {
            let user = format!("user-{t}");
            for i in 0..60u32 {
                let data = vec![(i % 20) as u8; 256 + (i % 20) as usize];
                sequential.put_chunk(&user, stored(&data));
            }
        }

        assert_eq!(concurrent.aggregate(), sequential.aggregate());
        for t in 0..8u32 {
            let user = format!("user-{t}");
            assert_eq!(concurrent.stats(&user), sequential.stats(&user));
        }
        // 20 distinct payloads, referenced by all 8 users.
        assert_eq!(concurrent.aggregate().unique_chunks, 20);
        assert_eq!(concurrent.aggregate().server_dedup_hits, 7 * 20);
    }
}
