//! Server-side object store.
//!
//! The storage back-end the simulated services commit uploads to: a
//! content-addressed chunk store plus per-user file manifests. It backs the
//! capability experiments end-to-end — e.g. the deduplication test of §4.3
//! uploads, copies, deletes and restores files and the store (together with
//! [`crate::dedup::DedupIndex`]) determines how many bytes actually had to
//! travel.

use crate::chunker::Chunk;
use crate::hash::ContentHash;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// A chunk as stored on the server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredChunk {
    /// Content hash of the (possibly transformed) chunk payload.
    pub hash: ContentHash,
    /// Stored size in bytes (after compression/encryption, i.e. what occupies
    /// server capacity).
    pub stored_len: u64,
    /// Original plaintext length of the chunk.
    pub plain_len: u64,
}

/// The manifest of one file version: the ordered list of chunk hashes plus
/// bookkeeping metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileManifest {
    /// Path of the file inside the synced folder.
    pub path: String,
    /// Total plaintext size.
    pub size: u64,
    /// Ordered chunk hashes making up the content.
    pub chunks: Vec<ContentHash>,
    /// Monotonically increasing version number.
    pub version: u64,
}

impl FileManifest {
    /// Builds a manifest from the chunk list produced by a
    /// [`crate::chunker::ChunkingStrategy`].
    pub fn from_chunks(path: &str, chunks: &[Chunk], version: u64) -> FileManifest {
        FileManifest {
            path: path.to_string(),
            size: chunks.iter().map(|c| c.len).sum(),
            chunks: chunks.iter().map(|c| c.hash).collect(),
            version,
        }
    }
}

/// Statistics about the state of an object store namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StoreStats {
    /// Number of live file manifests.
    pub files: usize,
    /// Number of distinct chunks held.
    pub chunks: usize,
    /// Bytes occupied by chunk payloads on the server.
    pub stored_bytes: u64,
    /// Sum of the plaintext sizes of live files (logical size).
    pub logical_bytes: u64,
}

/// A per-user namespace: manifests and chunks.
#[derive(Debug, Default)]
struct Namespace {
    files: HashMap<String, FileManifest>,
    chunks: HashMap<ContentHash, StoredChunk>,
    next_version: u64,
}

/// The server-side object store, shared by control and storage servers of a
/// simulated service. Thread-safe so the parallel experiment runner can drive
/// independent user accounts concurrently.
#[derive(Debug, Clone, Default)]
pub struct ObjectStore {
    inner: Arc<RwLock<HashMap<String, Namespace>>>,
}

impl ObjectStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ObjectStore::default()
    }

    /// True when the user's namespace already holds a chunk with this hash
    /// (server-side deduplication check).
    pub fn has_chunk(&self, user: &str, hash: &ContentHash) -> bool {
        self.inner.read().get(user).map(|ns| ns.chunks.contains_key(hash)).unwrap_or(false)
    }

    /// Stores a chunk payload. Returns `true` when the chunk was new, `false`
    /// when an identical chunk was already present (nothing is overwritten).
    pub fn put_chunk(&self, user: &str, chunk: StoredChunk) -> bool {
        let mut guard = self.inner.write();
        let ns = guard.entry(user.to_string()).or_default();
        match ns.chunks.entry(chunk.hash) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(chunk);
                true
            }
        }
    }

    /// Commits a file manifest (creating or replacing the path). Returns the
    /// version number assigned. Panics if any referenced chunk is missing —
    /// a protocol error a real service would reject as well.
    pub fn commit_manifest(&self, user: &str, mut manifest: FileManifest) -> u64 {
        let mut guard = self.inner.write();
        let ns = guard.entry(user.to_string()).or_default();
        for hash in &manifest.chunks {
            assert!(ns.chunks.contains_key(hash), "manifest references unknown chunk {hash}");
        }
        ns.next_version += 1;
        manifest.version = ns.next_version;
        let version = manifest.version;
        ns.files.insert(manifest.path.clone(), manifest);
        version
    }

    /// Fetches the current manifest of a path.
    pub fn manifest(&self, user: &str, path: &str) -> Option<FileManifest> {
        self.inner.read().get(user).and_then(|ns| ns.files.get(path).cloned())
    }

    /// Deletes a file. The chunks it referenced are *not* garbage-collected,
    /// matching the delete/restore observation of §4.3. Returns `true` when a
    /// file was removed.
    pub fn delete_file(&self, user: &str, path: &str) -> bool {
        self.inner.write().get_mut(user).map(|ns| ns.files.remove(path).is_some()).unwrap_or(false)
    }

    /// Lists the live file paths of a user, sorted.
    pub fn list_files(&self, user: &str) -> Vec<String> {
        let mut paths: Vec<String> = self
            .inner
            .read()
            .get(user)
            .map(|ns| ns.files.keys().cloned().collect())
            .unwrap_or_default();
        paths.sort();
        paths
    }

    /// Returns a stored chunk record.
    pub fn chunk(&self, user: &str, hash: &ContentHash) -> Option<StoredChunk> {
        self.inner.read().get(user).and_then(|ns| ns.chunks.get(hash).cloned())
    }

    /// Aggregate statistics of a user's namespace.
    pub fn stats(&self, user: &str) -> StoreStats {
        let guard = self.inner.read();
        let Some(ns) = guard.get(user) else {
            return StoreStats::default();
        };
        StoreStats {
            files: ns.files.len(),
            chunks: ns.chunks.len(),
            stored_bytes: ns.chunks.values().map(|c| c.stored_len).sum(),
            logical_bytes: ns.files.values().map(|f| f.size).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunker::ChunkingStrategy;
    use crate::hash::sha256;

    fn stored(data: &[u8]) -> StoredChunk {
        StoredChunk {
            hash: sha256(data),
            stored_len: data.len() as u64,
            plain_len: data.len() as u64,
        }
    }

    #[test]
    fn put_get_and_dedup_of_chunks() {
        let store = ObjectStore::new();
        let c = stored(b"hello chunk");
        assert!(!store.has_chunk("alice", &c.hash));
        assert!(store.put_chunk("alice", c.clone()));
        assert!(store.has_chunk("alice", &c.hash));
        // Second put of the same content is a no-op.
        assert!(!store.put_chunk("alice", c.clone()));
        assert_eq!(store.chunk("alice", &c.hash), Some(c.clone()));
        // Namespaces are isolated per user.
        assert!(!store.has_chunk("bob", &c.hash));
        assert_eq!(store.chunk("bob", &c.hash), None);
    }

    #[test]
    fn manifests_commit_and_version() {
        let store = ObjectStore::new();
        let data = vec![9u8; 100_000];
        let chunks = ChunkingStrategy::Fixed { size: 30_000 }.chunk(&data);
        for ch in &chunks {
            store.put_chunk(
                "alice",
                StoredChunk { hash: ch.hash, stored_len: ch.len, plain_len: ch.len },
            );
        }
        let manifest = FileManifest::from_chunks("docs/report.bin", &chunks, 0);
        assert_eq!(manifest.size, 100_000);
        let v1 = store.commit_manifest("alice", manifest.clone());
        let v2 = store.commit_manifest("alice", manifest);
        assert_eq!(v1, 1);
        assert_eq!(v2, 2);
        let fetched = store.manifest("alice", "docs/report.bin").unwrap();
        assert_eq!(fetched.version, 2);
        assert_eq!(fetched.chunks.len(), chunks.len());
        assert_eq!(store.list_files("alice"), vec!["docs/report.bin".to_string()]);
    }

    #[test]
    #[should_panic(expected = "manifest references unknown chunk")]
    fn committing_a_manifest_with_missing_chunks_panics() {
        let store = ObjectStore::new();
        let manifest = FileManifest {
            path: "x".into(),
            size: 10,
            chunks: vec![sha256(b"never uploaded")],
            version: 0,
        };
        store.commit_manifest("alice", manifest);
    }

    #[test]
    fn delete_keeps_chunks_for_later_restore() {
        let store = ObjectStore::new();
        let c = stored(b"content that will be deleted");
        store.put_chunk("alice", c.clone());
        let manifest = FileManifest {
            path: "a.bin".into(),
            size: c.plain_len,
            chunks: vec![c.hash],
            version: 0,
        };
        store.commit_manifest("alice", manifest);
        assert!(store.delete_file("alice", "a.bin"));
        assert!(!store.delete_file("alice", "a.bin"));
        assert!(store.manifest("alice", "a.bin").is_none());
        // The chunk survives deletion, so a restore needs no re-upload.
        assert!(store.has_chunk("alice", &c.hash));
        let stats = store.stats("alice");
        assert_eq!(stats.files, 0);
        assert_eq!(stats.chunks, 1);
    }

    #[test]
    fn stats_reflect_logical_and_stored_bytes() {
        let store = ObjectStore::new();
        assert_eq!(store.stats("nobody"), StoreStats::default());
        let c1 = stored(&vec![1u8; 1000]);
        let c2 = StoredChunk { hash: sha256(b"compressed"), stored_len: 400, plain_len: 1000 };
        store.put_chunk("alice", c1.clone());
        store.put_chunk("alice", c2.clone());
        store.commit_manifest(
            "alice",
            FileManifest { path: "f1".into(), size: 1000, chunks: vec![c1.hash], version: 0 },
        );
        store.commit_manifest(
            "alice",
            FileManifest { path: "f2".into(), size: 1000, chunks: vec![c2.hash], version: 0 },
        );
        let stats = store.stats("alice");
        assert_eq!(stats.files, 2);
        assert_eq!(stats.chunks, 2);
        assert_eq!(stats.stored_bytes, 1400);
        assert_eq!(stats.logical_bytes, 2000);
    }

    #[test]
    fn store_handles_are_shared_clones() {
        let store = ObjectStore::new();
        let clone = store.clone();
        clone.put_chunk("alice", stored(b"via clone"));
        assert!(store.has_chunk("alice", &sha256(b"via clone")));
    }

    #[test]
    fn concurrent_access_from_multiple_threads() {
        let store = ObjectStore::new();
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let data = format!("thread {t} chunk {i}");
                    store.put_chunk("shared", stored(data.as_bytes()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.stats("shared").chunks, 400);
    }
}
