//! Temporal schedule suite: think times, idle rounds and arrival jitter on
//! a virtual clock.
//!
//! The paper's benchmarks are temporal at heart — §3.1 captures 16 minutes
//! of idle background signalling, and the §5 experiments measure sync
//! *start-up delay* and completion time, quantities that only exist because
//! clients do not fire in lock-step. This suite runs the canonical
//! *temporal* fleet: mixed profiles on mixed links where every client draws
//! a seeded [`ThinkTime`] pause before each activity burst, activates each
//! round only with probability `activation` (idle rounds stay connected and
//! pay keep-alive signalling, exactly the §3.1 accounting), and starts each
//! sync at a seeded intra-round arrival offset. It reports what the
//! lock-step fleet could not:
//!
//! * the **sync start-up delay** distribution (modification → sync start,
//!   the paper's Fig. 6a quantity, now sampled across a jittered fleet),
//! * the **per-round concurrency high-water mark** — how many syncs overlap
//!   at the busiest virtual instant, compared against the same fleet run
//!   lock-step (where the peak approaches the fleet size),
//! * the **background-vs-payload byte split** — §3.1-style signalling
//!   volume against storage payload, with idle rounds paying their polls,
//! * the **arrival spread** — how far jitter pulls first syncs apart.
//!
//! Everything is a pure function of the seed: the schedule is derived up
//! front as data, so the whole suite is part of the CI bench-regression
//! gate (`schedule.*` metrics) and the `schedule-determinism` CI leg can
//! `cmp` two fresh `repro schedule` dumps byte for byte.

use cloudsim_services::fleet::{run_fleet_concurrent, FleetSpec};
use cloudsim_services::schedule::ThinkTime;
use cloudsim_services::{AccessLink, GcPolicy, ServiceProfile};
use cloudsim_trace::series::SampleStats;
use cloudsim_trace::{HistogramSummary, SimDuration};
use serde::Serialize;

/// The service mix of the canonical temporal scenario, in slot order.
pub fn schedule_profiles() -> Vec<ServiceProfile> {
    vec![ServiceProfile::dropbox(), ServiceProfile::skydrive(), ServiceProfile::google_drive()]
}

/// The canonical temporal fleet: `clients` slots cycling through the
/// service mix and all four link presets, six rounds of four 64 kB files,
/// an exponential think time (mean 8 s), up to 20 s of intra-round arrival
/// jitter, and a 0.7 per-round activation probability — so roughly a third
/// of the connected rounds are idle and pay only keep-alive signalling.
pub fn schedule_spec(clients: usize, seed: u64) -> FleetSpec {
    assert!(clients >= 2, "the temporal scenario needs at least two slots");
    FleetSpec::new(ServiceProfile::dropbox(), clients)
        .with_files(4, 64 * 1024)
        .with_batches(6)
        .with_seed(seed)
        .with_profiles(&schedule_profiles())
        .with_links(&AccessLink::all())
        .with_gc(GcPolicy::Eager)
        .with_think_time(ThinkTime::Exponential { mean: SimDuration::from_secs(8) })
        .with_arrival_jitter(SimDuration::from_secs(20))
        .with_activation(0.7)
}

/// The lock-step control: the same fleet with the temporal model switched
/// off (zero think time, zero jitter, full activation) — the configuration
/// that replays the legacy round-major behaviour.
pub fn lockstep_spec(clients: usize, seed: u64) -> FleetSpec {
    schedule_spec(clients, seed)
        .with_think_time(ThinkTime::NONE)
        .with_arrival_jitter(SimDuration::ZERO)
        .with_activation(1.0)
}

/// The temporal suite's results.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScheduleSuite {
    /// Number of client slots.
    pub clients: usize,
    /// Rounds the fleet ran.
    pub rounds: usize,
    /// Per-batch workload label (e.g. "4x64kB").
    pub workload: String,
    /// Human-readable think-time distribution label.
    pub think: String,
    /// Intra-round arrival jitter bound in seconds.
    pub arrival_jitter_s: f64,
    /// Per-round activation probability.
    pub activation: f64,
    /// Rounds the fleet actually synced batches in.
    pub sync_rounds: usize,
    /// Connected-but-idle rounds (keep-alive signalling only).
    pub idle_rounds: usize,
    /// Paper-style sync start-up delay distribution (modification → sync
    /// start), one sample per activated round.
    pub startup_delay: SampleStats,
    /// Distribution of per-sync commit durations across every activated
    /// round.
    pub sync_hist: HistogramSummary,
    /// Per-client completion-time distribution over the clients that
    /// synced.
    pub completion: SampleStats,
    /// Spread of first-sync start times across the fleet, in seconds.
    pub first_sync_spread_s: f64,
    /// Most syncs in flight at any virtual instant, jittered schedule.
    pub concurrency_peak: usize,
    /// The same fleet's peak when run lock-step — the barrier the jitter
    /// dissolves.
    pub lockstep_concurrency_peak: usize,
    /// Control-plane wire bytes (login, metadata, keep-alive polls).
    pub background_wire_bytes: u64,
    /// Storage-flow wire bytes (payload direction, headers included).
    pub payload_wire_bytes: u64,
    /// `(user, synced rounds, idle rounds)` per client, in slot order.
    pub per_client_rounds: Vec<(String, usize, usize)>,
}

impl ScheduleSuite {
    /// Fraction of all wire bytes that were background signalling.
    pub fn background_fraction(&self) -> f64 {
        let background = self.background_wire_bytes as f64;
        let total = background + self.payload_wire_bytes as f64;
        if total > 0.0 {
            background / total
        } else {
            0.0
        }
    }

    /// Fraction of connected rounds spent idle.
    pub fn idle_fraction(&self) -> f64 {
        let total = (self.sync_rounds + self.idle_rounds) as f64;
        if total > 0.0 {
            self.idle_rounds as f64 / total
        } else {
            0.0
        }
    }
}

/// Runs the canonical temporal scenario (plus its lock-step control) with
/// one OS thread per client and assembles the suite.
pub fn run_schedule(clients: usize, seed: u64) -> ScheduleSuite {
    let spec = schedule_spec(clients, seed);
    let run = run_fleet_concurrent(&spec);
    let lockstep = run_fleet_concurrent(&lockstep_spec(clients, seed));

    ScheduleSuite {
        clients,
        rounds: spec.rounds,
        workload: format!("{}x{}kB", spec.files_per_batch, spec.file_size / 1024),
        think: spec.think.to_string(),
        arrival_jitter_s: spec.arrival_jitter.as_secs_f64(),
        activation: spec.activation,
        sync_rounds: run.total_synced_rounds(),
        idle_rounds: run.total_idle_rounds(),
        startup_delay: run.startup_delay_stats(),
        sync_hist: run.sync_duration_histogram().summary(),
        completion: run.completion_stats(),
        first_sync_spread_s: run.first_sync_spread_secs(),
        concurrency_peak: run.sync_concurrency_peak(),
        lockstep_concurrency_peak: lockstep.sync_concurrency_peak(),
        background_wire_bytes: run.total_background_wire_bytes(),
        payload_wire_bytes: run.total_payload_wire_bytes(),
        per_client_rounds: run
            .clients
            .iter()
            .map(|c| (c.user.clone(), c.synced_rounds(), c.idle_rounds))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The canonical 10-client suite, computed once (two fleet runs) and
    /// shared by the assertions below to keep debug test time in check.
    fn canonical() -> &'static ScheduleSuite {
        static SUITE: OnceLock<ScheduleSuite> = OnceLock::new();
        SUITE.get_or_init(|| run_schedule(10, 0x42))
    }

    #[test]
    fn temporal_fleet_mixes_sync_and_idle_rounds() {
        let suite = canonical();
        assert_eq!(suite.clients, 10);
        assert_eq!(suite.rounds, 6);
        assert!(suite.sync_rounds > 0);
        assert!(suite.idle_rounds > 0, "p=0.7 over 60 rounds must idle somewhere");
        assert_eq!(suite.sync_rounds + suite.idle_rounds, 60);
        let fraction = suite.idle_fraction();
        assert!((0.1..0.6).contains(&fraction), "idle fraction {fraction} far from 0.3");
        assert_eq!(suite.per_client_rounds.len(), 10);
        for (user, synced, idle) in &suite.per_client_rounds {
            assert_eq!(synced + idle, 6, "{user} must account for all six rounds");
        }
    }

    #[test]
    fn jitter_spreads_arrivals_and_lowers_the_concurrency_peak() {
        let suite = canonical();
        assert!(
            suite.first_sync_spread_s > 1.0,
            "20s jitter must pull first syncs apart, spread {}",
            suite.first_sync_spread_s
        );
        assert!(suite.concurrency_peak >= 1);
        assert!(
            suite.concurrency_peak <= suite.lockstep_concurrency_peak,
            "jitter + idling ({}) cannot out-pile the lock-step barrier ({})",
            suite.concurrency_peak,
            suite.lockstep_concurrency_peak
        );
        assert!(suite.lockstep_concurrency_peak >= suite.clients / 2);
    }

    #[test]
    fn background_and_payload_bytes_both_flow() {
        let suite = canonical();
        assert!(suite.background_wire_bytes > 0, "logins and idle polls must signal");
        assert!(suite.payload_wire_bytes > 0, "synced batches must move payload");
        let fraction = suite.background_fraction();
        assert!((0.0..1.0).contains(&fraction));
        assert!(fraction > 0.0);
        // Payload dominates: batches are 256 kB against ~kB-scale polls.
        assert!(fraction < 0.5, "background fraction {fraction} should not dominate");
    }

    #[test]
    fn startup_delay_and_completion_distributions_are_populated() {
        let suite = canonical();
        assert_eq!(suite.startup_delay.count, suite.sync_rounds);
        assert!(suite.startup_delay.mean > 0.0);
        assert!(suite.completion.count > 0);
        assert!(suite.completion.count <= suite.clients);
        assert!(suite.completion.mean > 0.0);
    }

    #[test]
    fn suite_is_deterministic_for_a_seed() {
        assert_eq!(run_schedule(4, 7), run_schedule(4, 7));
        assert_ne!(run_schedule(4, 7), run_schedule(4, 8));
    }

    #[test]
    fn lockstep_control_really_is_lockstep() {
        let spec = lockstep_spec(4, 9);
        assert!(spec.is_lockstep());
        assert!(spec.schedule().is_lockstep());
        assert!(!schedule_spec(4, 9).is_lockstep());
    }
}
