//! Fleet-scale suite: population-level server load from 100k+ lightweight
//! clients.
//!
//! The paper's server-side findings (§4.3's inter-user deduplication,
//! §5's completion behaviour under load) are claims about *populations* —
//! what the provider sees when very many clients hit it at once — but the
//! full-fidelity fleet tops out at tens of clients. This suite drives the
//! lightweight fleet-scale runner ([`cloudsim_services::scale`]) instead:
//! compact per-client state records on the discrete-event heap, seeded
//! commit instants over a virtual horizon, metadata-only chunk commits into
//! the sharded store, analytic per-link transfer times. What it reports is
//! the provider's view:
//!
//! * **commits per virtual second** over the population's active span,
//! * the **concurrency high-water mark** — most transfers in flight at any
//!   virtual instant,
//! * the **population-scale dedup ratio** of the shared content pool,
//! * the **server load curve** — commits bucketed over the horizon.
//!
//! Everything is a pure function of `(clients, seed)`, so the suite is
//! gated as `fleetscale.*` metrics and the CI fleet-scale determinism leg
//! `cmp`s two fresh JSON dumps byte for byte.

use cloudsim_services::capture::{replay_concurrent, FleetCapture, ReplayMix};
use cloudsim_services::scale::{run_scale_concurrent, ScaleRun, ScaleSpec};
use cloudsim_trace::{HistogramSummary, SimDuration};
use serde::Serialize;

/// Buckets of the reported server load curve.
pub const LOAD_CURVE_BUCKETS: usize = 12;

/// The canonical fleet-scale population: `clients` lightweight uploaders,
/// two commits each of four 64 kB files (half from the population-wide
/// shared pool), spread over one virtual hour across all four link presets.
pub fn scale_spec(clients: usize, seed: u64) -> ScaleSpec {
    ScaleSpec::new(clients).with_seed(seed)
}

/// The fleet-scale suite's results.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetScaleSuite {
    /// Clients the run drove.
    pub clients: usize,
    /// Commits each client performed.
    pub commits_per_client: usize,
    /// Per-commit workload label (e.g. "4x64kB").
    pub workload: String,
    /// The virtual horizon commit instants were drawn over, in seconds.
    pub horizon_s: f64,
    /// Total commits across the population.
    pub commits: u64,
    /// Total file manifests committed.
    pub files: u64,
    /// Plaintext bytes committed, in MB.
    pub logical_mb: f64,
    /// Bytes the server physically stores after inter-user dedup, in MB.
    pub physical_mb: f64,
    /// Population-scale inter-user dedup ratio.
    pub dedup_ratio: f64,
    /// The span between the first transfer's start and the last transfer's
    /// end, in virtual seconds.
    pub virtual_span_s: f64,
    /// Commits per virtual second over the active span.
    pub commits_per_vsec: f64,
    /// Most transfers in flight at any virtual instant.
    pub concurrency_peak: usize,
    /// Commits bucketed by start instant into [`LOAD_CURVE_BUCKETS`] equal
    /// slices of the active span.
    pub load_curve: Vec<u64>,
    /// Distribution of per-commit transfer durations across the population.
    pub transfer_hist: HistogramSummary,
    /// Host wall-clock seconds the run took. The one non-deterministic
    /// field: excluded from gate metrics and from JSON serialisation (the
    /// CI determinism leg `cmp`s two dumps byte for byte), reported in the
    /// text table for the "100k clients in minutes" claim.
    #[serde(skip)]
    pub wall_secs: f64,
}

/// Assembles the suite from a finished run and its workload description —
/// the one code path both the spec-derived runner and the capture replay
/// go through, so a same-mix replay derives every field with the exact
/// same arithmetic and reproduces the suite bit for bit.
pub(crate) fn assemble_suite(
    commits_per_client: usize,
    files_per_commit: usize,
    file_size: u64,
    horizon: SimDuration,
    run: &ScaleRun,
) -> FleetScaleSuite {
    let aggregate = run.aggregate();
    FleetScaleSuite {
        clients: run.clients,
        commits_per_client,
        workload: format!("{}x{}kB", files_per_commit, file_size / 1024),
        horizon_s: horizon.as_secs_f64(),
        commits: run.commits,
        files: run.files,
        logical_mb: run.logical_bytes as f64 / 1e6,
        physical_mb: aggregate.physical_bytes as f64 / 1e6,
        dedup_ratio: run.dedup_ratio(),
        virtual_span_s: run.virtual_span_secs(),
        commits_per_vsec: run.commits_per_vsec(),
        concurrency_peak: run.concurrency_peak(),
        load_curve: run.load_curve(LOAD_CURVE_BUCKETS),
        transfer_hist: run.transfer_histogram().summary(),
        wall_secs: run.elapsed.as_secs_f64(),
    }
}

/// Runs the canonical fleet-scale population with one worker per host core
/// and assembles the suite.
pub fn run_fleet_scale(clients: usize, seed: u64) -> FleetScaleSuite {
    let spec = scale_spec(clients, seed);
    let run = run_scale_concurrent(&spec);
    assemble_suite(
        spec.commits_per_client,
        spec.files_per_commit,
        spec.file_size,
        spec.horizon,
        &run,
    )
}

/// Re-drives a parsed capture with one worker per host core and assembles
/// the suite from the replayed run. With [`ReplayMix::Original`] the result
/// is bit-identical to [`run_fleet_scale`] on the captured spec (the CI
/// replay-fidelity leg `cmp`s the two JSON dumps); a link or profile remap
/// is the paper-style A/B comparison over the same recorded workload.
pub fn replay_fleet_scale(
    capture: &FleetCapture,
    mix: &ReplayMix,
) -> Result<FleetScaleSuite, String> {
    let run = replay_concurrent(capture, mix)?;
    Ok(assemble_suite(
        capture.commits_per_client,
        capture.files_per_commit,
        capture.file_size,
        capture.horizon,
        &run,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The canonical 2000-client suite, computed once and shared by the
    /// assertions below to keep debug test time in check.
    fn canonical() -> &'static FleetScaleSuite {
        static SUITE: OnceLock<FleetScaleSuite> = OnceLock::new();
        SUITE.get_or_init(|| run_fleet_scale(2000, 0x5CA1E))
    }

    #[test]
    fn population_level_load_metrics_are_sane() {
        let suite = canonical();
        assert_eq!(suite.clients, 2000);
        assert_eq!(suite.commits, 4000);
        assert_eq!(suite.files, 16_000);
        assert!(suite.logical_mb > suite.physical_mb, "the shared pool must dedup");
        assert!(suite.dedup_ratio > 1.5 && suite.dedup_ratio < 2.1);
        assert!(suite.virtual_span_s > 0.0 && suite.virtual_span_s <= suite.horizon_s * 1.1);
        assert!(suite.commits_per_vsec > 0.5, "4000 commits over an hour exceed 1/s");
        assert!(suite.concurrency_peak > 1, "2000 clients over an hour must overlap");
        assert!(suite.concurrency_peak <= suite.clients);
    }

    #[test]
    fn load_curve_spreads_over_the_horizon() {
        let suite = canonical();
        assert_eq!(suite.load_curve.len(), LOAD_CURVE_BUCKETS);
        assert_eq!(suite.load_curve.iter().sum::<u64>(), suite.commits);
        let populated = suite.load_curve.iter().filter(|&&c| c > 0).count();
        assert!(populated == LOAD_CURVE_BUCKETS, "uniform draws must fill every bucket");
    }

    #[test]
    fn transfer_histogram_summarises_every_commit() {
        let suite = canonical();
        assert_eq!(suite.transfer_hist.count, suite.commits);
        assert!(suite.transfer_hist.p50_s > 0.0);
        assert!(suite.transfer_hist.p50_s <= suite.transfer_hist.p999_s);
    }

    #[test]
    fn same_mix_replay_reproduces_the_suite_bit_for_bit() {
        use cloudsim_services::capture::{parse_capture, render_capture};

        let spec = scale_spec(300, 7);
        let original = run_fleet_scale(300, 7);
        let capture = parse_capture(&render_capture(&spec)).expect("capture must parse");
        let replayed = replay_fleet_scale(&capture, &ReplayMix::Original).expect("replay");

        assert_eq!(replayed.clients, original.clients);
        assert_eq!(replayed.commits_per_client, original.commits_per_client);
        assert_eq!(replayed.workload, original.workload);
        assert_eq!(replayed.commits, original.commits);
        assert_eq!(replayed.files, original.files);
        assert_eq!(replayed.load_curve, original.load_curve);
        assert_eq!(replayed.concurrency_peak, original.concurrency_peak);
        for (a, b) in [
            (replayed.horizon_s, original.horizon_s),
            (replayed.logical_mb, original.logical_mb),
            (replayed.physical_mb, original.physical_mb),
            (replayed.dedup_ratio, original.dedup_ratio),
            (replayed.virtual_span_s, original.virtual_span_s),
            (replayed.commits_per_vsec, original.commits_per_vsec),
            (replayed.transfer_hist.p50_s, original.transfer_hist.p50_s),
            (replayed.transfer_hist.p999_s, original.transfer_hist.p999_s),
        ] {
            assert_eq!(a.to_bits(), b.to_bits(), "replayed {a} != original {b}");
        }
        // The serialised reports must be byte-identical too (`wall_secs` is
        // skipped) — the exact property the CI replay-fidelity leg `cmp`s.
        assert_eq!(
            crate::report::Report::to_json(&replayed),
            crate::report::Report::to_json(&original),
        );
    }

    #[test]
    fn cross_mix_replay_preserves_the_workload_but_not_the_timing() {
        use cloudsim_services::capture::{parse_capture, render_capture};
        use cloudsim_services::AccessLink;

        let spec = scale_spec(300, 7);
        let original = run_fleet_scale(300, 7);
        let capture = parse_capture(&render_capture(&spec)).expect("capture must parse");
        let remapped = replay_fleet_scale(&capture, &ReplayMix::Link(AccessLink::adsl()))
            .expect("link remap replay");

        // Same recorded workload: volume and dedup are invariant.
        assert_eq!(remapped.commits, original.commits);
        assert_eq!(remapped.files, original.files);
        assert_eq!(remapped.logical_mb.to_bits(), original.logical_mb.to_bits());
        assert_eq!(remapped.dedup_ratio.to_bits(), original.dedup_ratio.to_bits());
        // Different mix: everyone on ADSL stretches the timeline.
        assert!(remapped.transfer_hist.p50_s > original.transfer_hist.p50_s);
        assert_ne!(remapped.virtual_span_s.to_bits(), original.virtual_span_s.to_bits());
    }

    #[test]
    fn suite_is_deterministic_for_a_seed() {
        let a = run_fleet_scale(300, 7);
        let b = run_fleet_scale(300, 7);
        // `wall_secs` is host time; everything else must be bit-identical.
        assert_eq!(
            (a.commits, a.load_curve.clone(), a.concurrency_peak),
            (b.commits, b.load_curve.clone(), b.concurrency_peak)
        );
        assert_eq!(a.commits_per_vsec.to_bits(), b.commits_per_vsec.to_bits());
        assert_eq!(a.dedup_ratio.to_bits(), b.dedup_ratio.to_bits());
        assert_eq!(a.virtual_span_s.to_bits(), b.virtual_span_s.to_bits());
        assert_ne!(run_fleet_scale(300, 8).load_curve, a.load_curve);
    }
}
