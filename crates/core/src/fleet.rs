//! Fleet scaling benchmark: the multi-tenant scenario family.
//!
//! The paper's testbed drives each service from a single test computer; the
//! fleet suite scales that methodology out — K concurrent simulated users
//! (1 → 2 → 8 → 32) committing into one shared sharded object store — and
//! reports the provider-side metrics a single client cannot observe:
//! aggregate goodput, the per-client completion-time distribution, and the
//! server-side inter-user deduplication ratio as a function of fleet size.

use cloudsim_services::fleet::{run_fleet, FleetRun, FleetSpec};
use cloudsim_services::ServiceProfile;
use cloudsim_storage::ObjectStore;
use cloudsim_trace::series::SampleStats;
use serde::Serialize;

/// One fleet size of the scaling suite.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetScalingRow {
    /// Number of concurrent clients.
    pub clients: usize,
    /// Distribution of per-client completion times (simulated seconds).
    pub completion_secs: SampleStats,
    /// Aggregate fleet goodput in bits per simulated second.
    pub aggregate_goodput_bps: f64,
    /// Server-side inter-user dedup ratio (referenced / physical bytes).
    pub dedup_ratio: f64,
    /// Bytes the server physically stores after inter-user dedup.
    pub physical_bytes: u64,
    /// Bytes the server would store without inter-user dedup.
    pub referenced_bytes: u64,
    /// Payload bytes the clients uploaded (after client-side capabilities).
    pub uploaded_payload: u64,
    /// Host wall-clock seconds the run took (not deterministic; excluded
    /// from regression baselines).
    pub wall_secs: f64,
}

impl FleetScalingRow {
    /// Builds a row from a finished fleet run.
    pub fn from_run(run: &FleetRun) -> FleetScalingRow {
        let agg = run.aggregate();
        FleetScalingRow {
            clients: run.clients.len(),
            completion_secs: run.completion_stats(),
            aggregate_goodput_bps: run.aggregate_goodput_bps(),
            dedup_ratio: run.dedup_ratio(),
            physical_bytes: agg.physical_bytes,
            referenced_bytes: agg.referenced_bytes,
            uploaded_payload: run.total_uploaded_payload(),
            wall_secs: run.elapsed.as_secs_f64(),
        }
    }
}

/// The scaling suite: one row per fleet size.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetScalingSuite {
    /// The service the fleet ran.
    pub service: String,
    /// Per-batch workload label (e.g. "10x64kB").
    pub workload: String,
    /// Fraction of each batch drawn from the fleet-wide shared pool.
    pub shared_fraction: f64,
    /// One row per fleet size, in ascending client order.
    pub rows: Vec<FleetScalingRow>,
}

impl FleetScalingSuite {
    /// The row for a given fleet size.
    pub fn row(&self, clients: usize) -> Option<&FleetScalingRow> {
        self.rows.iter().find(|r| r.clients == clients)
    }
}

/// The default fleet sizes of the scaling suite.
pub const FLEET_SIZES: [usize; 4] = [1, 2, 8, 32];

/// The canonical fleet workload of the scaling suite for a service: ten
/// 64 kB files per batch, two batches per client, half the files shared.
pub fn fleet_spec(profile: &ServiceProfile, clients: usize, seed: u64) -> FleetSpec {
    FleetSpec::new(profile.clone(), clients)
        .with_batches(2)
        .with_files(10, 64 * 1024)
        .with_seed(seed)
}

/// Runs the scaling suite for one service over the given fleet sizes, each
/// fleet on one OS thread per client against a fresh sharded store.
pub fn run_fleet_scaling(
    profile: &ServiceProfile,
    sizes: &[usize],
    seed: u64,
) -> FleetScalingSuite {
    let rows = sizes
        .iter()
        .map(|&clients| {
            let spec = fleet_spec(profile, clients, seed);
            let workers = cloudsim_parallel::available_workers().clamp(1, clients);
            let run = run_fleet(&spec, ObjectStore::new(), workers);
            FleetScalingRow::from_run(&run)
        })
        .collect();
    let spec = fleet_spec(profile, 1, seed);
    FleetScalingSuite {
        service: profile.name().to_string(),
        workload: format!(
            "{}x{}kB x{} rounds",
            spec.files_per_batch,
            spec.file_size / 1024,
            spec.rounds
        ),
        shared_fraction: spec.shared_fraction,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_suite_reports_every_fleet_size() {
        let suite = run_fleet_scaling(&ServiceProfile::dropbox(), &[1, 2, 4], 99);
        assert_eq!(suite.rows.len(), 3);
        assert_eq!(suite.service, "Dropbox");
        assert!(suite.row(4).is_some());
        assert!(suite.row(32).is_none());
        for row in &suite.rows {
            assert_eq!(row.completion_secs.count, row.clients);
            assert!(row.aggregate_goodput_bps > 0.0);
            assert!(row.dedup_ratio >= 1.0);
            assert!(row.physical_bytes > 0);
        }
        // A single client cannot trigger inter-user dedup; a 4-client fleet
        // with a shared pool must.
        assert!(suite.row(1).unwrap().dedup_ratio <= suite.row(4).unwrap().dedup_ratio);
        assert!(suite.row(4).unwrap().dedup_ratio > 1.0);
    }

    #[test]
    fn scaling_rows_are_deterministic_for_a_seed() {
        let a = run_fleet_scaling(&ServiceProfile::wuala(), &[2], 7);
        let b = run_fleet_scaling(&ServiceProfile::wuala(), &[2], 7);
        // Everything except wall-clock must reproduce bit-for-bit.
        let (mut ra, mut rb) = (a.rows[0].clone(), b.rows[0].clone());
        ra.wall_secs = 0.0;
        rb.wall_secs = 0.0;
        assert_eq!(ra, rb);
    }
}
