//! Fault-injection suite: identical failure schedules across link presets
//! and retry policies.
//!
//! The paper's benchmarks (§5) all assume the access link stays up for the
//! whole experiment — yet the home networks the paper profiles (§6) drop
//! and recover constantly. This suite measures what recovery machinery is
//! worth when they do: for every access-link preset it derives a seeded
//! outage schedule scaled to that link's own transfer window (a pure
//! function of `(spec, seed)`, so every retry policy faces the *identical*
//! failure sequence), then runs the same upload batch and the same restore
//! pull through each policy plus a fault-free control. It reports, per
//! `link × policy` cell:
//!
//! * **retry counts and virtual backoff time** — what the policy spent,
//! * **wasted-bytes ratio** — wire bytes that bought no durable progress
//!   (in-flight losses plus abandoned partial transfers) over the planned
//!   payload,
//! * **completion-time inflation vs the fault-free control** — the latency
//!   price of the outages under that policy,
//! * **resume efficiency** — the fraction of interruption-touched bytes
//!   the sessions salvaged instead of re-driving, and the SHA-256 verdicts
//!   of every reassembled restore.
//!
//! Everything is seed-deterministic, so the suite is part of the CI
//! bench-regression gate (`faults.*` metrics) and the `fault-determinism`
//! CI leg can `cmp` two fresh `repro faults` dumps byte for byte.

use cloudsim_net::Simulator;
use cloudsim_services::{
    AccessLink, FaultSchedule, FaultSpec, FaultStats, RetryConfig, ServiceProfile, SyncClient,
};
use cloudsim_storage::{ObjectStore, UploadPipeline};
use cloudsim_trace::{HistogramSummary, LatencyHistogram, SimDuration, SimTime};
use cloudsim_workload::seed::derive_seed;
use cloudsim_workload::{BatchSpec, FileKind, GeneratedFile};
use serde::Serialize;

/// Salt for the per-link outage-schedule draws.
const FAULT_SALT: u64 = 0x00FA_7A17;
/// Salt for the per-cell retry-jitter seeds.
const RETRY_SALT: u64 = 0x00FA_7A18;

/// The retry policies every link preset runs, in order: the no-recovery
/// control and the standard exponential backoff.
pub fn fault_policies() -> Vec<RetryConfig> {
    vec![RetryConfig::None, RetryConfig::standard_exponential()]
}

/// One `link × policy` cell: the same batch and the same outage schedules
/// as every other cell of the row, recovered under one policy.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultPolicyCell {
    /// Stable policy name (`none`, `exponential`).
    pub policy: String,
    /// Whether every chunk of the upload committed.
    pub sync_completed: bool,
    /// Payload bytes the upload durably committed.
    pub committed_payload: u64,
    /// Chunks abandoned after the retry budget ran out.
    pub abandoned_chunks: usize,
    /// Upload duration (sync start → last payload byte) in seconds.
    pub sync_secs: f64,
    /// Upload duration over the fault-free control's.
    pub sync_inflation: f64,
    /// Whether every file restored and validated.
    pub restore_completed: bool,
    /// Files reconstructed byte-identically.
    pub files_restored: usize,
    /// Files abandoned mid-restore.
    pub files_abandoned: usize,
    /// Restore duration in seconds.
    pub restore_secs: f64,
    /// Restore duration over the fault-free control's.
    pub restore_inflation: f64,
    /// Merged recovery accounting of both directions.
    pub stats: FaultStats,
}

/// One access link's row: its seeded schedules and every policy cell.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultLinkRow {
    /// Stable link preset name.
    pub link: String,
    /// Outage windows in the upload-direction schedule.
    pub upload_outages: usize,
    /// Total upload-direction downtime in seconds.
    pub upload_downtime_s: f64,
    /// Outage windows in the restore-direction schedule.
    pub restore_outages: usize,
    /// Fault-free upload duration in seconds (the inflation denominator).
    pub control_sync_secs: f64,
    /// Fault-free restore duration in seconds.
    pub control_restore_secs: f64,
    /// Payload bytes the planner scheduled for upload.
    pub planned_payload: u64,
    /// One cell per retry policy, in [`fault_policies`] order.
    pub cells: Vec<FaultPolicyCell>,
}

impl FaultLinkRow {
    /// The cell of one policy, by stable name.
    pub fn cell(&self, policy: &str) -> Option<&FaultPolicyCell> {
        self.cells.iter().find(|c| c.policy == policy)
    }
}

/// The fault-injection suite's results.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultsSuite {
    /// Master seed of the run.
    pub seed: u64,
    /// Per-batch workload label (e.g. "4x192kB").
    pub workload: String,
    /// Policy names, in cell order.
    pub policies: Vec<String>,
    /// Distribution of every backoff wait slept across all `link × policy`
    /// cells, both directions. Only retrying policies contribute.
    pub backoff_hist: HistogramSummary,
    /// One row per access-link preset, in [`AccessLink::all`] order.
    pub per_link: Vec<FaultLinkRow>,
}

impl FaultsSuite {
    /// The row of one link, by preset name.
    pub fn link(&self, name: &str) -> Option<&FaultLinkRow> {
        self.per_link.iter().find(|r| r.link == name)
    }

    /// Merged recovery accounting of one policy across every link.
    pub fn stats_for(&self, policy: &str) -> FaultStats {
        let mut stats = FaultStats::default();
        for row in &self.per_link {
            if let Some(cell) = row.cell(policy) {
                stats.merge(&cell.stats);
            }
        }
        stats
    }

    /// Fraction of `link × direction` recoveries the policy completed.
    pub fn completed_fraction(&self, policy: &str) -> f64 {
        let mut total = 0usize;
        let mut done = 0usize;
        for row in &self.per_link {
            if let Some(cell) = row.cell(policy) {
                total += 2;
                done += usize::from(cell.sync_completed) + usize::from(cell.restore_completed);
            }
        }
        if total > 0 {
            done as f64 / total as f64
        } else {
            0.0
        }
    }

    /// Total wire bytes one policy wasted over the payload it was asked to
    /// move, across every link — the headline cost of *not* recovering.
    pub fn wasted_ratio(&self, policy: &str) -> f64 {
        let planned: u64 = self.per_link.iter().map(|r| r.planned_payload).sum();
        if planned > 0 {
            self.stats_for(policy).wasted_bytes as f64 / planned as f64
        } else {
            0.0
        }
    }
}

/// A fresh single-user client of the canonical profile behind `link`.
fn client_on(link: &AccessLink, store: ObjectStore, user: &str) -> SyncClient {
    SyncClient::for_user_on_link(
        ServiceProfile::dropbox(),
        UploadPipeline::sequential(),
        store,
        user,
        link,
    )
}

/// Drives one faulted upload of `batch` behind `link` on a fresh store.
fn run_sync(
    link: &AccessLink,
    batch: &[GeneratedFile],
    faults: &FaultSchedule,
    retry: RetryConfig,
    seed: u64,
) -> cloudsim_services::FaultedSyncOutcome {
    let mut sim = Simulator::new(11);
    let mut owner = client_on(link, ObjectStore::new(), "owner");
    let t0 = owner.login(&mut sim, SimTime::ZERO);
    owner.sync_batch_faulted(
        &mut sim,
        batch,
        t0 + SimDuration::from_secs(5),
        faults,
        retry.policy().as_ref(),
        seed,
    )
}

/// Drives one faulted restore of `owner`'s namespace out of `source`.
fn run_restore_pull(
    link: &AccessLink,
    source: &ObjectStore,
    faults: &FaultSchedule,
    retry: RetryConfig,
    seed: u64,
) -> cloudsim_services::FaultedRestoreOutcome {
    let mut sim = Simulator::new(12);
    let mut puller = client_on(link, source.clone(), "puller");
    let login = puller.login(&mut sim, SimTime::ZERO);
    puller.restore_user_faulted(
        &mut sim,
        "owner",
        login + SimDuration::from_secs(1),
        faults,
        retry.policy().as_ref(),
        seed,
    )
}

/// The outage-schedule spec for a transfer window of `span`: three outages
/// drawn inside the window, each lasting between a tenth and a third of it —
/// scaled to the link, so a campus transfer and a 3G transfer both get cut
/// mid-flight rather than missed entirely.
fn fault_spec_for(span: SimDuration) -> FaultSpec {
    let micros = span.as_micros().max(10);
    FaultSpec {
        horizon: SimDuration::from_micros(micros),
        outages: 3,
        min_outage: SimDuration::from_micros((micros / 10).max(1)),
        max_outage: SimDuration::from_micros((micros / 3).max(1)),
    }
}

/// Runs the canonical fault scenario — four link presets × the retry
/// policies, identical seeded failure schedules per preset — and assembles
/// the suite.
pub fn run_faults(seed: u64) -> FaultsSuite {
    let files = 4usize;
    let file_size = 192 * 1024usize;
    let batch = BatchSpec::new(files, file_size, FileKind::RandomBinary).generate(seed);
    let policies = fault_policies();
    let mut backoff = LatencyHistogram::new();

    let per_link = AccessLink::all()
        .iter()
        .enumerate()
        .map(|(li, link)| {
            // Fault-free controls: pin the inflation denominators, the
            // transfer windows the schedules are scaled to, and a cleanly
            // populated store for the restore cells to pull from.
            let control_store = ObjectStore::new();
            let (control_sync, control_restore) = {
                let mut sim = Simulator::new(11);
                let mut owner = client_on(link, control_store.clone(), "owner");
                let t0 = owner.login(&mut sim, SimTime::ZERO);
                let sync = owner.sync_batch_faulted(
                    &mut sim,
                    &batch,
                    t0 + SimDuration::from_secs(5),
                    &FaultSchedule::NONE,
                    RetryConfig::None.policy().as_ref(),
                    seed,
                );
                let restore = run_restore_pull(
                    link,
                    &control_store,
                    &FaultSchedule::NONE,
                    RetryConfig::None,
                    seed,
                );
                (sync, restore)
            };
            let control_sync_secs = control_sync
                .outcome
                .completed_at
                .saturating_since(control_sync.outcome.sync_started_at)
                .as_secs_f64();
            let control_restore_secs = control_restore
                .outcome
                .completed_at
                .saturating_since(control_restore.outcome.requested_at)
                .as_secs_f64();

            // The identical failure schedules every policy of this row
            // faces: pure functions of (spec, seed), pinned onto the
            // control's transfer windows.
            let sync_span = control_sync
                .outcome
                .completed_at
                .saturating_since(control_sync.outcome.sync_started_at);
            let restore_span = control_restore
                .outcome
                .completed_at
                .saturating_since(control_restore.outcome.requested_at);
            let up_faults = FaultSchedule::generate(
                &fault_spec_for(sync_span),
                derive_seed(seed, FAULT_SALT, li as u64, 0),
            )
            .shifted(control_sync.outcome.sync_started_at.saturating_since(SimTime::ZERO));
            let down_faults = FaultSchedule::generate(
                &fault_spec_for(restore_span),
                derive_seed(seed, FAULT_SALT, li as u64, 1),
            )
            .shifted(control_restore.outcome.requested_at.saturating_since(SimTime::ZERO));

            let cells = policies
                .iter()
                .enumerate()
                .map(|(pi, retry)| {
                    let retry_seed = derive_seed(seed, RETRY_SALT, li as u64, pi as u64);
                    let sync = run_sync(link, &batch, &up_faults, *retry, retry_seed);
                    let restore = run_restore_pull(
                        link,
                        &control_store,
                        &down_faults,
                        *retry,
                        retry_seed ^ 0xD0_5E,
                    );
                    let sync_secs = sync
                        .outcome
                        .completed_at
                        .saturating_since(sync.outcome.sync_started_at)
                        .as_secs_f64();
                    let restore_secs = restore
                        .outcome
                        .completed_at
                        .saturating_since(restore.outcome.requested_at)
                        .as_secs_f64();
                    let mut stats = sync.stats;
                    stats.merge(&restore.stats);
                    backoff.merge(&sync.backoff_waits);
                    backoff.merge(&restore.backoff_waits);
                    FaultPolicyCell {
                        policy: retry.name().to_string(),
                        sync_completed: sync.completed,
                        committed_payload: sync.committed_payload,
                        abandoned_chunks: sync.abandoned_chunks,
                        sync_secs,
                        sync_inflation: sync_secs / control_sync_secs.max(f64::EPSILON),
                        restore_completed: restore.completed,
                        files_restored: restore.outcome.files_restored,
                        files_abandoned: restore.files_abandoned,
                        restore_secs,
                        restore_inflation: restore_secs / control_restore_secs.max(f64::EPSILON),
                        stats,
                    }
                })
                .collect();

            FaultLinkRow {
                link: link.name.to_string(),
                upload_outages: up_faults.windows.len(),
                upload_downtime_s: up_faults.total_downtime().as_secs_f64(),
                restore_outages: down_faults.windows.len(),
                control_sync_secs,
                control_restore_secs,
                planned_payload: control_sync.outcome.uploaded_payload,
                cells,
            }
        })
        .collect();

    FaultsSuite {
        seed,
        workload: format!("{}x{}kB", files, file_size / 1024),
        policies: policies.iter().map(|p| p.name().to_string()).collect(),
        backoff_hist: backoff.summary(),
        per_link,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The canonical suite, computed once (4 links × 3 policies × 2
    /// directions of single-client runs) and shared by the assertions.
    fn canonical() -> &'static FaultsSuite {
        static SUITE: OnceLock<FaultsSuite> = OnceLock::new();
        SUITE.get_or_init(|| run_faults(0x42))
    }

    #[test]
    fn every_link_faces_outages_and_every_policy_reports_a_cell() {
        let suite = canonical();
        assert_eq!(suite.per_link.len(), 4);
        assert_eq!(suite.policies, vec!["none".to_string(), "exponential".to_string()]);
        for row in &suite.per_link {
            assert!(row.upload_outages > 0, "{}", row.link);
            assert!(row.restore_outages > 0, "{}", row.link);
            assert!(row.upload_downtime_s > 0.0, "{}", row.link);
            assert!(row.control_sync_secs > 0.0, "{}", row.link);
            assert!(row.control_restore_secs > 0.0, "{}", row.link);
            assert!(row.planned_payload > 0, "{}", row.link);
            assert_eq!(row.cells.len(), 2, "{}", row.link);
            for cell in &row.cells {
                assert!(
                    cell.stats.interruptions > 0,
                    "{}/{}: schedules scaled to the window must cut",
                    row.link,
                    cell.policy
                );
            }
        }
    }

    #[test]
    fn backoff_histogram_counts_exactly_the_retrying_policy_waits() {
        let suite = canonical();
        let hist = &suite.backoff_hist;
        // `none` never sleeps, so every recorded wait is an exponential
        // retry — the histogram and the retry counter must agree.
        assert_eq!(hist.count, suite.stats_for("exponential").retries);
        assert!(hist.count > 0);
        // The standard policy's jittered base wait stays above a second.
        assert!(hist.p50_s >= 1.0, "p50 {} below the base backoff", hist.p50_s);
        assert!(hist.p50_s <= hist.p90_s && hist.p90_s <= hist.p999_s);
    }

    #[test]
    fn exponential_backoff_recovers_everything_the_control_uploaded() {
        let suite = canonical();
        for row in &suite.per_link {
            let exp = row.cell("exponential").expect("exponential cell");
            assert!(exp.sync_completed, "{}", row.link);
            assert!(exp.restore_completed, "{}", row.link);
            assert_eq!(exp.committed_payload, row.planned_payload, "{}", row.link);
            assert_eq!(exp.abandoned_chunks, 0, "{}", row.link);
            assert_eq!(exp.files_abandoned, 0, "{}", row.link);
            assert!(exp.stats.retries > 0, "{}", row.link);
            assert_eq!(exp.stats.checksum_failures, 0, "{}", row.link);
            assert!(
                exp.sync_inflation >= 1.0,
                "{}: recovery cannot beat the fault-free clock, got {}",
                row.link,
                exp.sync_inflation
            );
        }
        assert_eq!(suite.completed_fraction("exponential"), 1.0);
    }

    #[test]
    fn no_retry_abandons_and_commits_strictly_less_under_the_same_schedule() {
        let suite = canonical();
        let mut abandoned_somewhere = false;
        for row in &suite.per_link {
            let none = row.cell("none").expect("none cell");
            let exp = row.cell("exponential").expect("exponential cell");
            assert_eq!(none.stats.retries, 0, "{}", row.link);
            assert!(none.committed_payload <= exp.committed_payload, "{}", row.link);
            abandoned_somewhere |= none.abandoned_chunks > 0 || none.files_abandoned > 0;
        }
        assert!(abandoned_somewhere, "three cuts per window must break no-retry somewhere");
        assert!(suite.completed_fraction("none") < 1.0);
        assert!(suite.wasted_ratio("none") > 0.0);
    }

    #[test]
    fn resume_salvages_bytes_and_restores_validate_end_to_end() {
        let suite = canonical();
        let exp = suite.stats_for("exponential");
        assert!(exp.salvaged_bytes > 0, "resumable sessions must salvage acked bytes");
        assert!(exp.resume_efficiency() > 0.0);
        assert!(!exp.backoff_wait.is_zero(), "backoff must spend virtual time");
        // Every link's restore validated all four files.
        assert_eq!(exp.checksums_verified, 4 * 4);
        assert_eq!(exp.checksum_failures, 0);
    }

    #[test]
    fn suite_is_deterministic_for_a_seed() {
        assert_eq!(run_faults(7), run_faults(7));
        assert_ne!(run_faults(7), run_faults(8));
    }
}
