//! Heterogeneous fleet scenarios: the profiles × links × churn matrix.
//!
//! The paper's central finding is that no service wins everywhere — the best
//! choice depends on the workload *and* the client's network (§5, §6). The
//! single-computer testbed can only change one axis at a time; this suite
//! runs the whole matrix at once: a fleet whose slots mix service profiles
//! (Dropbox/SkyDrive/Google Drive) and access links (campus/fibre/ADSL/3G),
//! with a seeded churn schedule (clients joining and leaving mid-run) and a
//! garbage-collected store. It reports the distributions a provider would
//! care about — per-profile completion times, per-link goodput, the dedup
//! ratio after churn — and compares the two GC policies' reclamation.
//!
//! Everything is a pure function of the seed, so the whole suite is part of
//! the CI bench-regression gate (`hetero.*` and `gc.*` metrics).

use cloudsim_services::fleet::{run_fleet_concurrent, FleetRun, FleetSpec};
use cloudsim_services::{AccessLink, GcPolicy, ServiceProfile};
use cloudsim_trace::series::SampleStats;
use serde::Serialize;

/// The service mix of the canonical heterogeneous scenario, in slot order.
pub fn hetero_profiles() -> Vec<ServiceProfile> {
    vec![ServiceProfile::dropbox(), ServiceProfile::skydrive(), ServiceProfile::google_drive()]
}

/// The link mix of the canonical heterogeneous scenario, in slot order. Four
/// links against three profiles keeps the two assignments decorrelated.
pub fn hetero_links() -> [AccessLink; 4] {
    AccessLink::all()
}

/// The canonical heterogeneous churning fleet: `clients` slots cycling
/// through the service and link mixes, four rounds of six 256 kB files (big
/// enough that the access link, not just the protocol chatter, bounds the
/// slow links), two early leavers and two late joiners drawn
/// deterministically from `seed`.
pub fn hetero_spec(clients: usize, seed: u64, gc: GcPolicy) -> FleetSpec {
    FleetSpec::new(ServiceProfile::dropbox(), clients)
        .with_files(6, 256 * 1024)
        .with_batches(4)
        .with_seed(seed)
        .with_profiles(&hetero_profiles())
        .with_links(&hetero_links())
        .with_churn(2, 2)
        .with_gc(gc)
}

/// Reclamation outcome of one GC policy on the same churning scenario.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GcPolicyRow {
    /// Stable policy label (`eager` / `mark_sweep`).
    pub policy: String,
    /// Bytes the store still physically holds after the run.
    pub physical_bytes: u64,
    /// Bytes garbage collection reclaimed during the run.
    pub reclaimed_bytes: u64,
    /// Physical chunk entries freed.
    pub freed_chunks: u64,
    /// Manifests hard-deleted by departing clients.
    pub manifest_deletes: u64,
    /// Server-side dedup ratio over the surviving population.
    pub dedup_ratio: f64,
}

/// The heterogeneous suite's results.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HeteroSuite {
    /// Number of client slots.
    pub clients: usize,
    /// Rounds the fleet ran.
    pub rounds: usize,
    /// Per-batch workload label (e.g. "6x256kB").
    pub workload: String,
    /// Slots that left mid-run.
    pub leavers: usize,
    /// Slots that joined mid-run.
    pub joiners: usize,
    /// Completion-time distribution per service profile.
    pub completion_by_service: Vec<(String, SampleStats)>,
    /// Goodput (bits per simulated second) per access link.
    pub goodput_by_link: Vec<(String, f64)>,
    /// Plaintext bytes the fleet synchronised.
    pub logical_bytes: u64,
    /// One reclamation row per GC policy, same scenario and seed.
    pub gc_rows: Vec<GcPolicyRow>,
}

impl HeteroSuite {
    /// The row of one GC policy.
    pub fn gc_row(&self, policy: GcPolicy) -> Option<&GcPolicyRow> {
        self.gc_rows.iter().find(|r| r.policy == policy.label())
    }

    /// The completion stats of one service, by profile name.
    pub fn service(&self, name: &str) -> Option<&SampleStats> {
        self.completion_by_service.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// The goodput of one link, by preset name.
    pub fn link(&self, name: &str) -> Option<f64> {
        self.goodput_by_link.iter().find(|(n, _)| n == name).map(|(_, bps)| *bps)
    }
}

fn gc_row(run: &FleetRun, policy: GcPolicy) -> GcPolicyRow {
    let agg = run.aggregate();
    GcPolicyRow {
        policy: policy.label().to_string(),
        physical_bytes: agg.physical_bytes,
        reclaimed_bytes: agg.reclaimed_bytes,
        freed_chunks: agg.freed_chunks,
        manifest_deletes: agg.manifest_deletes,
        dedup_ratio: run.dedup_ratio(),
    }
}

/// Runs the canonical heterogeneous scenario once per GC policy (same seed,
/// same churn schedule) with one OS thread per client, and assembles the
/// suite. The per-client timings are store-policy independent, so the
/// per-service and per-link breakdowns are taken from the eager run.
pub fn run_hetero(clients: usize, seed: u64) -> HeteroSuite {
    let mut gc_rows = Vec::new();
    let mut breakdown: Option<FleetRun> = None;
    for policy in [GcPolicy::Eager, GcPolicy::MarkSweep] {
        // The spec carries the policy, so run_fleet_concurrent builds the
        // matching store and sizes the worker pool.
        let run = run_fleet_concurrent(&hetero_spec(clients, seed, policy));
        gc_rows.push(gc_row(&run, policy));
        if breakdown.is_none() {
            breakdown = Some(run);
        }
    }
    let run = breakdown.expect("at least one policy ran");
    let spec = hetero_spec(clients, seed, GcPolicy::Eager);
    HeteroSuite {
        clients,
        rounds: spec.rounds,
        workload: format!("{}x{}kB", spec.files_per_batch, spec.file_size / 1024),
        leavers: spec.slots.iter().filter(|s| s.leave_after.is_some()).count(),
        joiners: spec.slots.iter().filter(|s| s.join_round > 0).count(),
        completion_by_service: run.per_service_completion(),
        goodput_by_link: run.per_link_goodput_bps(),
        logical_bytes: run.total_logical_bytes(),
        gc_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The canonical 9-client suite, computed once (two fleet runs) and
    /// shared by the assertions below to keep debug test time in check.
    fn canonical() -> &'static HeteroSuite {
        static SUITE: OnceLock<HeteroSuite> = OnceLock::new();
        SUITE.get_or_init(|| run_hetero(9, 0x42))
    }

    #[test]
    fn suite_covers_every_profile_and_link() {
        let suite = canonical();
        assert_eq!(suite.clients, 9);
        assert_eq!(suite.completion_by_service.len(), 3);
        assert_eq!(suite.goodput_by_link.len(), 4);
        for profile in hetero_profiles() {
            let name = profile.name();
            let stats = suite.service(name).expect(name);
            assert!(stats.count > 0);
            assert!(stats.mean > 0.0);
        }
        for link in hetero_links() {
            let bps = suite.link(link.name).expect(link.name);
            assert!(bps > 0.0, "{}: {bps}", link.name);
        }
        assert_eq!(suite.leavers, 2);
        assert_eq!(suite.joiners, 2);
        assert!(suite.logical_bytes > 0);
    }

    #[test]
    fn constrained_links_finish_behind_the_campus_vantage() {
        let suite = canonical();
        // Goodput ordering follows the uplink: campus/fibre above ADSL/3G.
        let campus = suite.link("campus").unwrap();
        let adsl = suite.link("adsl").unwrap();
        let mobile = suite.link("3g").unwrap();
        assert!(campus > adsl, "campus {campus} vs adsl {adsl}");
        assert!(campus > mobile, "campus {campus} vs 3g {mobile}");
    }

    #[test]
    fn both_gc_policies_reclaim_the_leavers_bytes_identically() {
        let suite = canonical();
        let eager = suite.gc_row(GcPolicy::Eager).unwrap();
        let sweep = suite.gc_row(GcPolicy::MarkSweep).unwrap();
        assert!(eager.reclaimed_bytes > 0);
        assert!(eager.freed_chunks > 0);
        assert!(eager.manifest_deletes > 0);
        // Same seed, same churn: by run end both policies have freed the
        // same garbage and kept the same live bytes — they differ in *when*,
        // not *what*.
        assert_eq!(eager.reclaimed_bytes, sweep.reclaimed_bytes);
        assert_eq!(eager.physical_bytes, sweep.physical_bytes);
        assert_eq!(eager.freed_chunks, sweep.freed_chunks);
        assert!(eager.dedup_ratio > 0.0);
    }

    #[test]
    fn suite_is_deterministic_for_a_seed() {
        assert_eq!(run_hetero(4, 7), run_hetero(4, 7));
        assert_ne!(run_hetero(4, 7).completion_by_service, run_hetero(4, 8).completion_by_service);
    }
}
