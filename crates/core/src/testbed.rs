//! The testbed: the testing application plus the instrumented test computer.
//!
//! §2 of the paper describes a testbed made of a test computer running the
//! application under test and a testing application that generates workloads
//! and intercepts the traffic. [`Testbed`] plays both roles over the
//! simulator: it creates a fresh [`SyncClient`] for the requested service,
//! drives the workload, and hands back an [`ExperimentRun`] bundling the
//! outcome with the captured packet trace.

use cloudsim_net::Simulator;
use cloudsim_services::{ServiceProfile, SyncClient, SyncOutcome};
use cloudsim_trace::analysis;
use cloudsim_trace::{PacketRecord, SimDuration, SimTime};
use cloudsim_workload::{BatchSpec, GeneratedFile};

/// One executed experiment: outcome plus the packet capture.
#[derive(Debug, Clone)]
pub struct ExperimentRun {
    /// The sync outcome reported by the client.
    pub outcome: SyncOutcome,
    /// The captured trace, sorted by timestamp.
    pub packets: Vec<PacketRecord>,
    /// The benchmark payload size (sum of generated file sizes).
    pub benchmark_bytes: u64,
}

impl ExperimentRun {
    /// Synchronisation start-up delay (Fig. 6a): from the file modification to
    /// the first packet of a storage flow.
    pub fn startup_delay(&self) -> Option<SimDuration> {
        analysis::startup_delay(&self.packets, self.outcome.modification_time)
    }

    /// Upload completion time (Fig. 6b): first to last storage payload packet.
    pub fn completion_time(&self) -> Option<SimDuration> {
        analysis::completion_time(&self.packets)
    }

    /// Protocol overhead (Fig. 6c): storage+control traffic over benchmark size.
    pub fn overhead(&self) -> f64 {
        analysis::overhead_ratio(&self.packets, self.benchmark_bytes.max(1))
    }

    /// Payload bytes observed on storage flows in the upload direction
    /// (the y-axis of Fig. 4 and Fig. 5).
    pub fn uploaded_payload(&self) -> u64 {
        analysis::uploaded_payload(&self.packets)
    }
}

/// The experiment orchestrator.
#[derive(Debug, Clone, Copy)]
pub struct Testbed {
    seed: u64,
    pipeline: cloudsim_storage::UploadPipeline,
}

impl Testbed {
    /// Creates a testbed with a master seed. Repetition `i` of any experiment
    /// derives an independent seed, so the 24 repetitions of §2.3 see
    /// different RTT jitter and workload content. Sync clients use the
    /// auto-parallel upload pipeline; see [`Testbed::with_pipeline`].
    pub fn new(seed: u64) -> Testbed {
        Testbed { seed, pipeline: cloudsim_storage::UploadPipeline::parallel() }
    }

    /// The upload pipeline this testbed's sync clients use.
    pub fn pipeline(&self) -> cloudsim_storage::UploadPipeline {
        self.pipeline
    }

    /// Returns a copy whose sync clients use the given upload pipeline.
    /// Harnesses that already fan out one OS thread per experiment cell pin
    /// this to sequential so cells do not nest thread spawns (results are
    /// byte-identical either way).
    pub fn with_pipeline(&self, pipeline: cloudsim_storage::UploadPipeline) -> Testbed {
        Testbed { pipeline, ..*self }
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives the seed for repetition `rep` of an experiment labelled `label`.
    pub fn derived_seed(&self, label: u64, rep: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(label.wrapping_add(1)))
            .wrapping_add(0xD1B54A32D192ED03u64.wrapping_mul(rep.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Runs one batch-synchronisation experiment against a service.
    pub fn run_sync(&self, profile: &ServiceProfile, spec: &BatchSpec, rep: u64) -> ExperimentRun {
        let seed = self.derived_seed(spec.total_bytes() ^ spec.file_count as u64, rep);
        let files = spec.generate(seed);
        self.run_sync_files(profile, &files, rep)
    }

    /// Runs one synchronisation of explicit file contents (used by the
    /// capability tests, which need precise control over the payloads).
    pub fn run_sync_files(
        &self,
        profile: &ServiceProfile,
        files: &[GeneratedFile],
        rep: u64,
    ) -> ExperimentRun {
        let seed = self.derived_seed(0xF11E5, rep);
        let mut sim = Simulator::new(seed);
        let mut client = SyncClient::with_pipeline(profile.clone(), self.pipeline);
        let login_done = client.login(&mut sim, SimTime::ZERO);
        // Files are "modified" a few seconds after the application is up,
        // exactly like the testing application would do over FTP.
        let modification_time = login_done + SimDuration::from_secs(5);
        let outcome = client.sync_batch(&mut sim, files, modification_time);
        // Only account traffic from the modification onwards (login traffic is
        // studied separately in Fig. 1).
        let packets: Vec<PacketRecord> =
            sim.into_packets().into_iter().filter(|p| p.timestamp >= modification_time).collect();
        ExperimentRun {
            outcome,
            packets,
            benchmark_bytes: files.iter().map(|f| f.content.len() as u64).sum(),
        }
    }

    /// Runs an experiment that needs full control over the client (e.g. the
    /// dedup test's copy/delete/restore sequence or the idle experiment).
    /// The closure receives the simulator, the client and the login-completion
    /// time; the full trace is returned alongside the closure's result.
    pub fn run_scripted<R>(
        &self,
        profile: &ServiceProfile,
        rep: u64,
        script: impl FnOnce(&mut Simulator, &mut SyncClient, SimTime) -> R,
    ) -> (R, Vec<PacketRecord>) {
        let seed = self.derived_seed(0x5C417, rep);
        let mut sim = Simulator::new(seed);
        let mut client = SyncClient::with_pipeline(profile.clone(), self.pipeline);
        let login_done = client.login(&mut sim, SimTime::ZERO);
        let result = script(&mut sim, &mut client, login_done);
        (result, sim.into_packets())
    }
}

impl Default for Testbed {
    fn default() -> Self {
        Testbed::new(0xC10DBE7C)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsim_workload::FileKind;

    #[test]
    fn run_sync_produces_a_trace_and_metrics() {
        let testbed = Testbed::new(1);
        let spec = BatchSpec::new(5, 20_000, FileKind::RandomBinary);
        let run = testbed.run_sync(&ServiceProfile::wuala(), &spec, 0);
        assert_eq!(run.benchmark_bytes, 100_000);
        assert!(!run.packets.is_empty());
        assert!(run.startup_delay().is_some());
        assert!(run.completion_time().is_some());
        assert!(run.overhead() > 1.0);
        assert!(run.uploaded_payload() >= 100_000);
    }

    #[test]
    fn repetitions_differ_but_are_reproducible() {
        let testbed = Testbed::new(2);
        let spec = BatchSpec::new(1, 100_000, FileKind::RandomBinary);
        let a0 = testbed.run_sync(&ServiceProfile::dropbox(), &spec, 0);
        let a0_again = testbed.run_sync(&ServiceProfile::dropbox(), &spec, 0);
        let a1 = testbed.run_sync(&ServiceProfile::dropbox(), &spec, 1);
        assert_eq!(a0.completion_time(), a0_again.completion_time(), "same rep must reproduce");
        assert_ne!(
            a0.completion_time(),
            a1.completion_time(),
            "different reps should see different jitter"
        );
        assert_ne!(testbed.derived_seed(1, 0), testbed.derived_seed(1, 1));
        assert_ne!(testbed.derived_seed(1, 0), testbed.derived_seed(2, 0));
    }

    #[test]
    fn scripted_runs_expose_the_client() {
        let testbed = Testbed::default();
        let ((), packets) =
            testbed.run_scripted(&ServiceProfile::google_drive(), 0, |sim, client, t0| {
                client.idle_until(sim, t0 + SimDuration::from_secs(120));
            });
        assert!(!packets.is_empty());
        assert_eq!(testbed.seed(), Testbed::default().seed());
    }

    #[test]
    fn login_traffic_is_excluded_from_sync_runs() {
        let testbed = Testbed::new(3);
        let spec = BatchSpec::new(1, 10_000, FileKind::RandomBinary);
        let run = testbed.run_sync(&ServiceProfile::skydrive(), &spec, 0);
        // SkyDrive's login alone is ~150 kB; if it leaked into the run the
        // overhead for a 10 kB benchmark would exceed 15.
        assert!(run.overhead() < 15.0, "login traffic leaked into the benchmark window");
    }
}
