//! Architecture discovery (§2.1, §3 of the paper, Fig. 2).
//!
//! The pipeline mirrors the paper's methodology step by step: collect the DNS
//! names a client contacts, resolve them through the open-resolver fleet,
//! identify the owners of the returned addresses with whois, and geolocate
//! every front end with the hybrid (airport-code + shortest-RTT) method. The
//! output is the per-provider summary the paper gives in §3.2 plus the Fig. 2
//! style list of Google entry points.

use cloudsim_geo::{
    AuthoritativeDns, GeolocationEstimate, HybridGeolocator, IpRegistry, Provider,
    ProviderTopology, ResolverFleet,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One discovered front-end address.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscoveredNode {
    /// The address, dotted-quad rendering.
    pub addr: String,
    /// Owner organisation according to whois.
    pub owner: String,
    /// Reverse-DNS name, when published.
    pub reverse_dns: Option<String>,
    /// Geolocation estimate.
    pub location: GeolocationEstimate,
    /// City of the ground-truth location (used to score the estimate).
    pub true_city: String,
}

/// The discovery report for one provider.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchitectureReport {
    /// Which provider was surveyed.
    pub provider: String,
    /// Number of resolvers used for the sweep.
    pub resolvers_used: usize,
    /// Every distinct front-end address discovered.
    pub nodes: Vec<DiscoveredNode>,
    /// Distinct owner organisations seen.
    pub owners: Vec<String>,
    /// Distinct countries (from the geolocation estimates mapped back to the
    /// nearest catalogue city).
    pub cities: Vec<String>,
    /// Mean geolocation error in kilometres (available because the substrate
    /// knows the ground truth).
    pub mean_error_km: f64,
}

impl ArchitectureReport {
    /// Number of distinct entry points discovered (the Fig. 2 headline for
    /// Google Drive: "more than 100 different entry points").
    pub fn entry_points(&self) -> usize {
        self.nodes.len()
    }
}

fn dotted(addr: u32) -> String {
    let o = addr.to_be_bytes();
    format!("{}.{}.{}.{}", o[0], o[1], o[2], o[3])
}

/// Runs the full §2.1 pipeline for one provider.
pub fn discover_architecture(
    provider: Provider,
    fleet: &ResolverFleet,
    rtt_seed: u64,
) -> ArchitectureReport {
    let dns = AuthoritativeDns::for_provider(provider);
    let truth = ProviderTopology::ground_truth(provider);
    let mut registry = IpRegistry::new();
    ProviderTopology::register_whois(&mut registry);
    let geolocator = HybridGeolocator::new(rtt_seed);

    // 1. Resolve from every vantage point and collect the distinct addresses.
    let mut discovered: BTreeSet<u32> = BTreeSet::new();
    for resolver in fleet.resolvers() {
        discovered.extend(dns.resolve(resolver));
    }

    // 2. whois + reverse DNS + hybrid geolocation for every address.
    let mut nodes = Vec::new();
    let mut owners: BTreeSet<String> = BTreeSet::new();
    let mut cities: BTreeSet<String> = BTreeSet::new();
    let mut error_sum = 0.0;
    for addr in &discovered {
        let owner = registry.owner(*addr).to_string();
        owners.insert(owner.clone());
        let truth_node = truth.nodes.iter().find(|n| n.addr == *addr);
        let reverse = dns.reverse_lookup(*addr).map(|s| s.to_string());
        let true_location = truth_node.map(|n| n.location).unwrap_or(cloudsim_geo::coords::TESTBED);
        let estimate = geolocator.locate(reverse.as_deref(), true_location);
        error_sum += estimate.error_km;
        if let Some(n) = truth_node {
            cities.insert(n.city.clone());
        }
        nodes.push(DiscoveredNode {
            addr: dotted(*addr),
            owner,
            reverse_dns: reverse,
            location: estimate,
            true_city: truth_node.map(|n| n.city.clone()).unwrap_or_default(),
        });
    }

    let mean_error_km = if nodes.is_empty() { 0.0 } else { error_sum / nodes.len() as f64 };
    ArchitectureReport {
        provider: provider.name().to_string(),
        resolvers_used: fleet.len(),
        nodes,
        owners: owners.into_iter().collect(),
        cities: cities.into_iter().collect(),
        mean_error_km,
    }
}

/// Runs the discovery for all five providers with the paper-scale resolver
/// fleet. Returns reports keyed by provider name.
pub fn discover_all(rtt_seed: u64) -> BTreeMap<String, ArchitectureReport> {
    let fleet = ResolverFleet::paper_scale();
    Provider::ALL
        .iter()
        .map(|p| (p.name().to_string(), discover_architecture(*p, &fleet, rtt_seed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fleet() -> ResolverFleet {
        ResolverFleet::generate(512, 4)
    }

    #[test]
    fn google_drive_discovery_reproduces_fig2() {
        let report = discover_architecture(Provider::GoogleDrive, &ResolverFleet::paper_scale(), 1);
        assert!(report.entry_points() > 100, "found {}", report.entry_points());
        assert_eq!(report.owners, vec!["Google LLC".to_string()]);
        assert!(report.cities.len() > 40, "cities {}", report.cities.len());
        assert!(report.mean_error_km < 300.0);
        assert!(report.resolvers_used >= 2000);
    }

    #[test]
    fn dropbox_storage_is_amazon_control_is_dropbox() {
        let report = discover_architecture(Provider::Dropbox, &small_fleet(), 2);
        assert!(report.owners.contains(&"Amazon.com, Inc.".to_string()));
        assert!(report.owners.contains(&"Dropbox, Inc.".to_string()));
        assert!(report.entry_points() <= 8);
        let cities: BTreeSet<&str> = report.nodes.iter().map(|n| n.true_city.as_str()).collect();
        assert!(cities.contains("San Jose"));
        assert!(cities.contains("Ashburn"));
    }

    #[test]
    fn wuala_is_hosted_in_europe_by_third_parties() {
        let report = discover_architecture(Provider::Wuala, &small_fleet(), 3);
        assert!(!report.owners.iter().any(|o| o.contains("Wuala")));
        for node in &report.nodes {
            assert!(
                ["Nuremberg", "Zurich", "Lille"].contains(&node.true_city.as_str()),
                "unexpected city {}",
                node.true_city
            );
        }
    }

    #[test]
    fn centralised_providers_have_few_entry_points() {
        for provider in [Provider::SkyDrive, Provider::CloudDrive] {
            let report = discover_architecture(provider, &small_fleet(), 4);
            assert!(report.entry_points() <= 8, "{provider:?}: {}", report.entry_points());
            assert_eq!(report.owners.len(), 1);
        }
    }

    #[test]
    fn discover_all_covers_every_provider() {
        let all = discover_all(5);
        assert_eq!(all.len(), 5);
        assert!(all.contains_key("Google Drive"));
        assert!(all["Cloud Drive"].owners.contains(&"Amazon.com, Inc.".to_string()));
    }
}
