//! Partitioned fleet-scale suite: the population split across N workers,
//! merged back and checked against the unsliced run.
//!
//! The partition runner ([`cloudsim_services::partition`]) promises that a
//! worker-sharded run is *bit-identical* to the unsliced one: busy-chaining
//! is per-client, store aggregates commute, interval and histogram merges
//! are order-independent. This suite makes that promise observable. The
//! merged run assembles into the exact same [`FleetScaleSuite`] as
//! [`crate::scale::run_fleet_scale`] (the `repro partition --json` dump is
//! byte-identical across `--partitions 1..=8` and against
//! `repro fleet-scale --json`, which the CI partition-determinism leg
//! `cmp`s), while the per-partition rows and the `partition.*` gate
//! metrics report what the split itself cost:
//!
//! * **commit skew** — max/mean per-partition commits, how unevenly the
//!   split landed;
//! * **finish skew** — the spread of per-partition finish instants;
//! * **merge overhead** — per-partition wave totals against the merged
//!   stream's wave count (sub-heaps fragment less, so the ratio is ≥ 1);
//! * **sum-of-parts ratios** — Σ parts / merged for commits, bytes, the
//!   p99 of the elementwise-merged histograms and the load-curve overlap,
//!   all of which the merge invariants pin to exactly 1.0.

use crate::scale::{assemble_suite, scale_spec, FleetScaleSuite, LOAD_CURVE_BUCKETS};
use cloudsim_services::capture::FleetCapture;
use cloudsim_services::partition::{replay_partitioned, run_partitioned, PartitionedRun};
use cloudsim_trace::{LatencyHistogram, SimTime};
use serde::Serialize;

/// One partition's share of the run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PartitionRow {
    /// The partition's index.
    pub index: usize,
    /// Clients the partition owned.
    pub clients: usize,
    /// Commits the partition performed.
    pub commits: u64,
    /// Waves the partition's sub-heap split into.
    pub waves: usize,
    /// Start of the partition's earliest transfer, in virtual seconds.
    pub first_start_s: f64,
    /// End of the partition's latest transfer, in virtual seconds.
    pub last_end_s: f64,
}

/// The partitioned fleet-scale suite: the merged run (identical to the
/// unsliced [`FleetScaleSuite`]) plus what the split cost.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PartitionSuite {
    /// Partitions the population was split into.
    pub partitions: usize,
    /// The merged run — bit-identical to the unsliced suite, and the only
    /// part `repro partition --json` dumps (so dumps `cmp` equal across
    /// partition counts).
    pub merged: FleetScaleSuite,
    /// Per-partition rows, in partition order.
    pub rows: Vec<PartitionRow>,
    /// Max/mean per-partition commits (1.0 = perfectly even).
    pub commit_skew: f64,
    /// Spread of per-partition finish instants, in virtual seconds.
    pub finish_skew_s: f64,
    /// Σ per-partition waves / merged wave count (≥ 1: sub-heaps fragment
    /// less than the interleaved global stream).
    pub merge_overhead: f64,
    /// Σ per-partition commits / merged commits — exactly 1.0 by the
    /// disjoint-coverage invariant.
    pub commits_sum_ratio: f64,
    /// Σ per-partition logical bytes / merged logical bytes — exactly 1.0.
    pub bytes_sum_ratio: f64,
    /// p99 of the elementwise-merged per-partition histograms over the
    /// merged run's p99 — exactly 1.0 (histogram merge is elementwise).
    pub hist_p99_ratio: f64,
    /// Load-curve overlap between the summed per-partition curves and the
    /// merged curve (Σ min / Σ max over buckets) — exactly 1.0.
    pub curve_overlap: f64,
}

/// Buckets `intervals` by start instant over the merged run's active span
/// — the same arithmetic as `ScaleRun::load_curve`, so summing the
/// partitions' curves elementwise reproduces the merged curve exactly.
fn curve_over(
    intervals: &[(SimTime, SimTime)],
    first: SimTime,
    span_s: f64,
    buckets: usize,
) -> Vec<u64> {
    let mut curve = vec![0u64; buckets];
    if span_s <= 0.0 {
        curve[0] = intervals.len() as u64;
        return curve;
    }
    for &(start, _) in intervals {
        let frac = (start - first).as_secs_f64() / span_s;
        let b = ((frac * buckets as f64) as usize).min(buckets - 1);
        curve[b] += 1;
    }
    curve
}

/// Assembles the suite from a finished partitioned run — the same
/// [`assemble_suite`] path as the unsliced suite for the merged half, so
/// every derived field reproduces bit for bit.
fn assemble_partition_suite(
    commits_per_client: usize,
    files_per_commit: usize,
    file_size: u64,
    horizon: cloudsim_trace::SimDuration,
    outcome: &PartitionedRun,
) -> PartitionSuite {
    let merged =
        assemble_suite(commits_per_client, files_per_commit, file_size, horizon, &outcome.run);
    let parts = &outcome.parts;
    let k = parts.len().max(1) as f64;

    let rows: Vec<PartitionRow> = parts
        .iter()
        .map(|p| PartitionRow {
            index: p.index,
            clients: p.clients.len(),
            commits: p.commits,
            waves: p.waves,
            first_start_s: p.first_start().as_secs_f64(),
            last_end_s: p.last_end().as_secs_f64(),
        })
        .collect();

    let max_commits = parts.iter().map(|p| p.commits).max().unwrap_or(0) as f64;
    let mean_commits = outcome.run.commits as f64 / k;
    let commit_skew = if mean_commits > 0.0 { max_commits / mean_commits } else { 1.0 };

    let last_ends: Vec<SimTime> = parts.iter().map(|p| p.last_end()).collect();
    let finish_skew_s = match (last_ends.iter().max(), last_ends.iter().min()) {
        (Some(&max), Some(&min)) => (max - min).as_secs_f64(),
        _ => 0.0,
    };

    let part_waves: usize = parts.iter().map(|p| p.waves).sum();
    let merge_overhead = if outcome.merged_waves > 0 {
        part_waves as f64 / outcome.merged_waves as f64
    } else {
        1.0
    };

    let part_commits: u64 = parts.iter().map(|p| p.commits).sum();
    let commits_sum_ratio = if outcome.run.commits > 0 {
        part_commits as f64 / outcome.run.commits as f64
    } else {
        1.0
    };
    let part_bytes: u64 = parts.iter().map(|p| p.logical_bytes).sum();
    let bytes_sum_ratio = if outcome.run.logical_bytes > 0 {
        part_bytes as f64 / outcome.run.logical_bytes as f64
    } else {
        1.0
    };

    let mut merged_hists = LatencyHistogram::new();
    for part in parts {
        merged_hists.merge(&part.transfer_histogram());
    }
    let whole_p99 = merged.transfer_hist.p99_s;
    let hist_p99_ratio =
        if whole_p99 > 0.0 { merged_hists.summary().p99_s / whole_p99 } else { 1.0 };

    let first = outcome.run.first_start();
    let span_s = outcome.run.virtual_span_secs();
    let mut summed = [0u64; LOAD_CURVE_BUCKETS];
    for part in parts {
        for (b, count) in
            curve_over(&part.intervals, first, span_s, LOAD_CURVE_BUCKETS).into_iter().enumerate()
        {
            summed[b] += count;
        }
    }
    let (mut mins, mut maxs) = (0u64, 0u64);
    for (b, &merged_count) in merged.load_curve.iter().enumerate() {
        mins += summed[b].min(merged_count);
        maxs += summed[b].max(merged_count);
    }
    let curve_overlap = if maxs > 0 { mins as f64 / maxs as f64 } else { 1.0 };

    PartitionSuite {
        partitions: parts.len(),
        merged,
        rows,
        commit_skew,
        finish_skew_s,
        merge_overhead,
        commits_sum_ratio,
        bytes_sum_ratio,
        hist_p99_ratio,
        curve_overlap,
    }
}

/// Runs the canonical fleet-scale population split into `partitions`
/// round-robin stripes and assembles the suite. The merged half is
/// bit-identical to [`crate::scale::run_fleet_scale`] on the same
/// `(clients, seed)`, whatever the partition count.
pub fn run_partition_suite(clients: usize, partitions: usize, seed: u64) -> PartitionSuite {
    let spec = scale_spec(clients, seed);
    let outcome = run_partitioned(&spec, partitions);
    assemble_partition_suite(
        spec.commits_per_client,
        spec.files_per_commit,
        spec.file_size,
        spec.horizon,
        &outcome,
    )
}

/// Replays a capture split into `partitions` contiguous slices and
/// assembles the suite. For a spec-derived capture the merged half is
/// bit-identical to the live partitioned run *and* to the unsliced replay.
pub fn replay_partition_suite(
    capture: &FleetCapture,
    partitions: usize,
) -> Result<PartitionSuite, String> {
    let outcome = replay_partitioned(capture, partitions)?;
    Ok(assemble_partition_suite(
        capture.commits_per_client,
        capture.files_per_commit,
        capture.file_size,
        capture.horizon,
        &outcome,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Report;
    use crate::scale::run_fleet_scale;
    use cloudsim_services::capture::capture_of_spec;
    use std::sync::OnceLock;

    /// The gate-scale pair — one unsliced run and one 8-way partitioned run
    /// at 10k clients — computed once and shared by the `to_bits`
    /// assertions below (each run is seconds of debug time).
    fn gate_pair() -> &'static (FleetScaleSuite, PartitionSuite) {
        static PAIR: OnceLock<(FleetScaleSuite, PartitionSuite)> = OnceLock::new();
        PAIR.get_or_init(|| {
            (run_fleet_scale(10_000, 0x5CA1E), run_partition_suite(10_000, 8, 0x5CA1E))
        })
    }

    #[test]
    fn partitioned_gate_run_matches_the_unsliced_suite_bit_for_bit() {
        let (whole, split) = gate_pair();
        let merged = &split.merged;
        assert_eq!(merged.clients, whole.clients);
        assert_eq!(merged.commits, whole.commits);
        assert_eq!(merged.files, whole.files);
        assert_eq!(merged.load_curve, whole.load_curve);
        assert_eq!(merged.concurrency_peak, whole.concurrency_peak);
        // Busy-chaining, store aggregates and histogram merge must all
        // reproduce to the bit — the tentpole's three invariants.
        for (a, b) in [
            (merged.logical_mb, whole.logical_mb),
            (merged.physical_mb, whole.physical_mb),
            (merged.dedup_ratio, whole.dedup_ratio),
            (merged.virtual_span_s, whole.virtual_span_s),
            (merged.commits_per_vsec, whole.commits_per_vsec),
            (merged.transfer_hist.p50_s, whole.transfer_hist.p50_s),
            (merged.transfer_hist.p90_s, whole.transfer_hist.p90_s),
            (merged.transfer_hist.p99_s, whole.transfer_hist.p99_s),
            (merged.transfer_hist.p999_s, whole.transfer_hist.p999_s),
        ] {
            assert_eq!(a.to_bits(), b.to_bits(), "partitioned {a} != unsliced {b}");
        }
        // The serialised dumps are byte-identical — what CI `cmp`s.
        assert_eq!(Report::to_json(merged), Report::to_json(whole));
        // The sum-of-parts invariants hold exactly, not approximately.
        assert_eq!(split.commits_sum_ratio.to_bits(), 1.0f64.to_bits());
        assert_eq!(split.bytes_sum_ratio.to_bits(), 1.0f64.to_bits());
        assert_eq!(split.hist_p99_ratio.to_bits(), 1.0f64.to_bits());
        assert_eq!(split.curve_overlap.to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn partition_rows_account_for_the_whole_population() {
        let (_, split) = gate_pair();
        assert_eq!(split.partitions, 8);
        assert_eq!(split.rows.len(), 8);
        assert_eq!(split.rows.iter().map(|r| r.clients).sum::<usize>(), 10_000);
        assert_eq!(split.rows.iter().map(|r| r.commits).sum::<u64>(), split.merged.commits);
        assert!(split.commit_skew >= 1.0);
        assert!(split.finish_skew_s >= 0.0);
        assert!(split.merge_overhead >= 1.0, "sub-heaps cannot fragment more than the merge");
    }

    #[test]
    fn partition_count_is_invisible_in_the_merged_dump() {
        let whole = run_fleet_scale(400, 0x5CA1E);
        for partitions in [1usize, 3, 8] {
            let split = run_partition_suite(400, partitions, 0x5CA1E);
            assert_eq!(
                Report::to_json(&split.merged),
                Report::to_json(&whole),
                "partitions={partitions}"
            );
        }
    }

    #[test]
    fn sliced_capture_replay_recombines_to_the_live_dump() {
        let spec = scale_spec(300, 0x5CA1E);
        let capture = capture_of_spec(&spec);
        let live = run_fleet_scale(300, 0x5CA1E);
        let replayed = replay_partition_suite(&capture, 5).expect("capture tiles");
        assert_eq!(Report::to_json(&replayed.merged), Report::to_json(&live));
        assert_eq!(replayed.partitions, 5);
        // Contiguous slices cut near-equal ranges: 5 x 60 clients.
        assert!(replayed.rows.iter().all(|r| r.clients == 60));
        assert!(replay_partition_suite(&capture, 301).is_err());
    }
}
