//! # cloudbench
//!
//! Benchmarking personal cloud storage — a full reproduction of the
//! methodology of Drago et al., *Benchmarking Personal Cloud Storage*,
//! IMC 2013 (DOI 10.1145/2504730.2504762), over a simulated substrate.
//!
//! The paper's contribution is a methodology with three legs, each of which is
//! a module here:
//!
//! 1. **Architecture discovery** ([`architecture`]): resolve each service's
//!    DNS names from thousands of vantage points, identify address owners via
//!    whois and geolocate the front ends (§2.1, §3, Fig. 2).
//! 2. **Capability checks** ([`capability`]): crafted file batches reveal
//!    whether a client implements chunking, bundling, client-side
//!    deduplication, delta encoding and (smart) compression (§2.2, §4,
//!    Table 1, Fig. 3–5).
//! 3. **Performance benchmarks** ([`benchmarks`], [`idle`]): synchronisation
//!    start-up time, completion time and protocol overhead over the paper's
//!    workloads, each repeated many times (§2.3, §5, Fig. 1, Fig. 6).
//!
//! [`testbed`] wires the pieces together (it plays the role of the "testing
//! application" plus the instrumented test computer), and [`report`] renders
//! every table and figure of the paper from the measured data.
//!
//! Beyond the paper's single test computer, [`fleet`] scales the methodology
//! out: concurrent multi-client fleets committing into one shared sharded
//! object store, measuring aggregate goodput, per-client completion-time
//! distributions and the server-side inter-user deduplication ratio as a
//! function of fleet size. [`hetero`] runs the scenario *matrix* on top:
//! mixed service profiles on mixed access links with seeded churn (joins and
//! leaves mid-run) against a garbage-collected store, comparing eager and
//! mark-sweep reclamation. [`restore`] opens the read path: downloader slots
//! pull other users' namespaces back through asymmetric links, measuring
//! restore goodput, time-to-first-byte and cross-user dedup savings on the
//! down direction. [`schedule`] gives the fleet its temporal shape: seeded
//! think-time distributions, idle rounds that pay §3.1 keep-alive
//! signalling, and intra-round arrival jitter on a virtual clock, measuring
//! start-up delay distributions, the concurrency high-water mark and the
//! background-vs-payload byte split. [`scale`] takes the final step to
//! provider scale: 100k+ lightweight clients on the discrete-event heap —
//! compact state records and metadata-only commits in place of full sync
//! clients — measuring commits per virtual second, the concurrency peak and
//! population-scale inter-user dedup (see `docs/ARCHITECTURE.md` for the
//! engine design). [`partition`] shards that population across N workers
//! over one shared store and merges the results back bit-identically —
//! the in-process seam for a distributed agent/controller mode.
//! [`trace_overhead`] closes the observability loop: the same population
//! run with capture off and on, proving the sharded trace recorder is a
//! pure observer and reporting the capture's packet/flow/overhead figures.
//!
//! ## Quick start
//!
//! ```
//! use cloudbench::testbed::Testbed;
//! use cloudsim_services::ServiceProfile;
//! use cloudsim_workload::{BatchSpec, FileKind};
//!
//! let testbed = Testbed::new(42);
//! let spec = BatchSpec::new(10, 10_000, FileKind::RandomBinary);
//! let run = testbed.run_sync(&ServiceProfile::dropbox(), &spec, 0);
//! assert!(run.completion_time().is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod architecture;
pub mod benchmarks;
pub mod capability;
pub mod faults;
pub mod fleet;
pub mod hetero;
pub mod idle;
pub mod partition;
pub mod report;
pub mod restore;
pub mod scale;
pub mod schedule;
pub mod testbed;
pub mod trace_overhead;

pub use architecture::{discover_architecture, ArchitectureReport};
pub use benchmarks::{run_performance_suite, PerformanceRow, PerformanceSuite};
pub use capability::{CapabilityMatrix, ServiceCapabilities};
pub use faults::{run_faults, FaultLinkRow, FaultPolicyCell, FaultsSuite};
pub use fleet::{run_fleet_scaling, FleetScalingRow, FleetScalingSuite, FLEET_SIZES};
pub use hetero::{run_hetero, GcPolicyRow, HeteroSuite};
pub use idle::{idle_traffic_series, IdleSeries};
pub use partition::{replay_partition_suite, run_partition_suite, PartitionRow, PartitionSuite};
pub use report::Report;
pub use restore::{run_restore, RestoreLinkRow, RestoreSuite};
pub use scale::{run_fleet_scale, FleetScaleSuite};
pub use schedule::{run_schedule, ScheduleSuite};
pub use testbed::{ExperimentRun, Testbed};
pub use trace_overhead::{run_trace_overhead, TraceOverheadSuite};

// Re-exports that make the public API self-contained for downstream users.
pub use cloudsim_geo::Provider;
pub use cloudsim_services::ServiceProfile;
pub use cloudsim_workload::{BatchSpec, FileKind};
