//! Report rendering: every table and figure of the paper as text.
//!
//! The `repro` binary in the bench crate calls into this module to regenerate
//! Table 1, Fig. 1–6 and the §3 architecture summary from freshly measured
//! data, printing the same rows/series the paper reports (absolute numbers
//! differ — the substrate is a simulator — but the shapes and rankings are
//! expected to hold; EXPERIMENTS.md records the comparison).

use crate::architecture::ArchitectureReport;
use crate::benchmarks::PerformanceSuite;
use crate::capability::{CapabilityMatrix, CompressionPoint, DeltaPoint};
use crate::faults::FaultsSuite;
use crate::fleet::FleetScalingSuite;
use crate::hetero::HeteroSuite;
use crate::idle::IdleSeries;
use crate::partition::PartitionSuite;
use crate::restore::RestoreSuite;
use crate::scale::FleetScaleSuite;
use crate::schedule::ScheduleSuite;
use crate::trace_overhead::TraceOverheadSuite;
use cloudsim_trace::HistogramSummary;
use serde::Serialize;
use std::fmt::Write as _;

/// One latency-distribution line, shared by every suite that carries a
/// [`HistogramSummary`].
fn hist_line(body: &mut String, label: &str, hist: &HistogramSummary) {
    let _ = writeln!(
        body,
        "{label} latency (s, log-bucketed): n={} p50 {:.3} p90 {:.3} p99 {:.3} p99.9 {:.3}",
        hist.count, hist.p50_s, hist.p90_s, hist.p99_s, hist.p999_s,
    );
}

/// A rendered report section.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Report {
    /// Section title (e.g. "Table 1").
    pub title: String,
    /// Rendered text body (fixed-width table / series listing).
    pub body: String,
}

impl Report {
    /// Renders Table 1 (the capability matrix).
    pub fn table1(matrix: &CapabilityMatrix) -> Report {
        let mut body = String::new();
        let _ = writeln!(
            body,
            "{:<14} {:>10} {:>10} {:>12} {:>14} {:>15}",
            "Service", "Chunking", "Bundling", "Compression", "Deduplication", "Delta-encoding"
        );
        for row in &matrix.rows {
            let _ = writeln!(
                body,
                "{:<14} {:>10} {:>10} {:>12} {:>14} {:>15}",
                row.service,
                row.chunking.describe(),
                if row.bundling { "yes" } else { "no" },
                row.compression,
                if row.deduplication { "yes" } else { "no" },
                if row.delta_encoding { "yes" } else { "no" },
            );
        }
        Report { title: "Table 1: capabilities implemented in each service".to_string(), body }
    }

    /// Renders Fig. 1 (idle traffic) as a per-minute cumulative-kB table.
    pub fn figure1(series: &[IdleSeries]) -> Report {
        let mut body = String::new();
        let _ = write!(body, "{:<8}", "min");
        for s in series {
            let _ = write!(body, "{:>14}", s.service);
        }
        let _ = writeln!(body);
        if let Some(first) = series.first() {
            for (i, (minute, _)) in first.points.iter().enumerate() {
                let _ = write!(body, "{:<8.0}", minute);
                for s in series {
                    let _ = write!(body, "{:>14.1}", s.points.get(i).map(|p| p.1).unwrap_or(0.0));
                }
                let _ = writeln!(body);
            }
        }
        let _ = writeln!(body);
        for s in series {
            let _ = writeln!(
                body,
                "{:<14} steady rate {:>8.0} b/s  (~{:.1} MB/day)",
                s.service, s.steady_rate_bps, s.megabytes_per_day
            );
        }
        Report {
            title: "Figure 1: background traffic while idle (cumulative kB)".to_string(),
            body,
        }
    }

    /// Renders Fig. 2 / §3.2 (architecture discovery summaries).
    pub fn figure2(reports: &[&ArchitectureReport]) -> Report {
        let mut body = String::new();
        let _ = writeln!(
            body,
            "{:<14} {:>13} {:>9} {:>9} {:>16}",
            "Service", "entry points", "owners", "cities", "mean geo err km"
        );
        for r in reports {
            let _ = writeln!(
                body,
                "{:<14} {:>13} {:>9} {:>9} {:>16.0}",
                r.provider,
                r.entry_points(),
                r.owners.len(),
                r.cities.len(),
                r.mean_error_km
            );
        }
        Report {
            title: "Figure 2 / §3.2: data centres and edge nodes discovered".to_string(),
            body,
        }
    }

    /// Renders Fig. 3 (cumulative TCP SYNs while uploading 100 × 10 kB).
    pub fn figure3(series: &[(String, Vec<(f64, u64)>)]) -> Report {
        let mut body = String::new();
        for (service, points) in series {
            let total = points.last().map(|(_, v)| *v).unwrap_or(0);
            let duration = points.last().map(|(t, _)| *t).unwrap_or(0.0);
            let _ =
                writeln!(body, "{:<14} {:>4} connections over {:>6.1} s", service, total, duration);
            // A coarse 10-point resampling of the cumulative curve.
            if !points.is_empty() {
                let _ = write!(body, "    t(s)/SYNs:");
                for i in 0..=10 {
                    let target_t = duration * i as f64 / 10.0;
                    let v = points
                        .iter()
                        .take_while(|(t, _)| *t <= target_t + 1e-9)
                        .last()
                        .map(|(_, v)| *v)
                        .unwrap_or(0);
                    let _ = write!(body, " {target_t:.0}/{v}");
                }
                let _ = writeln!(body);
            }
        }
        Report { title: "Figure 3: cumulative TCP SYNs, 100 files of 10 kB".to_string(), body }
    }

    /// Renders Fig. 4 (delta-encoding test series).
    pub fn figure4(series: &[(String, Vec<DeltaPoint>)], case: &str) -> Report {
        let mut body = String::new();
        let _ = writeln!(body, "{:<14} file size MB -> uploaded MB", "Service");
        for (service, points) in series {
            let _ = write!(body, "{service:<14} ");
            for p in points {
                let _ = write!(
                    body,
                    "{:.1}->{:.2}  ",
                    p.file_size as f64 / 1e6,
                    p.uploaded as f64 / 1e6
                );
            }
            let _ = writeln!(body);
        }
        Report { title: format!("Figure 4 ({case}): delta encoding test"), body }
    }

    /// Renders Fig. 5 (compression test series for one content type).
    pub fn figure5(series: &[(String, Vec<CompressionPoint>)], content: &str) -> Report {
        let mut body = String::new();
        let _ = writeln!(body, "{:<14} file size MB -> uploaded MB", "Service");
        for (service, points) in series {
            let _ = write!(body, "{service:<14} ");
            for p in points {
                let _ = write!(
                    body,
                    "{:.1}->{:.2}  ",
                    p.file_size as f64 / 1e6,
                    p.uploaded as f64 / 1e6
                );
            }
            let _ = writeln!(body);
        }
        Report {
            title: format!("Figure 5 ({content}): bytes uploaded during the compression test"),
            body,
        }
    }

    /// Renders one Fig. 6 panel from the performance suite.
    pub fn figure6(suite: &PerformanceSuite, metric: Fig6Metric) -> Report {
        let workloads = suite.workloads();
        let mut body = String::new();
        let _ = write!(body, "{:<14}", "Service");
        for w in &workloads {
            let _ = write!(body, "{w:>12}");
        }
        let _ = writeln!(body);
        let mut services: Vec<String> = Vec::new();
        for row in &suite.rows {
            if !services.contains(&row.service) {
                services.push(row.service.clone());
            }
        }
        for service in &services {
            let _ = write!(body, "{service:<14}");
            for w in &workloads {
                let value = suite.row(service, w).map(|r| metric.extract(r)).unwrap_or(f64::NAN);
                let _ = write!(body, "{value:>12.2}");
            }
            let _ = writeln!(body);
        }
        Report { title: format!("Figure 6{}: {}", metric.panel(), metric.describe()), body }
    }

    /// Renders the fleet scaling suite: the multi-tenant metrics a
    /// single-computer testbed cannot observe, as a function of fleet size.
    pub fn fleet_scaling(suite: &FleetScalingSuite) -> Report {
        let mut body = String::new();
        let _ = writeln!(
            body,
            "{} fleet, {} per client, shared pool {:.0}%",
            suite.service,
            suite.workload,
            suite.shared_fraction * 100.0
        );
        let _ = writeln!(
            body,
            "{:>8} {:>14} {:>14} {:>12} {:>12} {:>12} {:>10}",
            "clients",
            "goodput Mb/s",
            "completion s",
            "p-bytes MB",
            "r-bytes MB",
            "dedup x",
            "wall s"
        );
        for row in &suite.rows {
            let _ = writeln!(
                body,
                "{:>8} {:>14.2} {:>9.1}±{:<4.1} {:>12.2} {:>12.2} {:>12.2} {:>10.2}",
                row.clients,
                row.aggregate_goodput_bps / 1e6,
                row.completion_secs.mean,
                row.completion_secs.std_dev,
                row.physical_bytes as f64 / 1e6,
                row.referenced_bytes as f64 / 1e6,
                row.dedup_ratio,
                row.wall_secs,
            );
        }
        Report {
            title: "Fleet scaling: concurrent multi-client sync into one sharded store".to_string(),
            body,
        }
    }

    /// Renders the heterogeneous scenario suite: per-profile completion
    /// distributions, per-link goodput, and the GC policy comparison of the
    /// churning fleet.
    pub fn heterogeneous(suite: &HeteroSuite) -> Report {
        let mut body = String::new();
        let _ = writeln!(
            body,
            "{} clients, {} rounds of {}, churn: {} leavers / {} joiners",
            suite.clients, suite.rounds, suite.workload, suite.leavers, suite.joiners
        );
        let _ = writeln!(body, "\ncompletion time by service profile (simulated seconds):");
        let _ = writeln!(
            body,
            "{:<16} {:>7} {:>10} {:>10} {:>10} {:>10}",
            "service", "clients", "mean", "min", "max", "stddev"
        );
        for (service, stats) in &suite.completion_by_service {
            let _ = writeln!(
                body,
                "{:<16} {:>7} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                service, stats.count, stats.mean, stats.min, stats.max, stats.std_dev
            );
        }
        let _ = writeln!(body, "\ngoodput by access link (Mb/s, simulated):");
        let _ = writeln!(body, "{:<16} {:>12}", "link", "goodput Mb/s");
        for (link, bps) in &suite.goodput_by_link {
            let _ = writeln!(body, "{:<16} {:>12.3}", link, bps / 1e6);
        }
        let _ = writeln!(body, "\ngarbage collection over churn (identical schedule per policy):");
        let _ = writeln!(
            body,
            "{:<12} {:>12} {:>12} {:>8} {:>10} {:>9}",
            "policy", "physical MB", "reclaimed MB", "freed", "manifests", "dedup x"
        );
        for row in &suite.gc_rows {
            let _ = writeln!(
                body,
                "{:<12} {:>12.2} {:>12.2} {:>8} {:>10} {:>9.2}",
                row.policy,
                row.physical_bytes as f64 / 1e6,
                row.reclaimed_bytes as f64 / 1e6,
                row.freed_chunks,
                row.manifest_deletes,
                row.dedup_ratio,
            );
        }
        Report {
            title: "Heterogeneous fleet: profiles x links x churn with a GC'd store".to_string(),
            body,
        }
    }

    /// Renders the restore suite: per-link download goodput against the
    /// same link's upload goodput (the asymmetry table), time-to-first-byte,
    /// and the cross-user dedup savings of the down path.
    pub fn restore(suite: &RestoreSuite) -> Report {
        let mut body = String::new();
        let _ = writeln!(
            body,
            "{} clients ({} pullers), {} rounds of {}, one source departs after round 0",
            suite.clients, suite.pullers, suite.rounds, suite.workload
        );
        let _ = writeln!(body, "\nrestore vs upload goodput by access link (Mb/s, simulated):");
        let _ = writeln!(
            body,
            "{:<10} {:>8} {:>14} {:>14} {:>10}",
            "link", "pullers", "restore Mb/s", "upload Mb/s", "ttfb s"
        );
        for row in &suite.per_link {
            let _ = writeln!(
                body,
                "{:<10} {:>8} {:>14.3} {:>14.3} {:>10.3}",
                row.link,
                row.pullers,
                row.restore_goodput_bps / 1e6,
                row.upload_goodput_bps / 1e6,
                row.ttfb_secs,
            );
        }
        let _ = writeln!(body, "\ndown-path volume:");
        let _ = writeln!(
            body,
            "  restored {:.2} MB, downloaded {:.2} MB, dedup saved {:.2} MB ({:.0}%), {} clean failures",
            suite.restored_logical_bytes as f64 / 1e6,
            suite.downloaded_payload as f64 / 1e6,
            suite.dedup_saved_bytes as f64 / 1e6,
            suite.dedup_saved_fraction() * 100.0,
            suite.failures,
        );
        body.push('\n');
        hist_line(&mut body, "restore", &suite.restore_hist);
        Report { title: "Restore: fleets pulling other users' content back down".to_string(), body }
    }

    /// Renders the temporal schedule suite: sync/idle round accounting, the
    /// start-up delay and completion distributions, the concurrency
    /// high-water mark against its lock-step control, and the
    /// background-vs-payload byte split.
    pub fn schedule(suite: &ScheduleSuite) -> Report {
        let mut body = String::new();
        let _ = writeln!(
            body,
            "{} clients, {} rounds of {}, think {}, jitter <= {:.0}s, activation {:.2}",
            suite.clients,
            suite.rounds,
            suite.workload,
            suite.think,
            suite.arrival_jitter_s,
            suite.activation,
        );
        let _ = writeln!(
            body,
            "\nrounds: {} synced, {} idle ({:.0}% idle, keep-alive signalling only)",
            suite.sync_rounds,
            suite.idle_rounds,
            suite.idle_fraction() * 100.0
        );
        let _ = writeln!(body, "\ntemporal distributions (simulated seconds):");
        let _ = writeln!(
            body,
            "{:<22} {:>7} {:>10} {:>10} {:>10} {:>10}",
            "quantity", "samples", "mean", "min", "max", "stddev"
        );
        for (name, stats) in
            [("startup delay", &suite.startup_delay), ("completion", &suite.completion)]
        {
            let _ = writeln!(
                body,
                "{:<22} {:>7} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                name, stats.count, stats.mean, stats.min, stats.max, stats.std_dev
            );
        }
        hist_line(&mut body, "sync commit", &suite.sync_hist);
        let _ = writeln!(
            body,
            "\narrival spread {:.2}s; concurrency peak {} (lock-step control: {})",
            suite.first_sync_spread_s, suite.concurrency_peak, suite.lockstep_concurrency_peak,
        );
        let _ = writeln!(
            body,
            "background vs payload: {:.1} kB signalling vs {:.2} MB storage ({:.1}% background)",
            suite.background_wire_bytes as f64 / 1e3,
            suite.payload_wire_bytes as f64 / 1e6,
            suite.background_fraction() * 100.0,
        );
        let _ = writeln!(body, "\nper-client rounds (synced/idle):");
        let _ = writeln!(body, "{:<12} {:>7} {:>6}", "user", "synced", "idle");
        for (user, synced, idle) in &suite.per_client_rounds {
            let _ = writeln!(body, "{:<12} {:>7} {:>6}", user, synced, idle);
        }
        Report {
            title: "Schedule: think times, idle rounds and arrival jitter on a virtual clock"
                .to_string(),
            body,
        }
    }

    /// Renders the fleet-scale suite: the provider's view of a 100k+ client
    /// population on the event heap — commits per virtual second, the
    /// concurrency peak, population-scale dedup and the server load curve.
    pub fn fleet_scale(suite: &FleetScaleSuite) -> Report {
        let mut body = String::new();
        let _ = writeln!(
            body,
            "{} lightweight clients, {} commits each of {}, over {:.0}s of virtual time",
            suite.clients, suite.commits_per_client, suite.workload, suite.horizon_s,
        );
        let _ = writeln!(
            body,
            "\n{:>12} {:>10} {:>12} {:>12} {:>9} {:>14} {:>12} {:>9}",
            "commits",
            "files",
            "logical MB",
            "physical MB",
            "dedup x",
            "commits/vsec",
            "conc peak",
            "wall s"
        );
        let _ = writeln!(
            body,
            "{:>12} {:>10} {:>12.2} {:>12.2} {:>9.2} {:>14.2} {:>12} {:>9.2}",
            suite.commits,
            suite.files,
            suite.logical_mb,
            suite.physical_mb,
            suite.dedup_ratio,
            suite.commits_per_vsec,
            suite.concurrency_peak,
            suite.wall_secs,
        );
        body.push('\n');
        hist_line(&mut body, "transfer", &suite.transfer_hist);
        let _ = writeln!(
            body,
            "\nserver load curve over the {:.0}s active span ({} buckets, commits per bucket):",
            suite.virtual_span_s,
            suite.load_curve.len(),
        );
        let top = suite.load_curve.iter().copied().max().unwrap_or(0).max(1);
        for (i, &count) in suite.load_curve.iter().enumerate() {
            let bar = "#".repeat((count * 40).div_ceil(top) as usize);
            let _ = writeln!(body, "  [{i:>2}] {count:>8} {bar}");
        }
        Report {
            title: "Fleet scale: 100k+ event-driven clients against the sharded store".to_string(),
            body,
        }
    }

    /// Renders the trace-overhead suite: what the sharded packet capture of
    /// a fleet-scale run contains, and what it cost in host time next to
    /// the traceless baseline (the wall figures are text-only; the bound
    /// itself is asserted by the `trace_overhead` Criterion bench).
    pub fn trace_overhead(suite: &TraceOverheadSuite) -> Report {
        let mut body = String::new();
        let _ = writeln!(
            body,
            "{} clients, {} commits, captured on one trace shard per worker",
            suite.clients, suite.commits,
        );
        let _ = writeln!(
            body,
            "\n{:>10} {:>8} {:>8} {:>10} {:>12} {:>10} {:>13} {:>11}",
            "packets",
            "flows",
            "syns",
            "wire MB",
            "logical MB",
            "overhead",
            "packets/vsec",
            "pkts/commit"
        );
        let _ = writeln!(
            body,
            "{:>10} {:>8} {:>8} {:>10.2} {:>12.2} {:>10.4} {:>13.2} {:>11.1}",
            suite.packets,
            suite.flows,
            suite.syns,
            suite.wire_mb,
            suite.logical_mb,
            suite.overhead_ratio,
            suite.packets_per_vsec,
            suite.packets_per_commit,
        );
        let _ = writeln!(
            body,
            "\nwall time: traced {:.2}s vs traceless {:.2}s ({:.2}x)",
            suite.traced_wall_secs,
            suite.baseline_wall_secs,
            suite.traced_wall_secs / suite.baseline_wall_secs.max(f64::MIN_POSITIVE),
        );
        Report { title: "Trace overhead: sharded packet capture at fleet scale".to_string(), body }
    }

    /// Renders the partitioned run's split accounting: one row per
    /// partition plus the skew/overhead figures. The merged population
    /// itself renders through [`Report::fleet_scale`] — bit-identical to
    /// the unsliced run, which is the whole point.
    pub fn partition(suite: &PartitionSuite) -> Report {
        let mut body = String::new();
        let _ = writeln!(
            body,
            "{} clients across {} partitions (shared store, per-partition sub-heaps)",
            suite.merged.clients, suite.partitions,
        );
        let _ = writeln!(
            body,
            "\n{:>4} {:>9} {:>9} {:>7} {:>13} {:>13}",
            "part", "clients", "commits", "waves", "first start s", "last end s"
        );
        for row in &suite.rows {
            let _ = writeln!(
                body,
                "{:>4} {:>9} {:>9} {:>7} {:>13.2} {:>13.2}",
                row.index, row.clients, row.commits, row.waves, row.first_start_s, row.last_end_s,
            );
        }
        let _ = writeln!(
            body,
            "\ncommit skew {:.4} (max/mean), finish skew {:.2}s, merge overhead {:.4} (part waves / merged waves)",
            suite.commit_skew, suite.finish_skew_s, suite.merge_overhead,
        );
        let _ = writeln!(
            body,
            "sum-of-parts checks: commits {:.1}, bytes {:.1}, hist p99 {:.1}, load-curve overlap {:.1} (all exactly 1 by the merge invariants)",
            suite.commits_sum_ratio, suite.bytes_sum_ratio, suite.hist_p99_ratio, suite.curve_overlap,
        );
        Report {
            title: "Partitioned fleet: worker-sharded clients merged bit-identically".to_string(),
            body,
        }
    }

    /// Renders the fault-injection suite: per `link x policy` cell the
    /// retry spend, the wasted/salvaged byte split, the completion-time
    /// inflation against the fault-free control, and the SHA-256 verdicts
    /// of the resumed restores.
    pub fn faults(suite: &FaultsSuite) -> Report {
        let mut body = String::new();
        let _ = writeln!(
            body,
            "{} per client, identical seeded outage schedules per link, policies: {}",
            suite.workload,
            suite.policies.join(", "),
        );
        let _ = writeln!(
            body,
            "\n{:<10} {:<12} {:>5} {:>7} {:>9} {:>11} {:>11} {:>9} {:>9} {:>8}",
            "link",
            "policy",
            "cuts",
            "retries",
            "abandons",
            "wasted kB",
            "salvage kB",
            "sync x",
            "restore x",
            "sha256"
        );
        for row in &suite.per_link {
            for cell in &row.cells {
                let _ = writeln!(
                    body,
                    "{:<10} {:<12} {:>5} {:>7} {:>9} {:>11.1} {:>11.1} {:>9.2} {:>9.2} {:>5}/{}",
                    row.link,
                    cell.policy,
                    cell.stats.interruptions,
                    cell.stats.retries,
                    cell.abandoned_chunks + cell.files_abandoned,
                    cell.stats.wasted_bytes as f64 / 1e3,
                    cell.stats.salvaged_bytes as f64 / 1e3,
                    cell.sync_inflation,
                    cell.restore_inflation,
                    cell.stats.checksums_verified,
                    cell.stats.checksum_failures,
                );
            }
        }
        let _ = writeln!(body, "\nper-policy totals:");
        for policy in &suite.policies {
            let stats = suite.stats_for(policy);
            let _ = writeln!(
                body,
                "  {:<12} completed {:>4.0}%, wasted ratio {:.3}, resume efficiency {:.3}, backoff {:.1}s",
                policy,
                suite.completed_fraction(policy) * 100.0,
                suite.wasted_ratio(policy),
                stats.resume_efficiency(),
                stats.backoff_wait.as_secs_f64(),
            );
        }
        body.push('\n');
        hist_line(&mut body, "backoff wait", &suite.backoff_hist);
        Report {
            title: "Faults: seeded outages, resumable sessions and retry policies".to_string(),
            body,
        }
    }

    /// Serialises any serialisable payload as pretty JSON (used by the repro
    /// harness to dump machine-readable results next to the text tables).
    pub fn to_json<T: Serialize>(value: &T) -> String {
        serde_json::to_string_pretty(value).unwrap_or_else(|e| format!("{{\"error\": \"{e}\"}}"))
    }
}

/// Which Fig. 6 panel to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig6Metric {
    /// Fig. 6a: synchronisation start-up time (seconds).
    Startup,
    /// Fig. 6b: completion time (seconds).
    Completion,
    /// Fig. 6c: protocol overhead (ratio).
    Overhead,
}

impl Fig6Metric {
    fn extract(&self, row: &crate::benchmarks::PerformanceRow) -> f64 {
        match self {
            Fig6Metric::Startup => row.startup_secs.mean,
            Fig6Metric::Completion => row.completion_secs.mean,
            Fig6Metric::Overhead => row.overhead.mean,
        }
    }

    fn panel(&self) -> &'static str {
        match self {
            Fig6Metric::Startup => "a",
            Fig6Metric::Completion => "b",
            Fig6Metric::Overhead => "c",
        }
    }

    fn describe(&self) -> &'static str {
        match self {
            Fig6Metric::Startup => "synchronization start-up time (s)",
            Fig6Metric::Completion => "completion time (s)",
            Fig6Metric::Overhead => "protocol overhead (traffic / payload)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::run_suite_with_workloads;
    use crate::capability::{ChunkingVerdict, ServiceCapabilities};
    use crate::testbed::Testbed;
    use cloudsim_workload::{BatchSpec, FileKind};

    fn sample_matrix() -> CapabilityMatrix {
        CapabilityMatrix {
            rows: vec![ServiceCapabilities {
                service: "Dropbox".to_string(),
                chunking: ChunkingVerdict::Fixed { size: 4 * 1024 * 1024 },
                bundling: true,
                compression: "always".to_string(),
                deduplication: true,
                delta_encoding: true,
            }],
        }
    }

    #[test]
    fn table1_rendering_contains_the_expected_cells() {
        let report = Report::table1(&sample_matrix());
        assert!(report.title.contains("Table 1"));
        assert!(report.body.contains("Dropbox"));
        assert!(report.body.contains("4 MB"));
        assert!(report.body.contains("always"));
        let json = Report::to_json(&sample_matrix());
        assert!(json.contains("\"bundling\": true"));
    }

    #[test]
    fn figure6_rendering_has_one_row_per_service() {
        let testbed = Testbed::new(31);
        let suite = run_suite_with_workloads(
            &testbed,
            &[BatchSpec::new(1, 50_000, FileKind::RandomBinary)],
            1,
        );
        for metric in [Fig6Metric::Startup, Fig6Metric::Completion, Fig6Metric::Overhead] {
            let report = Report::figure6(&suite, metric);
            assert!(report.body.lines().count() >= 6, "{}", report.body);
            assert!(report.body.contains("Dropbox"));
            assert!(report.body.contains("1x50kB"));
        }
    }

    #[test]
    fn figure3_and_4_and_5_render_series() {
        let fig3 = Report::figure3(&[(
            "Google Drive".to_string(),
            vec![(0.0, 1), (10.0, 50), (30.0, 100)],
        )]);
        assert!(fig3.body.contains("100 connections"));
        let fig4 = Report::figure4(
            &[(
                "Dropbox".to_string(),
                vec![DeltaPoint { file_size: 1_000_000, uploaded: 120_000 }],
            )],
            "append",
        );
        assert!(fig4.body.contains("Dropbox"));
        let fig5 = Report::figure5(
            &[(
                "Wuala".to_string(),
                vec![CompressionPoint { file_size: 1_000_000, uploaded: 1_000_000 }],
            )],
            "text",
        );
        assert!(fig5.body.contains("Wuala"));
        assert!(fig5.title.contains("text"));
    }
}
