//! Capability detection (§4 of the paper, Table 1, Fig. 3–5).
//!
//! Each detector reproduces one of the paper's tests: it crafts the file
//! batch the test prescribes, synchronises it through the service under test,
//! and then decides from the *captured traffic alone* whether the capability
//! is implemented — never by peeking at the service profile. The detected
//! matrix is then compared against Table 1.

use crate::testbed::Testbed;
use cloudsim_services::ServiceProfile;
use cloudsim_trace::analysis::{self, BurstConfig, ThroughputConfig};
use cloudsim_trace::{FlowKind, SimDuration, SimTime};
use cloudsim_workload::{generate, FileKind, GeneratedFile, Mutation};
use serde::{Deserialize, Serialize};

/// The chunking verdict of §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChunkingVerdict {
    /// No pauses during a large upload: single-object transfers.
    None,
    /// Consistent pauses every ~`size` bytes.
    Fixed {
        /// Inferred chunk size in bytes.
        size: u64,
    },
    /// Pauses at varying intervals (content-defined chunking).
    Variable,
}

impl ChunkingVerdict {
    /// Table-1 wording ("no", "4 MB", "var.").
    pub fn describe(&self) -> String {
        match self {
            ChunkingVerdict::None => "no".to_string(),
            ChunkingVerdict::Fixed { size } => {
                format!("{} MB", (*size as f64 / (1024.0 * 1024.0)).round() as u64)
            }
            ChunkingVerdict::Variable => "var.".to_string(),
        }
    }
}

/// Detected capabilities of one service (the rows of Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceCapabilities {
    /// Service name.
    pub service: String,
    /// §4.1 chunking verdict.
    pub chunking: ChunkingVerdict,
    /// §4.2 bundling verdict.
    pub bundling: bool,
    /// §4.5 compression verdict ("no", "always", "smart").
    pub compression: String,
    /// §4.3 deduplication verdict.
    pub deduplication: bool,
    /// §4.4 delta-encoding verdict.
    pub delta_encoding: bool,
}

/// Table 1: one row per service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapabilityMatrix {
    /// Rows in the paper's service order.
    pub rows: Vec<ServiceCapabilities>,
}

impl CapabilityMatrix {
    /// Runs the full §4 battery for every service.
    pub fn detect_all(testbed: &Testbed) -> CapabilityMatrix {
        let rows =
            ServiceProfile::all().into_iter().map(|p| detect_capabilities(testbed, &p)).collect();
        CapabilityMatrix { rows }
    }

    /// Looks up one service's row by name.
    pub fn row(&self, service: &str) -> Option<&ServiceCapabilities> {
        self.rows.iter().find(|r| r.service == service)
    }
}

/// Runs every capability detector against one service.
pub fn detect_capabilities(testbed: &Testbed, profile: &ServiceProfile) -> ServiceCapabilities {
    ServiceCapabilities {
        service: profile.name().to_string(),
        chunking: detect_chunking(testbed, profile),
        bundling: detect_bundling(testbed, profile),
        compression: detect_compression(testbed, profile),
        deduplication: detect_deduplication(testbed, profile),
        delta_encoding: detect_delta_encoding(testbed, profile),
    }
}

/// §4.1 — chunking: upload a single large file and look for pauses in the
/// upload throughput. Pauses preceded by at least ~1 MB of payload delimit
/// chunks; chunk sizes within ±12 % of each other are called "fixed".
pub fn detect_chunking(testbed: &Testbed, profile: &ServiceProfile) -> ChunkingVerdict {
    let content = generate(FileKind::RandomBinary, 18 * 1024 * 1024, 0xC0FFEE);
    let files = vec![GeneratedFile { path: "capability/chunking.bin".to_string(), content }];
    let run = testbed.run_sync_files(profile, &files, 0);
    // Only the storage flows carry the file content; control chatter in the
    // same capture must not be mistaken for chunk boundaries.
    let storage_packets: Vec<_> =
        run.packets.iter().filter(|p| p.kind == FlowKind::Storage).cloned().collect();
    let cfg = ThroughputConfig {
        bin: SimDuration::from_millis(100),
        min_pause: SimDuration::from_millis(40),
    };
    let pauses = analysis::detect_pauses(&storage_packets, cfg);
    let mut chunk_sizes: Vec<u64> =
        pauses.iter().map(|p| p.bytes_before).filter(|b| *b >= 1024 * 1024).collect();
    if chunk_sizes.is_empty() {
        return ChunkingVerdict::None;
    }
    // The last chunk of a file is a partial one; judge regularity by how many
    // pauses sit within ±12 % of the median inter-pause volume.
    chunk_sizes.sort_unstable();
    let median = chunk_sizes[chunk_sizes.len() / 2] as f64;
    let consistent =
        chunk_sizes.iter().filter(|s| (**s as f64 - median).abs() / median <= 0.12).count();
    if consistent * 10 >= chunk_sizes.len() * 6 {
        ChunkingVerdict::Fixed { size: median.round() as u64 }
    } else {
        ChunkingVerdict::Variable
    }
}

/// §4.2 — bundling: upload 100 × 10 kB and inspect how many storage
/// connections were opened and how many upload bursts appear. One connection
/// per file (or several) means no bundling; one reused connection with one
/// burst per file (application-level acks) also means no bundling; a small
/// number of large bursts means the files were bundled.
pub fn detect_bundling(testbed: &Testbed, profile: &ServiceProfile) -> bool {
    let spec = cloudsim_workload::BatchSpec::new(100, 10_000, FileKind::RandomBinary);
    let run = testbed.run_sync(profile, &spec, 0);
    let storage_syns = analysis::syn_count_by_kind(&run.packets, FlowKind::Storage);
    if storage_syns >= 50 {
        return false; // a connection per file
    }
    let bursts = analysis::detect_bursts(
        &run.packets,
        BurstConfig { max_gap: SimDuration::from_millis(35), min_bytes: 2_000 },
    );
    // Sequential submission produces roughly one burst per file; bundling
    // collapses the batch into a handful of large bursts.
    bursts.len() <= 25
}

/// §4.5 — compression: upload highly compressible text, pure random bytes and
/// a fake JPEG of the same size; compare uploaded volumes. Returns Table-1
/// wording: "no", "always" or "smart".
pub fn detect_compression(testbed: &Testbed, profile: &ServiceProfile) -> String {
    const SIZE: usize = 1_000_000;
    let upload_for = |kind: FileKind, rep: u64| -> u64 {
        let content = generate(kind, SIZE, 0xBEEF ^ rep);
        let files = vec![GeneratedFile {
            path: format!("capability/compression-{}.{}", kind.label(), kind.extension()),
            content,
        }];
        testbed.run_sync_files(profile, &files, rep).uploaded_payload()
    };
    let text = upload_for(FileKind::Text, 1);
    let random = upload_for(FileKind::RandomBinary, 2);
    let fake_jpeg = upload_for(FileKind::FakeJpeg, 3);

    let compresses_text = (text as f64) < 0.85 * SIZE as f64;
    let compresses_fake_jpeg = (fake_jpeg as f64) < 0.85 * SIZE as f64;
    let _ = random; // random bytes never compress; kept for the Fig. 5b series

    if !compresses_text {
        "no".to_string()
    } else if compresses_fake_jpeg {
        "always".to_string()
    } else {
        "smart".to_string()
    }
}

/// §4.3 — deduplication: upload a random file, then a same-payload replica
/// under another name, then a copy in a third folder, then delete everything
/// and restore the original. Dedup is detected when the replicas generate no
/// storage traffic; the delete/restore step checks that it persists.
pub fn detect_deduplication(testbed: &Testbed, profile: &ServiceProfile) -> bool {
    let content = generate(FileKind::RandomBinary, 400_000, 0xDED0);
    let (replica_bytes, _packets) = testbed.run_scripted(profile, 0, |sim, client, t0| {
        let original = vec![GeneratedFile {
            path: "folder1/original.bin".to_string(),
            content: content.clone(),
        }];
        let out1 = client.sync_batch(sim, &original, t0 + SimDuration::from_secs(5));

        let before = sim.trace().wire_bytes(FlowKind::Storage);
        // Replica with a different name in a second folder.
        let replica = vec![GeneratedFile {
            path: "folder2/replica.bin".to_string(),
            content: content.clone(),
        }];
        let out2 = client.sync_batch(sim, &replica, out1.completed_at + SimDuration::from_secs(30));
        // Copy into a third folder.
        let copy =
            vec![GeneratedFile { path: "folder3/copy.bin".to_string(), content: content.clone() }];
        let out3 = client.sync_batch(sim, &copy, out2.completed_at + SimDuration::from_secs(30));
        // Delete all copies, then place the original back.
        let mut t = out3.completed_at + SimDuration::from_secs(10);
        for path in ["folder1/original.bin", "folder2/replica.bin", "folder3/copy.bin"] {
            t = client.delete_file(sim, path, t + SimDuration::from_secs(2));
        }
        let restored = vec![GeneratedFile {
            path: "folder1/original.bin".to_string(),
            content: content.clone(),
        }];
        client.sync_batch(sim, &restored, t + SimDuration::from_secs(30));
        let after = sim.trace().wire_bytes(FlowKind::Storage);
        after - before
    });
    // With dedup, the replicas and the restore cause (almost) no storage
    // traffic; without it, three more full uploads happen (~1.2 MB).
    replica_bytes < content.len() as u64 / 2
}

/// §4.4 — delta encoding: upload a file, append 100 kB, re-sync, and compare
/// the storage volume of the second sync against the file size. Only a client
/// with delta encoding uploads roughly the appended amount.
pub fn detect_delta_encoding(testbed: &Testbed, profile: &ServiceProfile) -> bool {
    let original = generate(FileKind::RandomBinary, 1_500_000, 0xDE17A);
    let appended = Mutation::Append { len: 100_000 }.apply(&original, 0xDE17B);
    let (second_sync_bytes, _packets) = testbed.run_scripted(profile, 0, |sim, client, t0| {
        let first = vec![GeneratedFile {
            path: "capability/delta.bin".to_string(),
            content: original.clone(),
        }];
        let out1 = client.sync_batch(sim, &first, t0 + SimDuration::from_secs(5));
        let before = sim.trace().wire_bytes(FlowKind::Storage);
        let second = vec![GeneratedFile {
            path: "capability/delta.bin".to_string(),
            content: appended.clone(),
        }];
        client.sync_batch(sim, &second, out1.completed_at + SimDuration::from_secs(30));
        sim.trace().wire_bytes(FlowKind::Storage) - before
    });
    // Delta: ~100-200 kB on the wire. Full re-upload: >1.5 MB (dedup does not
    // help because the single chunk's content changed).
    second_sync_bytes < 800_000
}

/// One point of the Fig. 4 series: file size vs. bytes uploaded after a
/// modification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeltaPoint {
    /// Original file size in bytes.
    pub file_size: u64,
    /// Storage payload uploaded when syncing the modified revision.
    pub uploaded: u64,
}

/// Fig. 4: uploaded volume after appending (left plot) or inserting at a
/// random offset (right plot) 100 kB into files of increasing size.
pub fn delta_encoding_series(
    testbed: &Testbed,
    profile: &ServiceProfile,
    sizes: &[u64],
    random_offset: bool,
) -> Vec<DeltaPoint> {
    sizes
        .iter()
        .map(|&size| {
            let original = generate(FileKind::RandomBinary, size as usize, 0xF160 ^ size);
            let mutation = if random_offset {
                Mutation::InsertRandom { len: 100_000 }
            } else {
                Mutation::Append { len: 100_000 }
            };
            let modified = mutation.apply(&original, 0xF161 ^ size);
            let (uploaded, _): (u64, _) = testbed.run_scripted(profile, size, |sim, client, t0| {
                let first = vec![GeneratedFile {
                    path: "fig4/file.bin".to_string(),
                    content: original.clone(),
                }];
                let out1 = client.sync_batch(sim, &first, t0 + SimDuration::from_secs(5));
                let before: u64 = analysis::uploaded_payload(&sim.packets());
                let second = vec![GeneratedFile {
                    path: "fig4/file.bin".to_string(),
                    content: modified.clone(),
                }];
                client.sync_batch(sim, &second, out1.completed_at + SimDuration::from_secs(30));
                analysis::uploaded_payload(&sim.packets()) - before
            });
            DeltaPoint { file_size: size, uploaded }
        })
        .collect()
}

/// One point of the Fig. 5 series: file size vs. bytes uploaded for a content
/// type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompressionPoint {
    /// File size in bytes.
    pub file_size: u64,
    /// Storage payload uploaded.
    pub uploaded: u64,
}

/// Fig. 5: bytes uploaded when syncing files of the given kind and sizes.
pub fn compression_series(
    testbed: &Testbed,
    profile: &ServiceProfile,
    kind: FileKind,
    sizes: &[u64],
) -> Vec<CompressionPoint> {
    sizes
        .iter()
        .map(|&size| {
            let content = generate(kind, size as usize, 0xF150 ^ size);
            let files =
                vec![GeneratedFile { path: format!("fig5/file.{}", kind.extension()), content }];
            let run = testbed.run_sync_files(profile, &files, size);
            CompressionPoint { file_size: size, uploaded: run.uploaded_payload() }
        })
        .collect()
}

/// Fig. 3: the cumulative TCP-SYN-versus-time series while uploading
/// 100 × 10 kB files. Returns `(seconds since sync start, cumulative SYNs)`.
pub fn syn_series(testbed: &Testbed, profile: &ServiceProfile) -> Vec<(f64, u64)> {
    let spec = cloudsim_workload::BatchSpec::new(100, 10_000, FileKind::RandomBinary);
    let run = testbed.run_sync(profile, &spec, 0);
    let series = analysis::cumulative_syns(&run.packets);
    let origin = run.packets.first().map(|p| p.timestamp).unwrap_or(SimTime::ZERO);
    series.points().map(|(t, v)| ((t - origin).as_secs_f64(), v as u64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn testbed() -> Testbed {
        Testbed::new(7)
    }

    #[test]
    fn chunking_detection_matches_table1() {
        let tb = testbed();
        let dropbox = detect_chunking(&tb, &ServiceProfile::dropbox());
        match dropbox {
            ChunkingVerdict::Fixed { size } => {
                assert!((3_500_000..4_700_000).contains(&size), "Dropbox chunk {size}");
            }
            other => panic!("Dropbox should use fixed chunks, got {other:?}"),
        }
        let gdrive = detect_chunking(&tb, &ServiceProfile::google_drive());
        match gdrive {
            ChunkingVerdict::Fixed { size } => {
                assert!((7_000_000..9_400_000).contains(&size), "Google Drive chunk {size}");
            }
            other => panic!("Google Drive should use fixed chunks, got {other:?}"),
        }
        assert_eq!(detect_chunking(&tb, &ServiceProfile::cloud_drive()), ChunkingVerdict::None);
        assert_eq!(detect_chunking(&tb, &ServiceProfile::skydrive()), ChunkingVerdict::Variable);
        assert_eq!(detect_chunking(&tb, &ServiceProfile::wuala()), ChunkingVerdict::Variable);
    }

    #[test]
    fn bundling_only_detected_for_dropbox() {
        let tb = testbed();
        assert!(detect_bundling(&tb, &ServiceProfile::dropbox()));
        assert!(!detect_bundling(&tb, &ServiceProfile::google_drive()));
        assert!(!detect_bundling(&tb, &ServiceProfile::cloud_drive()));
        assert!(!detect_bundling(&tb, &ServiceProfile::skydrive()));
        assert!(!detect_bundling(&tb, &ServiceProfile::wuala()));
    }

    #[test]
    fn compression_verdicts_match_table1() {
        let tb = testbed();
        assert_eq!(detect_compression(&tb, &ServiceProfile::dropbox()), "always");
        assert_eq!(detect_compression(&tb, &ServiceProfile::google_drive()), "smart");
        assert_eq!(detect_compression(&tb, &ServiceProfile::skydrive()), "no");
        assert_eq!(detect_compression(&tb, &ServiceProfile::cloud_drive()), "no");
    }

    #[test]
    fn dedup_and_delta_verdicts_match_table1() {
        let tb = testbed();
        assert!(detect_deduplication(&tb, &ServiceProfile::dropbox()));
        assert!(detect_deduplication(&tb, &ServiceProfile::wuala()));
        assert!(!detect_deduplication(&tb, &ServiceProfile::google_drive()));
        assert!(detect_delta_encoding(&tb, &ServiceProfile::dropbox()));
        assert!(!detect_delta_encoding(&tb, &ServiceProfile::skydrive()));
    }

    #[test]
    fn verdict_wording_matches_the_table() {
        assert_eq!(ChunkingVerdict::None.describe(), "no");
        assert_eq!(ChunkingVerdict::Variable.describe(), "var.");
        assert_eq!(ChunkingVerdict::Fixed { size: 4 * 1024 * 1024 }.describe(), "4 MB");
    }

    #[test]
    fn fig4_series_shapes() {
        let tb = testbed();
        let sizes = [500_000u64, 1_000_000];
        let dropbox = delta_encoding_series(&tb, &ServiceProfile::dropbox(), &sizes, false);
        let skydrive = delta_encoding_series(&tb, &ServiceProfile::skydrive(), &sizes, false);
        // Dropbox uploads ~the appended 100 kB regardless of file size;
        // SkyDrive re-uploads the whole (grown) file.
        for p in &dropbox {
            assert!(p.uploaded < 400_000, "Dropbox uploaded {} for {}", p.uploaded, p.file_size);
        }
        for p in &skydrive {
            assert!(p.uploaded > p.file_size, "SkyDrive should re-upload everything");
        }
    }

    #[test]
    fn fig3_series_distinguishes_connection_behaviour() {
        let tb = testbed();
        let gdrive = syn_series(&tb, &ServiceProfile::google_drive());
        let clouddrive = syn_series(&tb, &ServiceProfile::cloud_drive());
        let gd_total = gdrive.last().map(|(_, v)| *v).unwrap_or(0);
        let cd_total = clouddrive.last().map(|(_, v)| *v).unwrap_or(0);
        assert!(gd_total >= 100, "Google Drive opened {gd_total} connections");
        assert!(cd_total >= 350, "Cloud Drive opened {cd_total} connections");
        assert!(cd_total > 3 * gd_total / 2);
    }
}
