//! Restore suite: fleets pulling other users' content back down.
//!
//! The paper's performance analysis (§6) frames both directions of the sync
//! protocol, but a single test computer only ever measured its own uploads.
//! This suite opens the read path at fleet scale: a mixed-link fleet where
//! half the slots are *downloaders* that, after every sync round, pull
//! other users' namespaces back through their own asymmetric access links.
//! It reports what the down path alone can show:
//!
//! * **restore goodput per link class** — ADSL's 1 up / 8 down split means
//!   a client restores several times faster than it uploads; the suite
//!   prints both directions side by side,
//! * **time-to-first-byte** — how long after the manifest request the first
//!   restored payload byte arrives (the §6 latency story for reads),
//! * **cross-user dedup savings on the down path** — shared-pool content a
//!   puller already holds locally never travels,
//! * **clean failures** — one pulled source hard-leaves after round 0, so
//!   every run exercises the restore-after-GC path (typed errors, counted,
//!   never a panic).
//!
//! Everything is a pure function of the seed, so the suite is part of the
//! CI bench-regression gate (`restore.*` metrics).

use cloudsim_services::fleet::{run_fleet_concurrent, FleetSpec};
use cloudsim_services::{AccessLink, GcPolicy, ServiceProfile};
use cloudsim_trace::HistogramSummary;
use serde::Serialize;

/// Per-access-link row of the restore suite.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RestoreLinkRow {
    /// Stable link preset name.
    pub link: String,
    /// Pullers on this link.
    pub pullers: usize,
    /// Restore goodput in bits per simulated second (restored plaintext
    /// over the slowest puller's restore time).
    pub restore_goodput_bps: f64,
    /// Upload goodput of the same link's clients, for the asymmetry
    /// comparison.
    pub upload_goodput_bps: f64,
    /// Mean time-to-first-restored-byte in seconds.
    pub ttfb_secs: f64,
}

/// The restore suite's results.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RestoreSuite {
    /// Number of client slots.
    pub clients: usize,
    /// Slots that pull other users' content.
    pub pullers: usize,
    /// Rounds the fleet ran.
    pub rounds: usize,
    /// Per-batch workload label (e.g. "5x128kB").
    pub workload: String,
    /// Plaintext bytes the fleet restored.
    pub restored_logical_bytes: u64,
    /// Payload bytes that actually travelled downstream.
    pub downloaded_payload: u64,
    /// Plaintext bytes the down-path dedup checks kept off the wire.
    pub dedup_saved_bytes: u64,
    /// Clean restore failures (pulls of the departed source).
    pub failures: usize,
    /// Distribution of end-to-end restore durations across every pull.
    pub restore_hist: HistogramSummary,
    /// One row per access link that hosted at least one puller.
    pub per_link: Vec<RestoreLinkRow>,
}

impl RestoreSuite {
    /// The row of one link, by preset name.
    pub fn link(&self, name: &str) -> Option<&RestoreLinkRow> {
        self.per_link.iter().find(|r| r.link == name)
    }

    /// Fraction of the restored plaintext that never travelled (0.0–1.0).
    pub fn dedup_saved_fraction(&self) -> f64 {
        if self.restored_logical_bytes == 0 {
            0.0
        } else {
            self.dedup_saved_bytes as f64 / self.restored_logical_bytes as f64
        }
    }
}

/// The canonical restore scenario: `clients` slots cycling through all four
/// link presets, the last half pulling two seeded sources each after every
/// round, three rounds of five 128 kB files (half shared pool). One pulled
/// source hard-leaves after round 0, so rounds 1+ exercise the clean-failure
/// path deterministically.
pub fn restore_spec(clients: usize, seed: u64) -> FleetSpec {
    assert!(clients >= 4, "the restore scenario needs at least four slots");
    let mut spec = FleetSpec::new(ServiceProfile::dropbox(), clients)
        .with_files(5, 128 * 1024)
        .with_batches(3)
        .with_seed(seed)
        .with_links(&AccessLink::all())
        .with_gc(GcPolicy::Eager)
        .with_restore_fan(clients / 2, 2);
    // Hard-churn the first source of the last puller after round 0: its
    // namespace is purged, so that puller's later rounds must fail cleanly.
    let victim = spec.slots[clients - 1].pull_from[0];
    spec.slots[victim].leave_after = Some(0);
    spec
}

/// Runs the canonical restore scenario with one OS thread per client and
/// assembles the suite.
pub fn run_restore(clients: usize, seed: u64) -> RestoreSuite {
    let spec = restore_spec(clients, seed);
    let run = run_fleet_concurrent(&spec);

    let restore_goodput = run.per_link_restore_goodput_bps();
    let upload_goodput = run.per_link_goodput_bps();
    let ttfb = run.per_link_restore_ttfb_secs();
    let per_link = restore_goodput
        .iter()
        .map(|(link, bps)| RestoreLinkRow {
            link: link.clone(),
            pullers: run
                .clients
                .iter()
                .filter(|c| &c.link == link && !c.restores.is_empty())
                .count(),
            restore_goodput_bps: *bps,
            upload_goodput_bps: upload_goodput
                .iter()
                .find(|(l, _)| l == link)
                .map(|(_, bps)| *bps)
                .unwrap_or(0.0),
            ttfb_secs: ttfb.iter().find(|(l, _)| l == link).map(|(_, s)| *s).unwrap_or(0.0),
        })
        .collect();

    RestoreSuite {
        clients,
        pullers: spec.slots.iter().filter(|s| !s.pull_from.is_empty()).count(),
        rounds: spec.rounds,
        workload: format!("{}x{}kB", spec.files_per_batch, spec.file_size / 1024),
        restored_logical_bytes: run.total_restored_logical_bytes(),
        downloaded_payload: run.total_downloaded_payload(),
        dedup_saved_bytes: run.restore_dedup_saved_bytes(),
        failures: run.total_restore_failures(),
        restore_hist: run.restore_duration_histogram().summary(),
        per_link,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The canonical 8-client suite, computed once and shared by the
    /// assertions below to keep debug test time in check.
    fn canonical() -> &'static RestoreSuite {
        static SUITE: OnceLock<RestoreSuite> = OnceLock::new();
        SUITE.get_or_init(|| run_restore(8, 0x42))
    }

    #[test]
    fn suite_covers_every_link_and_moves_bytes() {
        let suite = canonical();
        assert_eq!(suite.clients, 8);
        assert_eq!(suite.pullers, 4);
        // Eight clients over four links put one puller behind each preset.
        assert_eq!(suite.per_link.len(), 4);
        for row in &suite.per_link {
            assert_eq!(row.pullers, 1, "{}", row.link);
            assert!(row.restore_goodput_bps > 0.0, "{}", row.link);
            assert!(row.ttfb_secs > 0.0, "{}", row.link);
        }
        assert!(suite.restored_logical_bytes > 0);
        assert!(suite.downloaded_payload > 0);
        assert!(suite.downloaded_payload < suite.restored_logical_bytes);
    }

    #[test]
    fn restore_histogram_covers_every_pull_with_ordered_quantiles() {
        let suite = canonical();
        let hist = &suite.restore_hist;
        // 4 pullers x 2 sources x 3 rounds, minus the pulls the departed
        // victim (itself a puller) never performed after round 0; failed
        // pulls of its namespace still count.
        assert_eq!(hist.count, 20);
        assert!(hist.p50_s > 0.0);
        assert!(hist.p50_s <= hist.p90_s && hist.p90_s <= hist.p99_s && hist.p99_s <= hist.p999_s);
    }

    #[test]
    fn asymmetric_links_restore_faster_than_they_upload() {
        let suite = canonical();
        let adsl = suite.link("adsl").expect("adsl row");
        assert!(
            adsl.restore_goodput_bps > 2.0 * adsl.upload_goodput_bps,
            "ADSL down path {} b/s must dwarf its up path {} b/s",
            adsl.restore_goodput_bps,
            adsl.upload_goodput_bps
        );
    }

    #[test]
    fn shared_pool_content_is_saved_on_the_down_path() {
        let suite = canonical();
        assert!(suite.dedup_saved_bytes > 0);
        let fraction = suite.dedup_saved_fraction();
        assert!(
            (0.2..1.0).contains(&fraction),
            "half-shared batches should spare a large fraction, got {fraction}"
        );
    }

    #[test]
    fn the_departed_source_produces_clean_failures() {
        let suite = canonical();
        // The victim leaves after round 0; its puller fails in rounds 1 and 2.
        assert!(suite.failures >= 2, "got {}", suite.failures);
    }

    #[test]
    fn suite_is_deterministic_for_a_seed() {
        assert_eq!(run_restore(4, 7), run_restore(4, 7));
        assert_ne!(run_restore(4, 7), run_restore(4, 8));
    }
}
