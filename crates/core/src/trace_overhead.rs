//! Trace-overhead suite: what full packet capture costs at fleet scale.
//!
//! The sharded trace recorder promises that switching capture on does not
//! perturb the simulation (the traced run's data is bit-identical to the
//! traceless run) and does not meaningfully slow it down (each worker
//! records into its own preallocated [`cloudsim_trace::TraceShard`]; the
//! only added work is appends plus one k-way merge at the end). This suite
//! runs the canonical fleet-scale population twice — tracing off, tracing
//! on — asserts the bit-identity, and reports what the capture contains:
//! packets, flows, connection opens, wire volume, and the wire/logical
//! **overhead ratio** (the §5-style protocol-overhead figure at population
//! scale).
//!
//! Every reported number is a pure function of `(clients, seed)`, so the
//! suite is gated as `trace.*` metrics and the CI determinism leg `cmp`s
//! two fresh JSON dumps byte for byte. The two wall-clock fields are the
//! deliberate exception: serde-skipped, reported only in the text table,
//! and bounded (traced ≤ 1.5× traceless) by the `trace_overhead` Criterion
//! bench rather than by a gate metric.

use crate::scale::scale_spec;
use cloudsim_services::scale::{run_scale_concurrent, run_scale_traced_concurrent};
use serde::Serialize;

/// The trace-overhead suite's results.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceOverheadSuite {
    /// Clients the runs drove.
    pub clients: usize,
    /// Total commits across the population.
    pub commits: u64,
    /// Packets the traced run captured.
    pub packets: u64,
    /// Distinct flows in the capture (one per commit).
    pub flows: u64,
    /// Connection-opening SYNs in the capture.
    pub syns: u64,
    /// Wire bytes captured (headers + payload), in MB.
    pub wire_mb: f64,
    /// Plaintext bytes the population committed, in MB.
    pub logical_mb: f64,
    /// Wire bytes over logical bytes — the protocol overhead the capture
    /// observes at population scale.
    pub overhead_ratio: f64,
    /// Captured packets per virtual second of the population's active span.
    pub packets_per_vsec: f64,
    /// Packets each commit contributes (SYN + one data packet per file).
    pub packets_per_commit: f64,
    /// Host wall-clock seconds of the traced run. Non-deterministic:
    /// excluded from gate metrics and JSON (the determinism leg `cmp`s
    /// dumps byte for byte); the Criterion bench owns the wall bound.
    #[serde(skip)]
    pub traced_wall_secs: f64,
    /// Host wall-clock seconds of the traceless baseline run (serde-skipped
    /// like [`TraceOverheadSuite::traced_wall_secs`]).
    #[serde(skip)]
    pub baseline_wall_secs: f64,
}

/// Runs the canonical fleet-scale population twice — tracing off, then
/// tracing on with one shard per host core — asserts the traced run's data
/// is bit-identical to the baseline, and assembles the suite from the
/// merged capture.
pub fn run_trace_overhead(clients: usize, seed: u64) -> TraceOverheadSuite {
    let spec = scale_spec(clients, seed);
    let baseline = run_scale_concurrent(&spec);
    let (run, trace) = run_scale_traced_concurrent(&spec);

    // Capture must be a pure observer: the traced run's simulation data is
    // the traceless run's, bit for bit.
    assert_eq!(run.commits, baseline.commits, "tracing changed the commit count");
    assert_eq!(run.logical_bytes, baseline.logical_bytes, "tracing changed the volume");
    assert_eq!(run.intervals, baseline.intervals, "tracing changed the timeline");
    assert_eq!(run.aggregate(), baseline.aggregate(), "tracing changed the store state");

    let view = trace.view();
    let packets = view.len() as u64;
    let wire_bytes = view.wire_bytes_total();
    let flows = view.flow_table().len() as u64;
    let syns = view.packets().iter().filter(|p| p.is_syn()).count() as u64;
    let span = run.virtual_span_secs();
    TraceOverheadSuite {
        clients: run.clients,
        commits: run.commits,
        packets,
        flows,
        syns,
        wire_mb: wire_bytes as f64 / 1e6,
        logical_mb: run.logical_bytes as f64 / 1e6,
        overhead_ratio: wire_bytes as f64 / run.logical_bytes.max(1) as f64,
        packets_per_vsec: packets as f64 / span.max(f64::MIN_POSITIVE),
        packets_per_commit: packets as f64 / run.commits.max(1) as f64,
        traced_wall_secs: run.elapsed.as_secs_f64(),
        baseline_wall_secs: baseline.elapsed.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// One 2000-client suite shared by the assertions below.
    fn canonical() -> &'static TraceOverheadSuite {
        static SUITE: OnceLock<TraceOverheadSuite> = OnceLock::new();
        SUITE.get_or_init(|| run_trace_overhead(2000, 0x5CA1E))
    }

    #[test]
    fn capture_accounts_every_commit() {
        let suite = canonical();
        assert_eq!(suite.clients, 2000);
        assert_eq!(suite.commits, 4000);
        // One flow and one SYN per commit, one data packet per file.
        assert_eq!(suite.flows, suite.commits);
        assert_eq!(suite.syns, suite.commits);
        assert_eq!(suite.packets, suite.commits * 5);
        assert_eq!(suite.packets_per_commit, 5.0);
    }

    #[test]
    fn overhead_ratio_is_a_thin_tcp_margin() {
        let suite = canonical();
        // Wire = logical + TCP headers: barely above 1, far below the
        // small-file overheads of Fig. 6c (64 kB data packets amortise the
        // 40-byte headers).
        assert!(suite.wire_mb > suite.logical_mb);
        assert!(
            suite.overhead_ratio > 1.0 && suite.overhead_ratio < 1.01,
            "overhead ratio {} outside the thin-header band",
            suite.overhead_ratio
        );
        assert!(suite.packets_per_vsec > 1.0, "20k packets over an hour exceed 1/vsec");
    }

    #[test]
    fn suite_is_deterministic_for_a_seed() {
        let a = run_trace_overhead(300, 7);
        let b = run_trace_overhead(300, 7);
        assert_eq!((a.packets, a.flows, a.syns), (b.packets, b.flows, b.syns));
        assert_eq!(a.wire_mb.to_bits(), b.wire_mb.to_bits());
        assert_eq!(a.overhead_ratio.to_bits(), b.overhead_ratio.to_bits());
        assert_eq!(a.packets_per_vsec.to_bits(), b.packets_per_vsec.to_bits());
        // The serialised dump is byte-identical too (wall secs are skipped)
        // — the exact property the CI determinism leg `cmp`s.
        assert_eq!(crate::report::Report::to_json(&a), crate::report::Report::to_json(&b));
        // A different seed reshuffles the timeline the packets ride on.
        let c = run_trace_overhead(300, 8);
        assert_ne!(a.packets_per_vsec.to_bits(), c.packets_per_vsec.to_bits());
    }
}
