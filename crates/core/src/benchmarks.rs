//! Performance benchmarks (§5 of the paper, Fig. 6).
//!
//! Eight experiments varying the number of files, file sizes and file types,
//! each repeated `repetitions` times per service. For every (service,
//! workload) pair the suite reports the three §5 metrics: synchronisation
//! start-up time, completion time and protocol overhead.

use crate::testbed::Testbed;
use cloudsim_services::ServiceProfile;
use cloudsim_trace::series::SampleStats;
use cloudsim_workload::BatchSpec;
use serde::{Deserialize, Serialize};

/// Aggregated results of one (service, workload) cell of Fig. 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerformanceRow {
    /// Service name.
    pub service: String,
    /// Workload label ("100x10kB", …).
    pub workload: String,
    /// File-type label of the workload.
    pub file_kind: String,
    /// Number of repetitions aggregated.
    pub repetitions: usize,
    /// Synchronisation start-up delay in seconds (Fig. 6a).
    pub startup_secs: SampleStats,
    /// Upload completion time in seconds (Fig. 6b).
    pub completion_secs: SampleStats,
    /// Protocol overhead ratio (Fig. 6c).
    pub overhead: SampleStats,
    /// Effective upload goodput in bits per second (total payload / completion).
    pub goodput_bps: f64,
}

/// The full performance suite: every service × every workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerformanceSuite {
    /// One row per (service, workload) pair.
    pub rows: Vec<PerformanceRow>,
}

impl PerformanceSuite {
    /// Finds the row for a service and workload label.
    pub fn row(&self, service: &str, workload: &str) -> Option<&PerformanceRow> {
        self.rows.iter().find(|r| r.service == service && r.workload == workload)
    }

    /// The workload labels present, in first-appearance order.
    pub fn workloads(&self) -> Vec<String> {
        let mut labels = Vec::new();
        for row in &self.rows {
            if !labels.contains(&row.workload) {
                labels.push(row.workload.clone());
            }
        }
        labels
    }
}

/// Runs one (service, workload) cell with `repetitions` repetitions.
pub fn run_performance_cell(
    testbed: &Testbed,
    profile: &ServiceProfile,
    spec: &BatchSpec,
    repetitions: usize,
) -> PerformanceRow {
    assert!(repetitions > 0, "need at least one repetition");
    let mut startup = Vec::with_capacity(repetitions);
    let mut completion = Vec::with_capacity(repetitions);
    let mut overhead = Vec::with_capacity(repetitions);
    for rep in 0..repetitions {
        let run = testbed.run_sync(profile, spec, rep as u64);
        if let Some(s) = run.startup_delay() {
            startup.push(s.as_secs_f64());
        }
        if let Some(c) = run.completion_time() {
            completion.push(c.as_secs_f64());
        }
        overhead.push(run.overhead());
    }
    let completion_stats = SampleStats::from_samples(&completion).unwrap_or(SampleStats {
        count: 0,
        mean: 0.0,
        min: 0.0,
        max: 0.0,
        std_dev: 0.0,
    });
    let goodput = if completion_stats.mean > 0.0 {
        spec.total_bytes() as f64 * 8.0 / completion_stats.mean
    } else {
        0.0
    };
    PerformanceRow {
        service: profile.name().to_string(),
        workload: spec.label(),
        file_kind: spec.kind.label().to_string(),
        repetitions,
        startup_secs: SampleStats::from_samples(&startup).unwrap_or(SampleStats {
            count: 0,
            mean: 0.0,
            min: 0.0,
            max: 0.0,
            std_dev: 0.0,
        }),
        completion_secs: completion_stats,
        overhead: SampleStats::from_samples(&overhead).unwrap_or(SampleStats {
            count: 0,
            mean: 0.0,
            min: 0.0,
            max: 0.0,
            std_dev: 0.0,
        }),
        goodput_bps: goodput,
    }
}

/// Runs the Fig. 6 suite (the four binary workloads) for every service.
/// The paper uses 24 repetitions; the default reproduction uses fewer to keep
/// the turnaround short — pass 24 to match the paper exactly.
pub fn run_performance_suite(testbed: &Testbed, repetitions: usize) -> PerformanceSuite {
    run_suite_with_workloads(testbed, &BatchSpec::figure6_workloads(), repetitions)
}

/// Runs the full 8-experiment suite of §2.3 (binary and text workloads).
pub fn run_full_suite(testbed: &Testbed, repetitions: usize) -> PerformanceSuite {
    run_suite_with_workloads(testbed, &BatchSpec::paper_experiments(), repetitions)
}

/// Runs a custom set of workloads for every service. Repetitions of different
/// services run on independent OS threads (the simulator itself is
/// single-threaded and deterministic).
pub fn run_suite_with_workloads(
    testbed: &Testbed,
    workloads: &[BatchSpec],
    repetitions: usize,
) -> PerformanceSuite {
    let profiles = ServiceProfile::all();
    // Cells already occupy one OS thread each, so by default their sync
    // clients run the upload pipeline sequentially — nesting per-chunk
    // fan-outs inside the per-cell fan-out would oversubscribe the host
    // (plans are byte-identical either way). A Testbed::with_pipeline
    // choice other than auto-parallel is respected; an explicit
    // auto-parallel request is indistinguishable from the default and is
    // likewise downgraded here (pin an explicit thread count to force
    // nested fan-out).
    let testbed = &if testbed.pipeline() == cloudsim_storage::UploadPipeline::parallel() {
        testbed.with_pipeline(cloudsim_storage::UploadPipeline::sequential())
    } else {
        *testbed
    };
    // One cell per (service, workload), fanned out with the shared
    // order-preserving helper — the result comes back in stable
    // (service-major, workload-minor) order for reporting.
    let cells: Vec<(&ServiceProfile, &BatchSpec)> =
        profiles.iter().flat_map(|p| workloads.iter().map(move |w| (p, w))).collect();
    let rows = cloudsim_parallel::run_indexed(
        cloudsim_parallel::available_workers(),
        cells.len(),
        || (),
        |(), i| {
            let (profile, spec) = cells[i];
            run_performance_cell(testbed, profile, spec, repetitions)
        },
    );
    PerformanceSuite { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsim_workload::FileKind;

    #[test]
    fn single_cell_aggregates_repetitions() {
        let testbed = Testbed::new(11);
        let spec = BatchSpec::new(10, 10_000, FileKind::RandomBinary);
        let row = run_performance_cell(&testbed, &ServiceProfile::wuala(), &spec, 3);
        assert_eq!(row.repetitions, 3);
        assert_eq!(row.startup_secs.count, 3);
        assert_eq!(row.completion_secs.count, 3);
        assert!(row.startup_secs.mean > 0.0);
        assert!(row.completion_secs.mean > 0.0);
        assert!(row.overhead.mean > 1.0);
        assert!(row.goodput_bps > 0.0);
        assert_eq!(row.workload, "10x10kB");
    }

    #[test]
    fn fig6_shape_dropbox_wins_the_many_small_files_case() {
        let testbed = Testbed::new(13);
        let spec = BatchSpec::new(100, 10_000, FileKind::RandomBinary);
        let dropbox = run_performance_cell(&testbed, &ServiceProfile::dropbox(), &spec, 2);
        let gdrive = run_performance_cell(&testbed, &ServiceProfile::google_drive(), &spec, 2);
        let clouddrive = run_performance_cell(&testbed, &ServiceProfile::cloud_drive(), &spec, 2);
        assert!(
            dropbox.completion_secs.mean * 2.0 < gdrive.completion_secs.mean,
            "Dropbox {} vs Google Drive {}",
            dropbox.completion_secs.mean,
            gdrive.completion_secs.mean
        );
        assert!(gdrive.completion_secs.mean < clouddrive.completion_secs.mean);
        // Overhead ordering of Fig. 6c: Cloud Drive is the worst by far.
        assert!(clouddrive.overhead.mean > 2.0);
        assert!(clouddrive.overhead.mean > gdrive.overhead.mean);
    }

    #[test]
    fn fig6_shape_single_file_is_rtt_bound() {
        let testbed = Testbed::new(17);
        let spec = BatchSpec::new(1, 1_000_000, FileKind::RandomBinary);
        let gdrive = run_performance_cell(&testbed, &ServiceProfile::google_drive(), &spec, 2);
        let skydrive = run_performance_cell(&testbed, &ServiceProfile::skydrive(), &spec, 2);
        assert!(gdrive.completion_secs.mean < 1.5);
        assert!(skydrive.completion_secs.mean > 2.0 * gdrive.completion_secs.mean);
    }

    #[test]
    fn suite_covers_every_service_and_workload() {
        let testbed = Testbed::new(19);
        let workloads = vec![BatchSpec::new(1, 100_000, FileKind::RandomBinary)];
        let suite = run_suite_with_workloads(&testbed, &workloads, 1);
        assert_eq!(suite.rows.len(), 5);
        assert_eq!(suite.workloads(), vec!["1x100kB".to_string()]);
        for name in ["Dropbox", "SkyDrive", "Wuala", "Google Drive", "Cloud Drive"] {
            assert!(suite.row(name, "1x100kB").is_some(), "missing {name}");
        }
        assert!(suite.row("Dropbox", "nope").is_none());
    }

    #[test]
    #[should_panic(expected = "need at least one repetition")]
    fn zero_repetitions_rejected() {
        let testbed = Testbed::new(1);
        let spec = BatchSpec::new(1, 1000, FileKind::RandomBinary);
        run_performance_cell(&testbed, &ServiceProfile::dropbox(), &spec, 0);
    }
}
