//! Idle / background traffic (§3.1 of the paper, Fig. 1).
//!
//! The experiment starts the application, lets it authenticate, and then
//! leaves it idle while capturing traffic. Fig. 1 plots the cumulative bytes
//! exchanged with control servers over the first 16 minutes; the §3.1 text
//! derives each service's polling interval and signalling rate from the same
//! data.

use crate::testbed::Testbed;
use cloudsim_services::ServiceProfile;
use cloudsim_trace::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The Fig. 1 series for one service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdleSeries {
    /// Service name.
    pub service: String,
    /// `(minutes since start, cumulative kB exchanged with control servers)`.
    pub points: Vec<(f64, f64)>,
    /// Total control-plane bytes over the observation window.
    pub total_bytes: u64,
    /// Steady-state signalling rate in bits per second (excluding login).
    pub steady_rate_bps: f64,
    /// Estimated background volume per day in megabytes, at the steady rate.
    pub megabytes_per_day: f64,
}

/// Runs the idle experiment for one service over `horizon`.
pub fn idle_traffic_for(
    testbed: &Testbed,
    profile: &ServiceProfile,
    horizon: SimDuration,
    step: SimDuration,
) -> IdleSeries {
    let (login_done, packets) = testbed.run_scripted(profile, 0, |sim, client, t0| {
        client.idle_until(sim, SimTime::ZERO + horizon);
        t0
    });

    // Fig. 1 counts traffic towards control servers; keep-alive/notification
    // channels are control-plane traffic in this accounting. The same
    // predicate feeds the fleet scheduler's background-vs-payload split, so
    // idle rounds inside fleet runs are counted exactly like this capture.
    let control_packets: Vec<_> = packets.iter().filter(|p| p.kind.is_control_plane()).collect();

    let mut points = Vec::new();
    let mut t = SimTime::ZERO;
    let end = SimTime::ZERO + horizon;
    while t <= end {
        let cumulative: u64 =
            control_packets.iter().filter(|p| p.timestamp <= t).map(|p| p.wire_len()).sum();
        points.push((t.as_secs_f64() / 60.0, cumulative as f64 / 1000.0));
        if t == end {
            break;
        }
        t = (t + step).min(end);
    }

    let total_bytes: u64 = control_packets.iter().map(|p| p.wire_len()).sum();
    let after_login: u64 =
        control_packets.iter().filter(|p| p.timestamp > login_done).map(|p| p.wire_len()).sum();
    let steady_window = (horizon - (login_done - SimTime::ZERO)).as_secs_f64().max(1.0);
    let steady_rate_bps = after_login as f64 * 8.0 / steady_window;
    IdleSeries {
        service: profile.name().to_string(),
        points,
        total_bytes,
        steady_rate_bps,
        megabytes_per_day: steady_rate_bps / 8.0 * 86_400.0 / 1_000_000.0,
    }
}

/// Runs the Fig. 1 experiment (16 minutes, 1-minute sampling) for every
/// service.
pub fn idle_traffic_series(testbed: &Testbed) -> Vec<IdleSeries> {
    ServiceProfile::all()
        .into_iter()
        .map(|p| {
            idle_traffic_for(
                testbed,
                &p,
                SimDuration::from_secs(16 * 60),
                SimDuration::from_secs(60),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_series_reproduces_fig1_ordering() {
        let testbed = Testbed::new(23);
        let series = idle_traffic_series(&testbed);
        assert_eq!(series.len(), 5);
        let get = |name: &str| series.iter().find(|s| s.service == name).unwrap();

        // SkyDrive's login alone is ~4x the others (Fig. 1 text).
        let skydrive = get("SkyDrive");
        let dropbox = get("Dropbox");
        assert!(skydrive.points[1].1 > 100.0, "SkyDrive login kB {}", skydrive.points[1].1);
        assert!(skydrive.points[1].1 > 2.0 * dropbox.points[1].1);

        // Cloud Drive's cumulative curve keeps climbing steeply: ~65 MB/day.
        let clouddrive = get("Cloud Drive");
        assert!(clouddrive.megabytes_per_day > 30.0, "{} MB/day", clouddrive.megabytes_per_day);
        assert!(clouddrive.megabytes_per_day < 150.0);
        for name in ["Dropbox", "SkyDrive", "Wuala", "Google Drive"] {
            assert!(get(name).megabytes_per_day < 5.0, "{name} too chatty");
        }

        // Wuala is the most silent after login.
        let wuala = get("Wuala");
        assert!(wuala.steady_rate_bps < dropbox.steady_rate_bps);
        assert!(wuala.steady_rate_bps < 1_000.0);

        // Series are monotone non-decreasing and span 16 minutes.
        for s in &series {
            assert!(s.points.windows(2).all(|w| w[1].1 >= w[0].1), "{} not monotone", s.service);
            assert!((s.points.last().unwrap().0 - 16.0).abs() < 1e-9);
            assert!(s.total_bytes > 0);
        }
    }

    #[test]
    fn custom_horizon_and_step() {
        let testbed = Testbed::new(29);
        let series = idle_traffic_for(
            &testbed,
            &ServiceProfile::google_drive(),
            SimDuration::from_secs(120),
            SimDuration::from_secs(30),
        );
        assert_eq!(series.points.len(), 5); // 0, 30, 60, 90, 120 s
        assert!(series.steady_rate_bps > 0.0);
    }
}
