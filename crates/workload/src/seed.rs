//! Deterministic seed derivation shared by every workload-shaped draw.
//!
//! The whole workspace treats randomness as *data*: a master seed plus a
//! coordinate tuple deterministically names one independent 64-bit stream,
//! so batch content, churn schedules, restore fans and the temporal fleet
//! schedule (think times, idle rounds, arrival jitter) can all be derived
//! up front, replayed bit-identically, and shared across crates without any
//! global RNG state. The mix is a splitmix64 finalizer over a weighted
//! coordinate sum — the exact function the fleet harness has used for its
//! `(client, batch, file)` content seeds since the multi-tenant suite
//! landed, now hoisted here so schedule generation draws from the same
//! family without duplicating the constants.

/// Derives an independent 64-bit seed from a master seed and a coordinate
/// tuple (e.g. `(client, round, file)` for batch content, or
/// `(client, round, salt)` for schedule draws). Adjacent coordinates give
/// statistically unrelated outputs; the same inputs always give the same
/// output.
pub fn derive_seed(master: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut z = master
        .wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(a.wrapping_add(1)))
        .wrapping_add(0xD1B54A32D192ED03u64.wrapping_mul(b.wrapping_add(1)))
        .wrapping_add(0x94D049BB133111EBu64.wrapping_mul(c.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Maps a derived seed onto the unit interval `[0, 1)` with 53 bits of
/// precision — the building block for activation draws and think-time
/// distribution sampling.
pub fn unit_f64(seed: u64) -> f64 {
    (seed >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic_and_coordinate_sensitive() {
        assert_eq!(derive_seed(42, 1, 2, 3), derive_seed(42, 1, 2, 3));
        assert_ne!(derive_seed(42, 1, 2, 3), derive_seed(42, 1, 2, 4));
        assert_ne!(derive_seed(42, 1, 2, 3), derive_seed(42, 1, 3, 3));
        assert_ne!(derive_seed(42, 1, 2, 3), derive_seed(42, 2, 2, 3));
        assert_ne!(derive_seed(42, 1, 2, 3), derive_seed(43, 1, 2, 3));
    }

    #[test]
    fn unit_draws_live_in_the_half_open_interval() {
        for i in 0..1_000u64 {
            let u = unit_f64(derive_seed(7, i, 0, 0));
            assert!((0.0..1.0).contains(&u), "draw {i} out of range: {u}");
        }
        assert_eq!(unit_f64(0), 0.0);
        assert!(unit_f64(u64::MAX) < 1.0);
    }
}
