//! File content generators.
//!
//! §2 of the paper: "Files of different types are created or modified at
//! run-time, e.g., text files composed of random words from a dictionary,
//! images with random pixels, or random binary files." §4.5 adds the *fake
//! JPEG*: "files with JPEG extension and JPEG headers, but actually filled
//! with text", used to show that Google Drive's smart compression looks only
//! at the header.

use crate::dictionary;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// The content types exercised by the benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FileKind {
    /// Highly compressible text made of dictionary words (§4.5, Fig. 5a).
    Text,
    /// Incompressible random bytes (§4.5, Fig. 5b; also the binary files of
    /// the §5 performance benchmarks).
    RandomBinary,
    /// A file with a valid JPEG header but a text body (§4.5, Fig. 5c).
    FakeJpeg,
    /// An uncompressed bitmap image with random pixels (§2).
    RandomPixelImage,
}

impl FileKind {
    /// All kinds, in a stable order.
    pub const ALL: [FileKind; 4] =
        [FileKind::Text, FileKind::RandomBinary, FileKind::FakeJpeg, FileKind::RandomPixelImage];

    /// A short label used in reports ("text", "binary", "fake-jpeg", "image").
    pub fn label(&self) -> &'static str {
        match self {
            FileKind::Text => "text",
            FileKind::RandomBinary => "binary",
            FileKind::FakeJpeg => "fake-jpeg",
            FileKind::RandomPixelImage => "image",
        }
    }

    /// The file extension the testing application would use.
    pub fn extension(&self) -> &'static str {
        match self {
            FileKind::Text => "txt",
            FileKind::RandomBinary => "bin",
            FileKind::FakeJpeg => "jpg",
            FileKind::RandomPixelImage => "bmp",
        }
    }
}

/// JPEG JFIF header: SOI marker, APP0 segment with "JFIF\0" identifier.
const JPEG_HEADER: &[u8] = &[
    0xFF, 0xD8, 0xFF, 0xE0, 0x00, 0x10, b'J', b'F', b'I', b'F', 0x00, 0x01, 0x01, 0x00, 0x00, 0x48,
    0x00, 0x48, 0x00, 0x00,
];

/// Generates `size` bytes of content of the given kind, deterministically from
/// the seed.
pub fn generate(kind: FileKind, size: usize, seed: u64) -> Vec<u8> {
    match kind {
        FileKind::Text => dictionary::text(size, seed),
        FileKind::RandomBinary => random_bytes(size, seed),
        FileKind::FakeJpeg => {
            if size <= JPEG_HEADER.len() {
                JPEG_HEADER[..size].to_vec()
            } else {
                let mut out = JPEG_HEADER.to_vec();
                out.extend_from_slice(&dictionary::text(size - JPEG_HEADER.len(), seed));
                out
            }
        }
        FileKind::RandomPixelImage => bitmap_with_random_pixels(size, seed),
    }
}

fn random_bytes(size: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = vec![0u8; size];
    rng.fill_bytes(&mut out);
    out
}

/// Builds a minimal but well-formed BMP (24-bit, uncompressed) whose pixel
/// data is random. The overall byte length equals `size` exactly: the pixel
/// array is sized to fill the remainder and the header fields are set
/// accordingly (the last row may be partial, which viewers tolerate and the
/// benchmarks never display).
fn bitmap_with_random_pixels(size: usize, seed: u64) -> Vec<u8> {
    const HEADER_LEN: usize = 54;
    if size <= HEADER_LEN {
        // Too small for a real bitmap: degrade to random bytes so the length
        // contract still holds.
        return random_bytes(size, seed);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let pixel_bytes = size - HEADER_LEN;
    // Pick a square-ish geometry for the declared dimensions.
    let width = ((pixel_bytes / 3) as f64).sqrt().max(1.0) as u32;
    let height = ((pixel_bytes / 3) as u32 / width.max(1)).max(1);

    let mut out = Vec::with_capacity(size);
    out.extend_from_slice(b"BM");
    out.extend_from_slice(&(size as u32).to_le_bytes());
    out.extend_from_slice(&[0, 0, 0, 0]);
    out.extend_from_slice(&(HEADER_LEN as u32).to_le_bytes());
    out.extend_from_slice(&40u32.to_le_bytes()); // BITMAPINFOHEADER size
    out.extend_from_slice(&width.to_le_bytes());
    out.extend_from_slice(&height.to_le_bytes());
    out.extend_from_slice(&1u16.to_le_bytes()); // planes
    out.extend_from_slice(&24u16.to_le_bytes()); // bits per pixel
    out.extend_from_slice(&0u32.to_le_bytes()); // BI_RGB (uncompressed)
    out.extend_from_slice(&(pixel_bytes as u32).to_le_bytes());
    out.extend_from_slice(&2835u32.to_le_bytes()); // 72 DPI
    out.extend_from_slice(&2835u32.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    debug_assert_eq!(out.len(), HEADER_LEN);
    let mut pixels = vec![0u8; pixel_bytes];
    rng.fill_bytes(&mut pixels);
    out.extend_from_slice(&pixels);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_sizes_are_exact_for_every_kind() {
        for kind in FileKind::ALL {
            for size in [0usize, 1, 19, 20, 21, 53, 54, 55, 10_000, 100_000] {
                assert_eq!(generate(kind, size, 42).len(), size, "{kind:?} size {size}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for kind in FileKind::ALL {
            assert_eq!(generate(kind, 5000, 1), generate(kind, 5000, 1), "{kind:?}");
            assert_ne!(generate(kind, 5000, 1), generate(kind, 5000, 2), "{kind:?}");
        }
    }

    #[test]
    fn fake_jpeg_has_jpeg_magic_but_text_body() {
        let data = generate(FileKind::FakeJpeg, 50_000, 3);
        assert_eq!(&data[..3], &[0xFF, 0xD8, 0xFF], "must start with the JPEG SOI marker");
        let body = &data[JPEG_HEADER.len()..];
        assert!(body.is_ascii(), "fake JPEG body must be plain text");
        // The body is repetitive dictionary text: common words appear many times.
        let text = String::from_utf8_lossy(body);
        assert!(text.matches("the").count() > 20, "body does not look like dictionary text");
    }

    #[test]
    fn random_binary_is_incompressible_looking() {
        let data = generate(FileKind::RandomBinary, 100_000, 4);
        let distinct: std::collections::HashSet<u8> = data.iter().copied().collect();
        assert_eq!(distinct.len(), 256, "all byte values should appear in 100 kB of noise");
    }

    #[test]
    fn bitmap_has_valid_header_and_random_pixels() {
        let data = generate(FileKind::RandomPixelImage, 30_054, 5);
        assert_eq!(&data[..2], b"BM");
        let declared = u32::from_le_bytes([data[2], data[3], data[4], data[5]]) as usize;
        assert_eq!(declared, data.len());
        let offset = u32::from_le_bytes([data[10], data[11], data[12], data[13]]) as usize;
        assert_eq!(offset, 54);
        let pixels = &data[offset..];
        let distinct: std::collections::HashSet<u8> = pixels.iter().copied().collect();
        assert!(distinct.len() > 200, "pixels should be random");
    }

    #[test]
    fn tiny_images_degrade_gracefully() {
        let data = generate(FileKind::RandomPixelImage, 10, 6);
        assert_eq!(data.len(), 10);
    }

    #[test]
    fn labels_and_extensions_are_stable() {
        assert_eq!(FileKind::Text.label(), "text");
        assert_eq!(FileKind::RandomBinary.label(), "binary");
        assert_eq!(FileKind::FakeJpeg.label(), "fake-jpeg");
        assert_eq!(FileKind::RandomPixelImage.label(), "image");
        assert_eq!(FileKind::Text.extension(), "txt");
        assert_eq!(FileKind::FakeJpeg.extension(), "jpg");
        assert_eq!(FileKind::ALL.len(), 4);
    }
}
