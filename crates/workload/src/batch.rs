//! Batch specifications.
//!
//! §2.3: "In total, we perform 8 experiments in which files of different sizes
//! and formats are synchronized." §5: "we design 8 benchmarks varying i)
//! number of files; ii) file sizes and iii) file types", with the four
//! workloads shown in Fig. 6 (1×100 kB, 1×1 MB, 10×100 kB, 100×10 kB) and the
//! guidance from passive measurements that "up to 90 % of Dropbox users'
//! upload batches carry less than 1 MB".

use crate::generator::{generate, FileKind};
use serde::{Deserialize, Serialize};

/// A batch of files to be synchronised in one experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BatchSpec {
    /// Number of files in the batch.
    pub file_count: usize,
    /// Size of each file in bytes.
    pub file_size: usize,
    /// Content type of every file in the batch.
    pub kind: FileKind,
}

/// One generated file of a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedFile {
    /// Path of the file inside the synced folder.
    pub path: String,
    /// File content.
    pub content: Vec<u8>,
}

impl BatchSpec {
    /// Creates a batch spec.
    pub fn new(file_count: usize, file_size: usize, kind: FileKind) -> Self {
        assert!(file_count > 0, "a batch needs at least one file");
        BatchSpec { file_count, file_size, kind }
    }

    /// The four binary-file workloads of Fig. 6: 1×100 kB, 1×1 MB, 10×100 kB,
    /// 100×10 kB.
    pub fn figure6_workloads() -> Vec<BatchSpec> {
        vec![
            BatchSpec::new(1, 100 * 1000, FileKind::RandomBinary),
            BatchSpec::new(1, 1000 * 1000, FileKind::RandomBinary),
            BatchSpec::new(10, 100 * 1000, FileKind::RandomBinary),
            BatchSpec::new(100, 10 * 1000, FileKind::RandomBinary),
        ]
    }

    /// The full set of 8 benchmark experiments (§2.3): the four Fig. 6
    /// workloads plus the same four sizes with text content, exercising the
    /// file-type dimension.
    pub fn paper_experiments() -> Vec<BatchSpec> {
        let mut specs = BatchSpec::figure6_workloads();
        specs.extend([
            BatchSpec::new(1, 100 * 1000, FileKind::Text),
            BatchSpec::new(1, 1000 * 1000, FileKind::Text),
            BatchSpec::new(10, 100 * 1000, FileKind::Text),
            BatchSpec::new(100, 10 * 1000, FileKind::Text),
        ]);
        specs
    }

    /// The §4.2 bundling test: the same total volume split into 1, 10, 100 and
    /// 1000 files.
    pub fn bundling_series(total_bytes: usize) -> Vec<BatchSpec> {
        [1usize, 10, 100, 1000]
            .into_iter()
            .map(|count| BatchSpec::new(count, total_bytes / count, FileKind::RandomBinary))
            .collect()
    }

    /// Total payload bytes of the batch.
    pub fn total_bytes(&self) -> u64 {
        self.file_count as u64 * self.file_size as u64
    }

    /// A short label like `100x10kB` used as the x-axis tick in Fig. 6.
    pub fn label(&self) -> String {
        let size = self.file_size;
        let size_label = if size.is_multiple_of(1_000_000) && size >= 1_000_000 {
            format!("{}MB", size / 1_000_000)
        } else if size.is_multiple_of(1000) && size >= 1000 {
            format!("{}kB", size / 1000)
        } else {
            format!("{size}B")
        };
        format!("{}x{}", self.file_count, size_label)
    }

    /// Generates the files of the batch, deterministically from `seed`.
    /// Every file gets distinct content (different derived seed), so
    /// generation fans out across worker threads for large batches; the
    /// result is identical to sequential generation.
    pub fn generate(&self, seed: u64) -> Vec<GeneratedFile> {
        // Below ~2 MB of total content the thread fan-out costs more than
        // the generation itself.
        const PARALLEL_THRESHOLD_BYTES: u64 = 2 * 1024 * 1024;

        let one = |i: usize| GeneratedFile {
            path: format!("batch/{}_{i:04}.{}", self.label(), self.kind.extension()),
            content: generate(self.kind, self.file_size, seed.wrapping_add(i as u64 * 7919 + 1)),
        };
        let workers = cloudsim_parallel::auto_workers(
            self.file_count,
            self.total_bytes(),
            PARALLEL_THRESHOLD_BYTES,
        );
        cloudsim_parallel::run_indexed(workers, self.file_count, || (), |(), i| one(i))
    }

    /// A lazy, single-file-at-a-time view of the same batch: each
    /// [`GeneratedFile`] is produced on demand when the iterator is
    /// advanced, so a driver keyed to activation events (the fleet engine)
    /// can stream a batch through a client without ever materialising the
    /// whole batch — only one file's content is alive at a time. Collecting
    /// the stream yields exactly [`BatchSpec::generate`]'s output: same
    /// paths, same seed derivation, same bytes.
    pub fn stream(&self, seed: u64) -> BatchStream {
        BatchStream { spec: *self, seed, next: 0 }
    }
}

/// The lazy per-file iterator over one batch (see [`BatchSpec::stream`]).
///
/// ```
/// use cloudsim_workload::{BatchSpec, FileKind};
///
/// let spec = BatchSpec::new(3, 4096, FileKind::RandomBinary);
/// let eager = spec.generate(7);
/// let lazy: Vec<_> = spec.stream(7).collect();
/// assert_eq!(lazy, eager);
/// ```
#[derive(Debug, Clone)]
pub struct BatchStream {
    spec: BatchSpec,
    seed: u64,
    next: usize,
}

impl Iterator for BatchStream {
    type Item = GeneratedFile;

    fn next(&mut self) -> Option<GeneratedFile> {
        if self.next >= self.spec.file_count {
            return None;
        }
        let i = self.next;
        self.next += 1;
        Some(GeneratedFile {
            path: format!("batch/{}_{i:04}.{}", self.spec.label(), self.spec.kind.extension()),
            content: generate(
                self.spec.kind,
                self.spec.file_size,
                self.seed.wrapping_add(i as u64 * 7919 + 1),
            ),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.spec.file_count - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for BatchStream {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_workloads_match_the_paper() {
        let specs = BatchSpec::figure6_workloads();
        assert_eq!(specs.len(), 4);
        let labels: Vec<String> = specs.iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["1x100kB", "1x1MB", "10x100kB", "100x10kB"]);
        // Three of the four workloads carry <= 1 MB (the regime passive
        // measurements say covers 90 % of real batches).
        assert!(specs.iter().filter(|s| s.total_bytes() <= 1_000_000).count() >= 3);
    }

    #[test]
    fn paper_experiments_are_eight() {
        let specs = BatchSpec::paper_experiments();
        assert_eq!(specs.len(), 8);
        assert_eq!(specs.iter().filter(|s| s.kind == FileKind::Text).count(), 4);
        assert_eq!(specs.iter().filter(|s| s.kind == FileKind::RandomBinary).count(), 4);
    }

    #[test]
    fn bundling_series_preserves_total_volume() {
        let series = BatchSpec::bundling_series(1_000_000);
        assert_eq!(series.len(), 4);
        for spec in &series {
            assert_eq!(spec.total_bytes(), 1_000_000);
        }
        assert_eq!(series[0].file_count, 1);
        assert_eq!(series[3].file_count, 1000);
        assert_eq!(series[3].file_size, 1000);
    }

    #[test]
    fn generated_files_are_distinct_and_sized() {
        let spec = BatchSpec::new(10, 10_000, FileKind::RandomBinary);
        let files = spec.generate(1234);
        assert_eq!(files.len(), 10);
        for f in &files {
            assert_eq!(f.content.len(), 10_000);
            assert!(f.path.ends_with(".bin"));
        }
        // Contents must differ between files (no accidental dedup).
        assert_ne!(files[0].content, files[1].content);
        // Paths must be unique.
        let paths: std::collections::HashSet<&String> = files.iter().map(|f| &f.path).collect();
        assert_eq!(paths.len(), 10);
        // Deterministic per seed.
        assert_eq!(spec.generate(1234), files);
        assert_ne!(spec.generate(99)[0].content, files[0].content);
    }

    #[test]
    fn parallel_generation_matches_sequential_output() {
        // Large enough to cross the parallel threshold.
        let spec = BatchSpec::new(8, 500_000, FileKind::RandomBinary);
        let files = spec.generate(42);
        let expected: Vec<GeneratedFile> = (0..8)
            .map(|i| GeneratedFile {
                path: format!("batch/{}_{i:04}.{}", spec.label(), spec.kind.extension()),
                content: crate::generate(
                    spec.kind,
                    spec.file_size,
                    42u64.wrapping_add(i as u64 * 7919 + 1),
                ),
            })
            .collect();
        assert_eq!(files, expected);
    }

    #[test]
    fn lazy_stream_matches_eager_generation_byte_for_byte() {
        let spec = BatchSpec::new(6, 20_000, FileKind::Text);
        let eager = spec.generate(0xFEED);
        let lazy: Vec<GeneratedFile> = spec.stream(0xFEED).collect();
        assert_eq!(lazy, eager);
        // The stream is resumable and exact-sized.
        let mut stream = spec.stream(0xFEED);
        assert_eq!(stream.len(), 6);
        let first = stream.next().expect("six files queued");
        assert_eq!(first, eager[0]);
        assert_eq!(stream.len(), 5);
        assert_eq!(stream.collect::<Vec<_>>(), eager[1..]);
    }

    #[test]
    fn labels_render_sizes_sensibly() {
        assert_eq!(BatchSpec::new(1, 1_000_000, FileKind::Text).label(), "1x1MB");
        assert_eq!(BatchSpec::new(5, 10_000, FileKind::Text).label(), "5x10kB");
        assert_eq!(BatchSpec::new(2, 512, FileKind::Text).label(), "2x512B");
    }

    #[test]
    #[should_panic(expected = "a batch needs at least one file")]
    fn empty_batches_are_rejected() {
        let _ = BatchSpec::new(0, 100, FileKind::Text);
    }
}
