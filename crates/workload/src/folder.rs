//! The simulated synced folder.
//!
//! The test computer in the original study runs the native client pointed at a
//! local folder that the testing application manipulates over FTP. Here the
//! folder is an in-memory map of path → content plus a *change journal* the
//! simulated sync clients consume: every create, modify, copy, delete and
//! restore is recorded as a [`ChangeEvent`] with the virtual time at which it
//! happened.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One recorded change to the synced folder.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChangeEvent {
    /// A file was created (or fully replaced) with the given size.
    Created {
        /// Path of the file.
        path: String,
        /// New size in bytes.
        size: u64,
    },
    /// An existing file was modified in place.
    Modified {
        /// Path of the file.
        path: String,
        /// New size in bytes.
        size: u64,
    },
    /// A file was deleted.
    Deleted {
        /// Path of the file.
        path: String,
    },
}

impl ChangeEvent {
    /// The path the event refers to.
    pub fn path(&self) -> &str {
        match self {
            ChangeEvent::Created { path, .. }
            | ChangeEvent::Modified { path, .. }
            | ChangeEvent::Deleted { path } => path,
        }
    }
}

/// The synced folder on the test computer.
#[derive(Debug, Clone, Default)]
pub struct LocalFolder {
    files: BTreeMap<String, Vec<u8>>,
    journal: Vec<ChangeEvent>,
}

impl LocalFolder {
    /// Creates an empty folder.
    pub fn new() -> Self {
        LocalFolder::default()
    }

    /// Writes (creates or replaces) a file.
    pub fn write(&mut self, path: &str, content: Vec<u8>) {
        let size = content.len() as u64;
        let existed = self.files.insert(path.to_string(), content).is_some();
        self.journal.push(if existed {
            ChangeEvent::Modified { path: path.to_string(), size }
        } else {
            ChangeEvent::Created { path: path.to_string(), size }
        });
    }

    /// Copies an existing file to a new path (the §4.3 dedup test copies the
    /// original file into second and third folders). Panics when the source is
    /// missing, which would be a bug in the experiment script.
    pub fn copy(&mut self, from: &str, to: &str) {
        let content = self
            .files
            .get(from)
            .unwrap_or_else(|| panic!("copy source {from} does not exist"))
            .clone();
        self.write(to, content);
    }

    /// Deletes a file. Returns `true` when the file existed.
    pub fn delete(&mut self, path: &str) -> bool {
        let existed = self.files.remove(path).is_some();
        if existed {
            self.journal.push(ChangeEvent::Deleted { path: path.to_string() });
        }
        existed
    }

    /// Reads a file's content.
    pub fn read(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).map(|v| v.as_slice())
    }

    /// Current number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when the folder holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Total bytes currently stored in the folder.
    pub fn total_bytes(&self) -> u64 {
        self.files.values().map(|v| v.len() as u64).sum()
    }

    /// All file paths, sorted.
    pub fn paths(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }

    /// The change journal accumulated so far.
    pub fn journal(&self) -> &[ChangeEvent] {
        &self.journal
    }

    /// Drains the change journal, handing the pending events to the sync
    /// client (mirrors a filesystem-watcher queue).
    pub fn drain_changes(&mut self) -> Vec<ChangeEvent> {
        std::mem::take(&mut self.journal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_modify_delete_journal() {
        let mut folder = LocalFolder::new();
        assert!(folder.is_empty());
        folder.write("a.bin", vec![1, 2, 3]);
        folder.write("a.bin", vec![4, 5, 6, 7]);
        folder.write("b.bin", vec![9]);
        assert!(folder.delete("a.bin"));
        assert!(!folder.delete("a.bin"));
        let journal = folder.journal().to_vec();
        assert_eq!(journal.len(), 4);
        assert!(matches!(&journal[0], ChangeEvent::Created { path, size: 3 } if path == "a.bin"));
        assert!(matches!(&journal[1], ChangeEvent::Modified { path, size: 4 } if path == "a.bin"));
        assert!(matches!(&journal[2], ChangeEvent::Created { path, size: 1 } if path == "b.bin"));
        assert!(matches!(&journal[3], ChangeEvent::Deleted { path } if path == "a.bin"));
        assert_eq!(journal[3].path(), "a.bin");
        assert_eq!(folder.len(), 1);
        assert_eq!(folder.total_bytes(), 1);
    }

    #[test]
    fn copy_replicates_content_to_a_new_path() {
        let mut folder = LocalFolder::new();
        folder.write("folder1/original.bin", vec![7u8; 1000]);
        folder.copy("folder1/original.bin", "folder2/replica.bin");
        assert_eq!(folder.read("folder2/replica.bin"), folder.read("folder1/original.bin"));
        assert_eq!(folder.len(), 2);
        assert_eq!(
            folder.paths(),
            vec!["folder1/original.bin".to_string(), "folder2/replica.bin".to_string()]
        );
    }

    #[test]
    #[should_panic(expected = "copy source missing.bin does not exist")]
    fn copy_of_a_missing_file_panics() {
        let mut folder = LocalFolder::new();
        folder.copy("missing.bin", "anywhere.bin");
    }

    #[test]
    fn drain_changes_empties_the_journal() {
        let mut folder = LocalFolder::new();
        folder.write("x", vec![0u8; 10]);
        folder.write("y", vec![0u8; 20]);
        let drained = folder.drain_changes();
        assert_eq!(drained.len(), 2);
        assert!(folder.journal().is_empty());
        assert_eq!(folder.drain_changes().len(), 0);
        // Files themselves are untouched by draining.
        assert_eq!(folder.len(), 2);
    }

    #[test]
    fn read_missing_file_is_none() {
        let folder = LocalFolder::new();
        assert!(folder.read("nope").is_none());
        assert_eq!(folder.total_bytes(), 0);
        assert!(folder.paths().is_empty());
    }
}
