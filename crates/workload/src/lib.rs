//! # cloudsim-workload
//!
//! Workload generation for the cloud-storage benchmarks.
//!
//! The testing application of the IMC'13 study generates "specific workloads
//! in the form of file batches" (§2): text files composed of random words
//! from a dictionary, images with random pixels, random binary files, and
//! *fake JPEGs* (JPEG header, text body) used to probe smart compression
//! (§4.5). The performance benchmarks of §5 then vary the number of files,
//! file sizes and file types (1×100 kB, 1×1 MB, 10×100 kB, 100×10 kB), and
//! the capability tests of §4 additionally mutate files (append, prepend,
//! insert at a random offset), copy them between folders, delete and restore
//! them.
//!
//! * [`dictionary`] — the embedded word list and text synthesis,
//! * [`generator`] — content generators for each [`FileKind`],
//! * [`batch`] — batch specifications, including the paper's standard
//!   workloads,
//! * [`mutate`] — file mutation operators used by the delta-encoding test,
//! * [`folder`] — the simulated synced folder (files plus a change journal)
//!   the sync clients of `cloudsim-services` watch,
//! * [`seed`] — the deterministic seed-derivation family every
//!   workload-shaped draw (batch content, churn, restore fans, temporal
//!   schedules) shares.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod dictionary;
pub mod folder;
pub mod generator;
pub mod mutate;
pub mod seed;

pub use batch::{BatchSpec, BatchStream, GeneratedFile};
pub use folder::{ChangeEvent, LocalFolder};
pub use generator::{generate, FileKind};
pub use mutate::Mutation;
pub use seed::{derive_seed, unit_f64};
