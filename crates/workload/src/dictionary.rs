//! Dictionary-based text synthesis.
//!
//! The paper's testing application builds "text files composed of random
//! words from a dictionary" for the compression experiments (§2, §4.5). The
//! embedded word list below is a small English dictionary; text synthesised
//! from it is highly compressible (each word reappears many times), which is
//! exactly the property Fig. 5(a) relies on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The embedded word list used to synthesise "readable" text.
#[rustfmt::skip]
pub const WORDS: &[&str] = &[
    "the", "of", "and", "a", "to", "in", "is", "you", "that", "it", "he", "was", "for", "on",
    "are", "as", "with", "his", "they", "I", "at", "be", "this", "have", "from", "or", "one",
    "had", "by", "word", "but", "not", "what", "all", "were", "we", "when", "your", "can",
    "said", "there", "use", "an", "each", "which", "she", "do", "how", "their", "if", "will",
    "up", "other", "about", "out", "many", "then", "them", "these", "so", "some", "her",
    "would", "make", "like", "him", "into", "time", "has", "look", "two", "more", "write",
    "go", "see", "number", "no", "way", "could", "people", "my", "than", "first", "water",
    "been", "call", "who", "oil", "its", "now", "find", "long", "down", "day", "did", "get",
    "come", "made", "may", "part", "cloud", "storage", "service", "benchmark", "measurement",
    "synchronization", "protocol", "network", "traffic", "capability", "performance", "file",
    "folder", "upload", "download", "server", "client", "data", "center", "experiment",
    "methodology", "capacity", "bandwidth", "latency", "overhead", "compression", "encryption",
    "deduplication", "bundling", "chunking", "delta", "encoding", "internet", "provider",
];

/// Generates `len` bytes of text made of random dictionary words separated by
/// spaces, with a newline roughly every 70 characters.
pub fn text(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len + 16);
    let mut line = 0usize;
    while out.len() < len {
        let word = WORDS[rng.gen_range(0..WORDS.len())];
        out.extend_from_slice(word.as_bytes());
        line += word.len() + 1;
        if line >= 70 {
            out.push(b'\n');
            line = 0;
        } else {
            out.push(b' ');
        }
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_has_the_requested_length() {
        for len in [0usize, 1, 10, 1000, 100_000] {
            assert_eq!(text(len, 1).len(), len);
        }
    }

    #[test]
    fn text_is_deterministic_per_seed() {
        assert_eq!(text(5000, 7), text(5000, 7));
        assert_ne!(text(5000, 7), text(5000, 8));
    }

    #[test]
    fn text_consists_of_dictionary_words() {
        let sample = text(10_000, 3);
        let s = String::from_utf8(sample).expect("dictionary text must be valid UTF-8");
        for word in s.split_whitespace().take(200) {
            // The final word may be truncated; accept prefixes of dictionary words.
            assert!(
                WORDS.iter().any(|w| *w == word || w.starts_with(word)),
                "unexpected token {word:?}"
            );
        }
    }

    #[test]
    fn text_is_highly_repetitive() {
        // Compressibility proxy: with a ~140-word dictionary every word recurs
        // hundreds of times in 50 kB of text.
        let sample = String::from_utf8(text(50_000, 4)).unwrap();
        let the_count = sample.split_whitespace().filter(|w| *w == "the").count();
        assert!(the_count > 20, "expected many repetitions, got {the_count}");
        let distinct: std::collections::HashSet<&str> = sample.split_whitespace().collect();
        assert!(distinct.len() <= WORDS.len() + 1, "unexpected vocabulary size {}", distinct.len());
    }

    #[test]
    fn word_list_is_reasonable() {
        assert!(WORDS.len() >= 100);
        assert!(WORDS.iter().all(|w| !w.is_empty() && w.is_ascii()));
    }
}
