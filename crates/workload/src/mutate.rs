//! File mutation operators.
//!
//! The delta-encoding test of §4.4 generates "a sequence of changes ... on a
//! file so that a portion of content is added/changed at each iteration.
//! Three cases are considered: new data added/changed at the end, at the
//! beginning, or at a random position within the file."

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// A mutation applied to an existing file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mutation {
    /// Append `len` new bytes at the end.
    Append {
        /// Number of bytes to add.
        len: usize,
    },
    /// Insert `len` new bytes at the beginning.
    Prepend {
        /// Number of bytes to add.
        len: usize,
    },
    /// Insert `len` new bytes at a pseudo-random offset.
    InsertRandom {
        /// Number of bytes to add.
        len: usize,
    },
    /// Overwrite `len` bytes in place at a pseudo-random offset (no growth).
    OverwriteRandom {
        /// Number of bytes to overwrite.
        len: usize,
    },
}

impl Mutation {
    /// Applies the mutation to `content`, deterministically from `seed`, and
    /// returns the new revision.
    pub fn apply(&self, content: &[u8], seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        match *self {
            Mutation::Append { len } => {
                let mut out = content.to_vec();
                out.extend_from_slice(&fresh_bytes(len, &mut rng));
                out
            }
            Mutation::Prepend { len } => {
                let mut out = fresh_bytes(len, &mut rng);
                out.extend_from_slice(content);
                out
            }
            Mutation::InsertRandom { len } => {
                let at = if content.is_empty() { 0 } else { rng.gen_range(0..=content.len()) };
                let mut out = Vec::with_capacity(content.len() + len);
                out.extend_from_slice(&content[..at]);
                out.extend_from_slice(&fresh_bytes(len, &mut rng));
                out.extend_from_slice(&content[at..]);
                out
            }
            Mutation::OverwriteRandom { len } => {
                let mut out = content.to_vec();
                if out.is_empty() || len == 0 {
                    return out;
                }
                let len = len.min(out.len());
                let at = rng.gen_range(0..=out.len() - len);
                let patch = fresh_bytes(len, &mut rng);
                out[at..at + len].copy_from_slice(&patch);
                out
            }
        }
    }

    /// The number of *new* bytes the mutation introduces (the quantity the
    /// delta encoder should ideally transmit).
    pub fn new_bytes(&self) -> usize {
        match *self {
            Mutation::Append { len }
            | Mutation::Prepend { len }
            | Mutation::InsertRandom { len }
            | Mutation::OverwriteRandom { len } => len,
        }
    }

    /// Whether the mutation changes the total file length.
    pub fn grows_file(&self) -> bool {
        !matches!(self, Mutation::OverwriteRandom { .. })
    }
}

fn fresh_bytes(len: usize, rng: &mut StdRng) -> Vec<u8> {
    let mut out = vec![0u8; len];
    rng.fill_bytes(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Vec<u8> {
        (0..50_000u32).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn append_adds_at_the_end() {
        let content = base();
        let out = Mutation::Append { len: 1000 }.apply(&content, 1);
        assert_eq!(out.len(), content.len() + 1000);
        assert_eq!(&out[..content.len()], &content[..]);
    }

    #[test]
    fn prepend_adds_at_the_beginning() {
        let content = base();
        let out = Mutation::Prepend { len: 500 }.apply(&content, 2);
        assert_eq!(out.len(), content.len() + 500);
        assert_eq!(&out[500..], &content[..]);
    }

    #[test]
    fn insert_random_keeps_both_sides() {
        let content = base();
        let mutation = Mutation::InsertRandom { len: 777 };
        let out = mutation.apply(&content, 3);
        assert_eq!(out.len(), content.len() + 777);
        // The result must contain the original as prefix+suffix around the gap:
        // find the split point by comparing prefixes.
        let split = content.iter().zip(out.iter()).take_while(|(a, b)| a == b).count();
        assert_eq!(&out[..split], &content[..split]);
        assert_eq!(&out[split + 777..], &content[split..]);
        // Deterministic per seed, different across seeds.
        assert_eq!(mutation.apply(&content, 3), out);
        assert_ne!(mutation.apply(&content, 4), out);
    }

    #[test]
    fn overwrite_keeps_length() {
        let content = base();
        let out = Mutation::OverwriteRandom { len: 1234 }.apply(&content, 5);
        assert_eq!(out.len(), content.len());
        assert_ne!(out, content);
        let differing = out.iter().zip(content.iter()).filter(|(a, b)| a != b).count();
        assert!(differing <= 1234);
    }

    #[test]
    fn edge_cases_empty_content_and_zero_lengths() {
        assert_eq!(Mutation::Append { len: 10 }.apply(&[], 1).len(), 10);
        assert_eq!(Mutation::Prepend { len: 10 }.apply(&[], 1).len(), 10);
        assert_eq!(Mutation::InsertRandom { len: 10 }.apply(&[], 1).len(), 10);
        assert_eq!(Mutation::OverwriteRandom { len: 10 }.apply(&[], 1).len(), 0);
        assert_eq!(Mutation::Append { len: 0 }.apply(&base(), 1), base());
        assert_eq!(Mutation::OverwriteRandom { len: 0 }.apply(&base(), 1), base());
    }

    #[test]
    fn new_bytes_and_growth_metadata() {
        assert_eq!(Mutation::Append { len: 7 }.new_bytes(), 7);
        assert_eq!(Mutation::InsertRandom { len: 9 }.new_bytes(), 9);
        assert!(Mutation::Append { len: 7 }.grows_file());
        assert!(Mutation::Prepend { len: 7 }.grows_file());
        assert!(Mutation::InsertRandom { len: 7 }.grows_file());
        assert!(!Mutation::OverwriteRandom { len: 7 }.grows_file());
    }
}
