//! Landmark hosts and the RTT model.
//!
//! §2.1: the study geolocates servers using "the shortest Round Trip Time
//! (RTT) to PlanetLab nodes", citing prior work that such constraint-based
//! methods are accurate to roughly a hundred kilometres. The landmark set
//! here plays the role of PlanetLab: one probe host per catalogue city, and
//! an RTT model that converts great-circle distance into a plausible
//! round-trip time (propagation at ~2/3 c over a somewhat indirect path, plus
//! a small access/queueing floor).

use crate::coords::{GeoPoint, WORLD_CITIES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One landmark probe host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Landmark {
    /// Host name of the probe.
    pub name: String,
    /// Location of the probe.
    pub location: GeoPoint,
}

/// Speed-of-light factor: fibre propagation is ~2/3 c and paths are not
/// geodesics, giving roughly 1 ms of RTT per 100 km as a rule of thumb.
const MS_PER_KM: f64 = 0.0105;

/// Minimum RTT floor (last-mile, serialisation, processing) in milliseconds.
const FLOOR_MS: f64 = 1.5;

/// Models the RTT in milliseconds between two points, with a deterministic
/// multiplicative jitter drawn from `seed` (path inflation varies per pair).
pub fn rtt_between(a: GeoPoint, b: GeoPoint, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let distance = a.distance_km(&b);
    let inflation = rng.gen_range(1.0..1.35);
    FLOOR_MS + distance * MS_PER_KM * inflation
}

/// The full landmark set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LandmarkSet {
    landmarks: Vec<Landmark>,
}

impl LandmarkSet {
    /// Builds the default set: one landmark per catalogue city.
    pub fn planetlab_like() -> Self {
        let landmarks = WORLD_CITIES
            .iter()
            .map(|c| Landmark {
                name: format!(
                    "planetlab1.{}.{}.example",
                    c.airport.to_lowercase(),
                    c.country.to_lowercase()
                ),
                location: c.location,
            })
            .collect();
        LandmarkSet { landmarks }
    }

    /// The landmarks.
    pub fn landmarks(&self) -> &[Landmark] {
        &self.landmarks
    }

    /// Number of landmarks.
    pub fn len(&self) -> usize {
        self.landmarks.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.landmarks.is_empty()
    }

    /// Measures the RTT from every landmark to a target location and returns
    /// `(landmark index, rtt in ms)` pairs, as the measurement campaign would.
    pub fn probe(&self, target: GeoPoint, seed: u64) -> Vec<(usize, f64)> {
        self.landmarks
            .iter()
            .enumerate()
            .map(|(i, lm)| {
                (i, rtt_between(lm.location, target, seed.wrapping_add(i as u64 * 31 + 7)))
            })
            .collect()
    }

    /// The landmark with the shortest RTT to the target.
    pub fn closest(&self, target: GeoPoint, seed: u64) -> Option<(&Landmark, f64)> {
        self.probe(target, seed)
            .into_iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|(i, rtt)| (&self.landmarks[i], rtt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::city_by_airport;

    #[test]
    fn rtt_grows_with_distance_and_has_a_floor() {
        let ams = city_by_airport("AMS").unwrap().location;
        let fra = city_by_airport("FRA").unwrap().location;
        let syd = city_by_airport("SYD").unwrap().location;
        let near = rtt_between(ams, fra, 1);
        let far = rtt_between(ams, syd, 1);
        assert!(near < far);
        assert!(near > FLOOR_MS);
        assert!((140.0..350.0).contains(&far), "AMS-SYD rtt {far}");
        // Same location: only the floor remains.
        let same = rtt_between(ams, ams, 1);
        assert!((FLOOR_MS..FLOOR_MS + 0.5).contains(&same));
        // Deterministic per seed.
        assert_eq!(rtt_between(ams, syd, 5), rtt_between(ams, syd, 5));
    }

    #[test]
    fn transatlantic_rtt_is_realistic() {
        // The paper reports ~100-120 ms from the Dutch testbed to US-east
        // data centres and ~160 ms to the US west coast.
        let ams = city_by_airport("AMS").unwrap().location;
        let ashburn = city_by_airport("IAD").unwrap().location;
        let seattle = city_by_airport("SEA").unwrap().location;
        let east = rtt_between(ams, ashburn, 3);
        let west = rtt_between(ams, seattle, 3);
        assert!((60.0..130.0).contains(&east), "AMS-IAD rtt {east}");
        assert!((85.0..210.0).contains(&west), "AMS-SEA rtt {west}");
        assert!(west > east);
    }

    #[test]
    fn landmark_set_covers_the_catalogue() {
        let set = LandmarkSet::planetlab_like();
        assert_eq!(set.len(), WORLD_CITIES.len());
        assert!(!set.is_empty());
        assert!(set.landmarks()[0].name.contains("planetlab"));
    }

    #[test]
    fn closest_landmark_is_the_colocated_one() {
        let set = LandmarkSet::planetlab_like();
        let zurich = city_by_airport("ZRH").unwrap().location;
        let (closest, rtt) = set.closest(zurich, 42).unwrap();
        assert!(closest.name.contains("zrh"), "closest was {}", closest.name);
        assert!(rtt < 10.0);
        let probes = set.probe(zurich, 42);
        assert_eq!(probes.len(), set.len());
    }
}
