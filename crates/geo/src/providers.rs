//! Ground-truth topologies of the five studied providers.
//!
//! §3.2 of the paper documents where each service keeps its servers:
//!
//! * **Dropbox** — own control servers in the San Jose area; storage committed
//!   to Amazon in Northern Virginia.
//! * **Cloud Drive** — three AWS data centres: Ireland and Northern Virginia
//!   (storage + control) plus Oregon (storage only).
//! * **SkyDrive** — Microsoft data centres in the Seattle area (storage) and
//!   Southern Virginia (storage + control), plus a control-only destination in
//!   Singapore.
//! * **Wuala** — European data centres only: two near Nuremberg, one in Zurich
//!   and one in Northern France; none owned by Wuala itself.
//! * **Google Drive** — client TCP connections terminate at the closest of
//!   more than 100 edge nodes, from where traffic rides Google's private
//!   backbone to the storage/control data centres.
//!
//! These topologies are the *ground truth* the synthetic DNS, whois and
//! geolocation pipeline is evaluated against.

use crate::coords::{city_by_airport, GeoPoint, WORLD_CITIES};
use crate::registry::{IpBlock, IpRegistry};
use serde::{Deserialize, Serialize};

/// The five services studied in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Provider {
    /// Dropbox (v2.0.8 in the study).
    Dropbox,
    /// Microsoft SkyDrive (now OneDrive).
    SkyDrive,
    /// LaCie Wuala.
    Wuala,
    /// Google Drive.
    GoogleDrive,
    /// Amazon Cloud Drive.
    CloudDrive,
}

impl Provider {
    /// All providers in the paper's presentation order.
    pub const ALL: [Provider; 5] = [
        Provider::Dropbox,
        Provider::SkyDrive,
        Provider::Wuala,
        Provider::GoogleDrive,
        Provider::CloudDrive,
    ];

    /// Human-readable name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Provider::Dropbox => "Dropbox",
            Provider::SkyDrive => "SkyDrive",
            Provider::Wuala => "Wuala",
            Provider::GoogleDrive => "Google Drive",
            Provider::CloudDrive => "Cloud Drive",
        }
    }
}

/// Role a server plays for its provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServerRole {
    /// Control only (login, metadata).
    Control,
    /// Storage only (bulk content).
    Storage,
    /// Both control and storage on the same front end (Wuala).
    Both,
    /// Notification / keep-alive endpoint (Dropbox's plain-HTTP protocol).
    Notification,
    /// A Google-style edge node terminating client TCP connections.
    Edge,
}

/// One server (or edge node) of a provider's infrastructure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerNode {
    /// DNS name of the front end.
    pub dns_name: String,
    /// Reverse-DNS (PTR) name; Google and Amazon embed airport codes here.
    pub reverse_dns: String,
    /// IPv4 address, host byte order.
    pub addr: u32,
    /// Role of the node.
    pub role: ServerRole,
    /// Physical location (ground truth).
    pub location: GeoPoint,
    /// City label of the location.
    pub city: String,
    /// Organisation that owns the address block (whois answer).
    pub owner: String,
}

/// The full ground-truth topology of one provider.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProviderTopology {
    /// Which provider this is.
    pub provider: Provider,
    /// Every server / edge node of the provider.
    pub nodes: Vec<ServerNode>,
}

fn node(
    dns: &str,
    reverse: &str,
    addr: [u8; 4],
    role: ServerRole,
    airport: &str,
    owner: &str,
) -> ServerNode {
    let city = city_by_airport(airport).unwrap_or_else(|| panic!("unknown airport code {airport}"));
    ServerNode {
        dns_name: dns.to_string(),
        reverse_dns: reverse.to_string(),
        addr: u32::from_be_bytes(addr),
        role,
        location: city.location,
        city: city.name.to_string(),
        owner: owner.to_string(),
    }
}

impl ProviderTopology {
    /// Builds the ground-truth topology of a provider.
    pub fn ground_truth(provider: Provider) -> ProviderTopology {
        let nodes = match provider {
            Provider::Dropbox => vec![
                node(
                    "client.dropbox.com",
                    "client1.sjc.dropbox.com",
                    [108, 160, 162, 10],
                    ServerRole::Control,
                    "SJC",
                    "Dropbox, Inc.",
                ),
                node(
                    "clientX.dropbox.com",
                    "client2.sjc.dropbox.com",
                    [108, 160, 162, 11],
                    ServerRole::Control,
                    "SJC",
                    "Dropbox, Inc.",
                ),
                node(
                    "notify.dropbox.com",
                    "notify1.sjc.dropbox.com",
                    [108, 160, 165, 20],
                    ServerRole::Notification,
                    "SJC",
                    "Dropbox, Inc.",
                ),
                node(
                    "dl-clientXX.dropbox.com",
                    "ec2-54-231-10-1.iad.amazonaws.example",
                    [54, 231, 10, 1],
                    ServerRole::Storage,
                    "IAD",
                    "Amazon.com, Inc.",
                ),
                node(
                    "dl-clientYY.dropbox.com",
                    "ec2-54-231-10-2.iad.amazonaws.example",
                    [54, 231, 10, 2],
                    ServerRole::Storage,
                    "IAD",
                    "Amazon.com, Inc.",
                ),
            ],
            Provider::CloudDrive => vec![
                node(
                    "www.amazon.com",
                    "ec2-176-32-100-1.dub.amazonaws.example",
                    [176, 32, 100, 1],
                    ServerRole::Both,
                    "DUB",
                    "Amazon.com, Inc.",
                ),
                node(
                    "cdws.us-east-1.amazonaws.com",
                    "ec2-54-240-10-1.iad.amazonaws.example",
                    [54, 240, 10, 1],
                    ServerRole::Both,
                    "IAD",
                    "Amazon.com, Inc.",
                ),
                node(
                    "content-na.drive.amazonaws.com",
                    "ec2-54-245-20-1.dls.amazonaws.example",
                    [54, 245, 20, 1],
                    ServerRole::Storage,
                    "DLS",
                    "Amazon.com, Inc.",
                ),
            ],
            Provider::SkyDrive => vec![
                node(
                    "storage.live.com",
                    "bn1-sky-storage1.sea.msn.example",
                    [134, 170, 10, 1],
                    ServerRole::Storage,
                    "SEA",
                    "Microsoft Corporation",
                ),
                node(
                    "skyapi.live.net",
                    "db3-sky-api1.ric.msn.example",
                    [134, 170, 20, 1],
                    ServerRole::Both,
                    "RIC",
                    "Microsoft Corporation",
                ),
                node(
                    "login.live.com",
                    "login1.ric.msn.example",
                    [134, 170, 20, 2],
                    ServerRole::Control,
                    "RIC",
                    "Microsoft Corporation",
                ),
                node(
                    "roaming.officeapps.live.com",
                    "sg2-roaming1.sin.msn.example",
                    [134, 170, 30, 1],
                    ServerRole::Control,
                    "SIN",
                    "Microsoft Corporation",
                ),
            ],
            Provider::Wuala => vec![
                node(
                    "content1.wuala.com",
                    "static.88-198-10-1.clients.your-server.example",
                    [88, 198, 10, 1],
                    ServerRole::Both,
                    "NUE",
                    "Hetzner Online AG",
                ),
                node(
                    "content2.wuala.com",
                    "static.88-198-10-2.clients.your-server.example",
                    [88, 198, 10, 2],
                    ServerRole::Both,
                    "NUE",
                    "Hetzner Online AG",
                ),
                node(
                    "content3.wuala.com",
                    "zrh-storage1.greenqloud.example",
                    [92, 42, 50, 1],
                    ServerRole::Both,
                    "ZRH",
                    "Nine Internet Solutions AG",
                ),
                node(
                    "content4.wuala.com",
                    "lil-storage1.ovh.example",
                    [94, 23, 60, 1],
                    ServerRole::Both,
                    "LIL",
                    "OVH SAS",
                ),
            ],
            Provider::GoogleDrive => {
                let mut nodes = vec![
                    node(
                        "drive-storage.googleapis.com",
                        "cbf-core1.1e100.example",
                        [173, 194, 100, 1],
                        ServerRole::Storage,
                        "CBF",
                        "Google LLC",
                    ),
                    node(
                        "clients4.google.com",
                        "cbf-core2.1e100.example",
                        [173, 194, 100, 2],
                        ServerRole::Control,
                        "CBF",
                        "Google LLC",
                    ),
                ];
                // Edge nodes: two per catalogue city, which yields the ">100
                // different entry points" reported around Fig. 2.
                for (i, city) in WORLD_CITIES.iter().enumerate() {
                    for replica in 0..2u8 {
                        let airport = city.airport.to_lowercase();
                        nodes.push(ServerNode {
                            dns_name: "googledrive.edge.google.com".to_string(),
                            reverse_dns: format!(
                                "{}{:02}s{:02}-in-f1.1e100.example",
                                airport,
                                i % 30,
                                replica
                            ),
                            addr: u32::from_be_bytes([173, 194, (i % 250) as u8, 10 + replica]),
                            role: ServerRole::Edge,
                            location: city.location,
                            city: city.name.to_string(),
                            owner: "Google LLC".to_string(),
                        });
                    }
                }
                nodes
            }
        };
        ProviderTopology { provider, nodes }
    }

    /// All ground-truth topologies.
    pub fn all() -> Vec<ProviderTopology> {
        Provider::ALL.iter().map(|p| ProviderTopology::ground_truth(*p)).collect()
    }

    /// Nodes playing a given role.
    pub fn nodes_with_role(&self, role: ServerRole) -> Vec<&ServerNode> {
        self.nodes.iter().filter(|n| n.role == role).collect()
    }

    /// The distinct owners of the provider's address space (whois view).
    pub fn owners(&self) -> Vec<String> {
        let mut owners: Vec<String> = self.nodes.iter().map(|n| n.owner.clone()).collect();
        owners.sort();
        owners.dedup();
        owners
    }

    /// The distinct ISO country codes the provider has presence in, judged by
    /// ground-truth node locations (used to summarise Fig. 2).
    pub fn countries(&self) -> Vec<&'static str> {
        let mut countries: Vec<&'static str> = self
            .nodes
            .iter()
            .filter_map(|n| {
                WORLD_CITIES
                    .iter()
                    .find(|c| {
                        (c.location.lat - n.location.lat).abs() < 1e-9
                            && (c.location.lon - n.location.lon).abs() < 1e-9
                    })
                    .map(|c| c.country)
            })
            .collect();
        countries.sort();
        countries.dedup();
        countries
    }

    /// Registers every owner's address blocks in an [`IpRegistry`], so whois
    /// lookups over discovered addresses resolve to the right organisations.
    pub fn register_whois(registry: &mut IpRegistry) {
        registry.register(IpBlock::cidr([108, 160, 160, 0], 20, "Dropbox, Inc.", 19679));
        registry.register(IpBlock::cidr([54, 224, 0, 0], 11, "Amazon.com, Inc.", 16509));
        registry.register(IpBlock::cidr([176, 32, 96, 0], 19, "Amazon.com, Inc.", 16509));
        registry.register(IpBlock::cidr([134, 170, 0, 0], 16, "Microsoft Corporation", 8075));
        registry.register(IpBlock::cidr([88, 198, 0, 0], 16, "Hetzner Online AG", 24940));
        registry.register(IpBlock::cidr([92, 42, 48, 0], 21, "Nine Internet Solutions AG", 1836));
        registry.register(IpBlock::cidr([94, 23, 0, 0], 16, "OVH SAS", 16276));
        registry.register(IpBlock::cidr([173, 194, 0, 0], 16, "Google LLC", 15169));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::addr;

    #[test]
    fn google_drive_has_more_than_100_edge_nodes() {
        let topo = ProviderTopology::ground_truth(Provider::GoogleDrive);
        let edges = topo.nodes_with_role(ServerRole::Edge);
        assert!(edges.len() > 100, "only {} edge nodes", edges.len());
        // Spread across many countries, like Fig. 2.
        assert!(topo.countries().len() > 30);
    }

    #[test]
    fn dropbox_splits_control_and_storage_ownership() {
        let topo = ProviderTopology::ground_truth(Provider::Dropbox);
        let owners = topo.owners();
        assert!(owners.contains(&"Dropbox, Inc.".to_string()));
        assert!(owners.contains(&"Amazon.com, Inc.".to_string()));
        // Control in San Jose, storage in Northern Virginia.
        let control = topo.nodes_with_role(ServerRole::Control);
        assert!(control.iter().all(|n| n.city == "San Jose"));
        let storage = topo.nodes_with_role(ServerRole::Storage);
        assert!(storage.iter().all(|n| n.city == "Ashburn"));
    }

    #[test]
    fn wuala_is_european_and_not_self_hosted() {
        let topo = ProviderTopology::ground_truth(Provider::Wuala);
        assert_eq!(topo.nodes.len(), 4);
        assert!(topo.owners().iter().all(|o| !o.contains("Wuala")));
        let countries = topo.countries();
        for c in &countries {
            assert!(["DE", "CH", "FR"].contains(c), "unexpected country {c}");
        }
        // All nodes serve both roles (no dedicated control servers, §3.1).
        assert!(topo.nodes.iter().all(|n| n.role == ServerRole::Both));
    }

    #[test]
    fn cloud_drive_uses_three_aws_regions() {
        let topo = ProviderTopology::ground_truth(Provider::CloudDrive);
        let cities: std::collections::HashSet<&str> =
            topo.nodes.iter().map(|n| n.city.as_str()).collect();
        assert_eq!(cities.len(), 3);
        assert!(cities.contains("Dublin"));
        assert!(cities.contains("Ashburn"));
        assert!(topo.owners() == vec!["Amazon.com, Inc.".to_string()]);
        // Oregon is storage-only.
        let storage_only = topo.nodes_with_role(ServerRole::Storage);
        assert_eq!(storage_only.len(), 1);
        assert_eq!(storage_only[0].city, "The Dalles");
    }

    #[test]
    fn skydrive_has_a_singapore_control_destination() {
        let topo = ProviderTopology::ground_truth(Provider::SkyDrive);
        let control = topo.nodes_with_role(ServerRole::Control);
        assert!(control.iter().any(|n| n.city == "Singapore"));
        assert!(topo.nodes.iter().any(|n| n.city == "Seattle" && n.role == ServerRole::Storage));
        assert_eq!(topo.owners(), vec!["Microsoft Corporation".to_string()]);
    }

    #[test]
    fn whois_registry_resolves_every_ground_truth_node() {
        let mut registry = IpRegistry::new();
        ProviderTopology::register_whois(&mut registry);
        for topo in ProviderTopology::all() {
            for node in &topo.nodes {
                assert_eq!(
                    registry.owner(node.addr),
                    node.owner,
                    "whois mismatch for {} ({})",
                    node.dns_name,
                    node.city
                );
            }
        }
        // An address outside every registered block stays unknown.
        assert_eq!(registry.owner(addr([203, 0, 113, 7])), "unknown");
    }

    #[test]
    fn provider_names_and_order_match_the_paper() {
        let names: Vec<&str> = Provider::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["Dropbox", "SkyDrive", "Wuala", "Google Drive", "Cloud Drive"]);
    }
}
