//! IP allocation registry (the synthetic "whois" service).
//!
//! §2.1: "The owners of the IP addresses are identified using the whois
//! service." The registry maps address blocks to owning organisations so the
//! architecture-discovery pipeline can tell, e.g., that Dropbox's storage
//! addresses belong to Amazon while its control addresses belong to Dropbox
//! itself, or that none of Wuala's data centres are owned by Wuala (§3.2).

use serde::{Deserialize, Serialize};

/// One allocated address block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpBlock {
    /// First address of the block (inclusive), host byte order.
    pub start: u32,
    /// Last address of the block (inclusive).
    pub end: u32,
    /// Owning organisation as whois would report it.
    pub owner: String,
    /// Autonomous system number announcing the block.
    pub asn: u32,
}

impl IpBlock {
    /// Creates a block from dotted-quad bounds.
    pub fn new(start: [u8; 4], end: [u8; 4], owner: &str, asn: u32) -> Self {
        let s = u32::from_be_bytes(start);
        let e = u32::from_be_bytes(end);
        assert!(s <= e, "block start must not exceed end");
        IpBlock { start: s, end: e, owner: owner.to_string(), asn }
    }

    /// Creates a CIDR-style block `base/prefix`.
    pub fn cidr(base: [u8; 4], prefix: u8, owner: &str, asn: u32) -> Self {
        assert!(prefix <= 32, "invalid prefix length");
        let base = u32::from_be_bytes(base);
        let mask = if prefix == 0 { 0 } else { u32::MAX << (32 - prefix) };
        let start = base & mask;
        let end = start | !mask;
        IpBlock { start, end, owner: owner.to_string(), asn }
    }

    /// True when the block contains the address.
    pub fn contains(&self, addr: u32) -> bool {
        (self.start..=self.end).contains(&addr)
    }

    /// Number of addresses in the block.
    pub fn size(&self) -> u64 {
        (self.end - self.start) as u64 + 1
    }
}

/// The registry of all allocated blocks.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IpRegistry {
    blocks: Vec<IpBlock>,
}

impl IpRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        IpRegistry::default()
    }

    /// Registers a block. More specific (smaller) blocks take precedence over
    /// broader ones on lookup, mirroring real allocation hierarchies.
    pub fn register(&mut self, block: IpBlock) {
        self.blocks.push(block);
    }

    /// Looks up the owner of an address (whois query). Returns the most
    /// specific covering block, if any.
    pub fn lookup(&self, addr: u32) -> Option<&IpBlock> {
        self.blocks.iter().filter(|b| b.contains(addr)).min_by_key(|b| b.size())
    }

    /// Convenience: owner name for an address, `"unknown"` when unallocated.
    pub fn owner(&self, addr: u32) -> &str {
        self.lookup(addr).map(|b| b.owner.as_str()).unwrap_or("unknown")
    }

    /// Number of registered blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when no block is registered.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Converts dotted-quad octets to the `u32` representation used everywhere.
pub fn addr(octets: [u8; 4]) -> u32 {
    u32::from_be_bytes(octets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cidr_blocks_cover_the_expected_range() {
        let b = IpBlock::cidr([10, 1, 0, 0], 16, "ExampleCo", 64500);
        assert!(b.contains(addr([10, 1, 0, 0])));
        assert!(b.contains(addr([10, 1, 255, 255])));
        assert!(!b.contains(addr([10, 2, 0, 0])));
        assert_eq!(b.size(), 65536);
        let whole = IpBlock::cidr([0, 0, 0, 0], 0, "IANA", 0);
        assert_eq!(whole.size(), 1u64 << 32);
    }

    #[test]
    fn lookup_prefers_the_most_specific_block() {
        let mut reg = IpRegistry::new();
        reg.register(IpBlock::cidr([54, 0, 0, 0], 8, "Amazon.com, Inc.", 16509));
        reg.register(IpBlock::cidr([54, 231, 0, 0], 16, "Amazon S3 (US-East)", 16509));
        assert_eq!(reg.owner(addr([54, 231, 1, 1])), "Amazon S3 (US-East)");
        assert_eq!(reg.owner(addr([54, 10, 0, 1])), "Amazon.com, Inc.");
        assert_eq!(reg.owner(addr([8, 8, 8, 8])), "unknown");
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
    }

    #[test]
    fn lookup_returns_block_details() {
        let mut reg = IpRegistry::new();
        reg.register(IpBlock::new([192, 0, 2, 0], [192, 0, 2, 255], "TestNet", 64501));
        let found = reg.lookup(addr([192, 0, 2, 42])).unwrap();
        assert_eq!(found.owner, "TestNet");
        assert_eq!(found.asn, 64501);
        assert!(reg.lookup(addr([192, 0, 3, 1])).is_none());
    }

    #[test]
    #[should_panic(expected = "block start must not exceed end")]
    fn inverted_block_bounds_panic() {
        let _ = IpBlock::new([10, 0, 0, 2], [10, 0, 0, 1], "x", 1);
    }

    #[test]
    #[should_panic(expected = "invalid prefix length")]
    fn bad_prefix_panics() {
        let _ = IpBlock::cidr([10, 0, 0, 0], 33, "x", 1);
    }
}
