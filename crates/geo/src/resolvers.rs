//! The open-resolver fleet.
//!
//! §2.1: "DNS names are resolved to IP addresses by contacting more than 2,000
//! open DNS resolvers spread around the world. ... The list has been manually
//! compiled from various sources and covers more than 100 countries and 500
//! ISPs." The synthetic fleet is generated deterministically over the world
//! city catalogue with a configurable size, and tags every resolver with an
//! ISP label so the coverage statistics the paper quotes can be reproduced.

use crate::coords::{GeoPoint, WORLD_CITIES};
use serde::{Deserialize, Serialize};

/// One open resolver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenResolver {
    /// Stable identifier within the fleet.
    pub id: u32,
    /// IPv4 address of the resolver.
    pub addr: u32,
    /// Location (the vantage point whose "view" of the provider's DNS this
    /// resolver returns).
    pub location: GeoPoint,
    /// City name.
    pub city: String,
    /// ISO country code.
    pub country: String,
    /// ISP operating the resolver.
    pub isp: String,
}

/// The generated resolver fleet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResolverFleet {
    resolvers: Vec<OpenResolver>,
}

impl ResolverFleet {
    /// Generates a fleet of `count` resolvers round-robined over the city
    /// catalogue, with ISP labels cycling through `isps_per_city` providers
    /// per city.
    pub fn generate(count: usize, isps_per_city: usize) -> ResolverFleet {
        assert!(count > 0, "fleet must not be empty");
        assert!(isps_per_city > 0, "need at least one ISP per city");
        let resolvers = (0..count)
            .map(|i| {
                let city = &WORLD_CITIES[i % WORLD_CITIES.len()];
                let isp_index = (i / WORLD_CITIES.len()) % isps_per_city;
                OpenResolver {
                    id: i as u32,
                    addr: u32::from_be_bytes([
                        198,
                        18 + (i / 65536) as u8,
                        ((i / 256) % 256) as u8,
                        (i % 256) as u8,
                    ]),
                    location: city.location,
                    city: city.name.to_string(),
                    country: city.country.to_string(),
                    isp: format!("{}-ISP-{:02}", city.country, isp_index),
                }
            })
            .collect();
        ResolverFleet { resolvers }
    }

    /// The fleet the paper describes: >2,000 resolvers.
    pub fn paper_scale() -> ResolverFleet {
        ResolverFleet::generate(2048, 8)
    }

    /// The resolvers.
    pub fn resolvers(&self) -> &[OpenResolver] {
        &self.resolvers
    }

    /// Fleet size.
    pub fn len(&self) -> usize {
        self.resolvers.len()
    }

    /// True when the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.resolvers.is_empty()
    }

    /// Number of distinct countries covered.
    pub fn country_count(&self) -> usize {
        let set: std::collections::HashSet<&str> =
            self.resolvers.iter().map(|r| r.country.as_str()).collect();
        set.len()
    }

    /// Number of distinct ISPs covered.
    pub fn isp_count(&self) -> usize {
        let set: std::collections::HashSet<&str> =
            self.resolvers.iter().map(|r| r.isp.as_str()).collect();
        set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_fleet_matches_the_description() {
        let fleet = ResolverFleet::paper_scale();
        assert!(fleet.len() >= 2000, "fleet has {}", fleet.len());
        assert!(fleet.country_count() >= 45);
        assert!(fleet.isp_count() >= 300, "only {} ISPs", fleet.isp_count());
        assert!(!fleet.is_empty());
    }

    #[test]
    fn resolver_ids_and_addresses_are_unique() {
        let fleet = ResolverFleet::generate(3000, 8);
        let ids: std::collections::HashSet<u32> = fleet.resolvers().iter().map(|r| r.id).collect();
        assert_eq!(ids.len(), 3000);
        let addrs: std::collections::HashSet<u32> =
            fleet.resolvers().iter().map(|r| r.addr).collect();
        assert_eq!(addrs.len(), 3000);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ResolverFleet::generate(500, 4);
        let b = ResolverFleet::generate(500, 4);
        assert_eq!(a.resolvers()[123], b.resolvers()[123]);
    }

    #[test]
    fn small_fleets_work() {
        let fleet = ResolverFleet::generate(3, 1);
        assert_eq!(fleet.len(), 3);
        assert_eq!(fleet.country_count(), 3);
    }

    #[test]
    #[should_panic(expected = "fleet must not be empty")]
    fn empty_fleet_is_rejected() {
        let _ = ResolverFleet::generate(0, 1);
    }
}
