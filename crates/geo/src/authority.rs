//! Authoritative DNS behaviour of each provider.
//!
//! §2.1: "cloud services rely on the DNS to distribute workload, returning
//! different IP addresses according to the originating DNS resolver". This is
//! what makes the resolver sweep informative: a provider with a single
//! centralised deployment answers every resolver with the same handful of
//! addresses, whereas Google's geo-aware DNS returns the edge node closest to
//! the resolver — which is how the study uncovers the >100 entry points of
//! Fig. 2.

use crate::coords::GeoPoint;
use crate::providers::{Provider, ProviderTopology, ServerRole};
use crate::resolvers::OpenResolver;

/// The authoritative DNS front end of one provider.
#[derive(Debug, Clone)]
pub struct AuthoritativeDns {
    topology: ProviderTopology,
}

impl AuthoritativeDns {
    /// Builds the authoritative server for a provider's ground-truth topology.
    pub fn for_provider(provider: Provider) -> AuthoritativeDns {
        AuthoritativeDns { topology: ProviderTopology::ground_truth(provider) }
    }

    /// Wraps an existing topology (useful for ablations with modified
    /// deployments).
    pub fn with_topology(topology: ProviderTopology) -> AuthoritativeDns {
        AuthoritativeDns { topology }
    }

    /// The provider this authority answers for.
    pub fn provider(&self) -> Provider {
        self.topology.provider
    }

    /// The underlying topology.
    pub fn topology(&self) -> &ProviderTopology {
        &self.topology
    }

    /// Answers a query originating from `resolver`: the set of addresses the
    /// provider would return to clients behind that resolver.
    pub fn resolve(&self, resolver: &OpenResolver) -> Vec<u32> {
        self.resolve_from(resolver.location)
    }

    /// Answers a query originating from an arbitrary location.
    pub fn resolve_from(&self, origin: GeoPoint) -> Vec<u32> {
        match self.topology.provider {
            Provider::GoogleDrive => {
                // Geo-aware answer: the two closest edge nodes.
                let mut edges: Vec<(&_, f64)> = self
                    .topology
                    .nodes
                    .iter()
                    .filter(|n| n.role == ServerRole::Edge)
                    .map(|n| (n, n.location.distance_km(&origin)))
                    .collect();
                edges.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
                edges.iter().take(2).map(|(n, _)| n.addr).collect()
            }
            _ => {
                // Centralised answer: every non-edge front end, independent of
                // the query origin.
                self.topology
                    .nodes
                    .iter()
                    .filter(|n| n.role != ServerRole::Edge)
                    .map(|n| n.addr)
                    .collect()
            }
        }
    }

    /// The reverse-DNS (PTR) record for an address, if the provider publishes
    /// one. The hybrid geolocator mines these for airport codes.
    pub fn reverse_lookup(&self, addr: u32) -> Option<&str> {
        self.topology.nodes.iter().find(|n| n.addr == addr).map(|n| n.reverse_dns.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::city_by_airport;
    use crate::resolvers::ResolverFleet;

    fn resolver_in(airport: &str) -> OpenResolver {
        let fleet = ResolverFleet::paper_scale();
        let city = city_by_airport(airport).unwrap();
        fleet
            .resolvers()
            .iter()
            .find(|r| r.city == city.name)
            .cloned()
            .expect("fleet covers every catalogue city")
    }

    #[test]
    fn centralised_providers_answer_identically_everywhere() {
        for provider in
            [Provider::Dropbox, Provider::SkyDrive, Provider::Wuala, Provider::CloudDrive]
        {
            let dns = AuthoritativeDns::for_provider(provider);
            let from_europe = dns.resolve(&resolver_in("AMS"));
            let from_asia = dns.resolve(&resolver_in("NRT"));
            let from_america = dns.resolve(&resolver_in("JFK"));
            assert_eq!(from_europe, from_asia, "{provider:?}");
            assert_eq!(from_europe, from_america, "{provider:?}");
            assert!(!from_europe.is_empty());
        }
    }

    #[test]
    fn google_answers_depend_on_the_query_origin() {
        let dns = AuthoritativeDns::for_provider(Provider::GoogleDrive);
        let from_europe = dns.resolve(&resolver_in("AMS"));
        let from_asia = dns.resolve(&resolver_in("SIN"));
        assert_ne!(from_europe, from_asia);
        // The answer from Amsterdam points at a nearby edge (same continent).
        let edge_addr = from_europe[0];
        let reverse = dns.reverse_lookup(edge_addr).unwrap();
        let ams = city_by_airport("AMS").unwrap().location;
        let node = dns.topology().nodes.iter().find(|n| n.addr == edge_addr).unwrap();
        assert!(node.location.distance_km(&ams) < 1500.0, "edge too far: {reverse}");
    }

    #[test]
    fn sweeping_all_resolvers_uncovers_many_google_entry_points() {
        let dns = AuthoritativeDns::for_provider(Provider::GoogleDrive);
        let fleet = ResolverFleet::paper_scale();
        let mut discovered: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for resolver in fleet.resolvers() {
            discovered.extend(dns.resolve(resolver));
        }
        assert!(discovered.len() > 100, "discovered only {} entry points", discovered.len());
    }

    #[test]
    fn sweeping_centralised_providers_finds_few_addresses() {
        let dns = AuthoritativeDns::for_provider(Provider::Dropbox);
        let fleet = ResolverFleet::generate(256, 2);
        let mut discovered: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for resolver in fleet.resolvers() {
            discovered.extend(dns.resolve(resolver));
        }
        assert!(discovered.len() <= 8);
    }

    #[test]
    fn reverse_lookup_only_answers_for_known_addresses() {
        let dns = AuthoritativeDns::for_provider(Provider::Wuala);
        let known = dns.topology().nodes[0].addr;
        assert!(dns.reverse_lookup(known).is_some());
        assert!(dns.reverse_lookup(0x01020304).is_none());
        assert_eq!(dns.provider(), Provider::Wuala);
    }
}
