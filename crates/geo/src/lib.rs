//! # cloudsim-geo
//!
//! The DNS / whois / geolocation substrate behind the architecture-discovery
//! part of the IMC'13 methodology (§2.1, §3.2, Fig. 2).
//!
//! The original study resolves each service's DNS names through more than
//! 2,000 open resolvers spread over 100+ countries, identifies the owner of
//! every returned address with whois, and geolocates the front-end nodes with
//! a hybrid of (i) airport codes embedded in reverse-DNS names, (ii) the
//! shortest RTT to PlanetLab landmark hosts and (iii) traceroute hints. None
//! of that infrastructure is reachable from an offline reproduction, so this
//! crate provides a synthetic but structurally faithful equivalent:
//!
//! * [`coords`] — geographic coordinates, great-circle distances and a world
//!   city catalogue (with IATA airport codes),
//! * [`resolvers`] — a deterministic fleet of open resolvers spread across the
//!   catalogue,
//! * [`registry`] — the IP-allocation (whois) registry mapping addresses to
//!   owning organisations,
//! * [`providers`] — ground-truth topologies of the five studied services
//!   (data-centre locations, owners, and Google's >100 edge nodes),
//! * [`authority`] — each provider's authoritative DNS behaviour (static
//!   answers vs. geo-aware answers that return the closest edge node),
//! * [`landmarks`] — PlanetLab-style landmark hosts and the RTT model between
//!   arbitrary points,
//! * [`geolocate`] — the hybrid geolocator combining reverse-DNS airport
//!   hints with shortest-RTT landmark estimation.
//!
//! The benchmark suite (crate `cloudbench`) drives these pieces exactly the
//! way the paper describes and evaluates the result against the synthetic
//! ground truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod authority;
pub mod coords;
pub mod geolocate;
pub mod landmarks;
pub mod providers;
pub mod registry;
pub mod resolvers;

pub use authority::AuthoritativeDns;
pub use coords::{haversine_km, City, GeoPoint, WORLD_CITIES};
pub use geolocate::{GeolocationEstimate, HybridGeolocator};
pub use landmarks::{rtt_between, Landmark, LandmarkSet};
pub use providers::{Provider, ProviderTopology, ServerNode, ServerRole};
pub use registry::{IpBlock, IpRegistry};
pub use resolvers::{OpenResolver, ResolverFleet};
