//! Geographic coordinates and the world-city catalogue.

use serde::{Deserialize, Serialize};

/// A point on the Earth's surface.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees (positive north).
    pub lat: f64,
    /// Longitude in degrees (positive east).
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point from latitude/longitude degrees.
    pub const fn new(lat: f64, lon: f64) -> Self {
        GeoPoint { lat, lon }
    }

    /// Great-circle distance to another point, in kilometres.
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        haversine_km(*self, *other)
    }
}

/// Great-circle (haversine) distance between two points in kilometres.
pub fn haversine_km(a: GeoPoint, b: GeoPoint) -> f64 {
    const EARTH_RADIUS_KM: f64 = 6371.0;
    let lat1 = a.lat.to_radians();
    let lat2 = b.lat.to_radians();
    let dlat = (b.lat - a.lat).to_radians();
    let dlon = (b.lon - a.lon).to_radians();
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

/// One catalogue city: name, ISO country code, IATA airport code, coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct City {
    /// City name.
    pub name: &'static str,
    /// ISO 3166-1 alpha-2 country code.
    pub country: &'static str,
    /// IATA code of the main airport (the token providers embed in reverse
    /// DNS names, which the hybrid geolocator exploits).
    pub airport: &'static str,
    /// Coordinates of the city centre.
    pub location: GeoPoint,
}

macro_rules! city {
    ($name:expr, $country:expr, $airport:expr, $lat:expr, $lon:expr) => {
        City {
            name: $name,
            country: $country,
            airport: $airport,
            location: GeoPoint::new($lat, $lon),
        }
    };
}

/// The world-city catalogue used to place resolvers, landmarks and provider
/// edge nodes. It spans every continent and ~60 countries; the original study
/// used resolvers in 100+ countries, a difference documented in DESIGN.md.
// Kuala Lumpur's 2-decimal latitude happens to equal 3.14; it is a
// geographic coordinate, not an approximation of pi.
#[allow(clippy::approx_constant)]
pub const WORLD_CITIES: &[City] = &[
    // Europe
    city!("Amsterdam", "NL", "AMS", 52.37, 4.90),
    city!("London", "GB", "LHR", 51.51, -0.13),
    city!("Paris", "FR", "CDG", 48.86, 2.35),
    city!("Frankfurt", "DE", "FRA", 50.11, 8.68),
    city!("Nuremberg", "DE", "NUE", 49.45, 11.08),
    city!("Zurich", "CH", "ZRH", 47.38, 8.54),
    city!("Milan", "IT", "MXP", 45.46, 9.19),
    city!("Turin", "IT", "TRN", 45.07, 7.69),
    city!("Madrid", "ES", "MAD", 40.42, -3.70),
    city!("Barcelona", "ES", "BCN", 41.39, 2.17),
    city!("Lisbon", "PT", "LIS", 38.72, -9.14),
    city!("Dublin", "IE", "DUB", 53.35, -6.26),
    city!("Brussels", "BE", "BRU", 50.85, 4.35),
    city!("Vienna", "AT", "VIE", 48.21, 16.37),
    city!("Prague", "CZ", "PRG", 50.08, 14.44),
    city!("Warsaw", "PL", "WAW", 52.23, 21.01),
    city!("Stockholm", "SE", "ARN", 59.33, 18.07),
    city!("Oslo", "NO", "OSL", 59.91, 10.75),
    city!("Copenhagen", "DK", "CPH", 55.68, 12.57),
    city!("Helsinki", "FI", "HEL", 60.17, 24.94),
    city!("Athens", "GR", "ATH", 37.98, 23.73),
    city!("Bucharest", "RO", "OTP", 44.43, 26.10),
    city!("Budapest", "HU", "BUD", 47.50, 19.04),
    city!("Kyiv", "UA", "KBP", 50.45, 30.52),
    city!("Moscow", "RU", "SVO", 55.76, 37.62),
    city!("Istanbul", "TR", "IST", 41.01, 28.98),
    city!("Lille", "FR", "LIL", 50.63, 3.06),
    city!("Enschede", "NL", "ENS", 52.22, 6.89),
    // North America
    city!("New York", "US", "JFK", 40.71, -74.01),
    city!("Ashburn", "US", "IAD", 39.04, -77.49),
    city!("Richmond", "US", "RIC", 37.54, -77.44),
    city!("Atlanta", "US", "ATL", 33.75, -84.39),
    city!("Miami", "US", "MIA", 25.76, -80.19),
    city!("Chicago", "US", "ORD", 41.88, -87.63),
    city!("Dallas", "US", "DFW", 32.78, -96.80),
    city!("Denver", "US", "DEN", 39.74, -104.99),
    city!("Seattle", "US", "SEA", 47.61, -122.33),
    city!("San Jose", "US", "SJC", 37.34, -121.89),
    city!("Los Angeles", "US", "LAX", 34.05, -118.24),
    city!("The Dalles", "US", "DLS", 45.59, -121.18),
    city!("Council Bluffs", "US", "CBF", 41.26, -95.86),
    city!("Toronto", "CA", "YYZ", 43.65, -79.38),
    city!("Montreal", "CA", "YUL", 45.50, -73.57),
    city!("Vancouver", "CA", "YVR", 49.28, -123.12),
    city!("Mexico City", "MX", "MEX", 19.43, -99.13),
    // South America
    city!("Sao Paulo", "BR", "GRU", -23.55, -46.63),
    city!("Rio de Janeiro", "BR", "GIG", -22.91, -43.17),
    city!("Buenos Aires", "AR", "EZE", -34.60, -58.38),
    city!("Santiago", "CL", "SCL", -33.45, -70.67),
    city!("Bogota", "CO", "BOG", 4.71, -74.07),
    city!("Lima", "PE", "LIM", -12.05, -77.04),
    // Asia
    city!("Tokyo", "JP", "NRT", 35.68, 139.69),
    city!("Osaka", "JP", "KIX", 34.69, 135.50),
    city!("Seoul", "KR", "ICN", 37.57, 126.98),
    city!("Beijing", "CN", "PEK", 39.90, 116.41),
    city!("Shanghai", "CN", "PVG", 31.23, 121.47),
    city!("Hong Kong", "HK", "HKG", 22.32, 114.17),
    city!("Taipei", "TW", "TPE", 25.03, 121.57),
    city!("Singapore", "SG", "SIN", 1.35, 103.82),
    city!("Kuala Lumpur", "MY", "KUL", 3.14, 101.69),
    city!("Bangkok", "TH", "BKK", 13.76, 100.50),
    city!("Jakarta", "ID", "CGK", -6.21, 106.85),
    city!("Manila", "PH", "MNL", 14.60, 120.98),
    city!("Mumbai", "IN", "BOM", 19.08, 72.88),
    city!("Delhi", "IN", "DEL", 28.61, 77.21),
    city!("Chennai", "IN", "MAA", 13.08, 80.27),
    city!("Dubai", "AE", "DXB", 25.20, 55.27),
    city!("Tel Aviv", "IL", "TLV", 32.09, 34.78),
    // Africa
    city!("Johannesburg", "ZA", "JNB", -26.20, 28.05),
    city!("Cape Town", "ZA", "CPT", -33.92, 18.42),
    city!("Nairobi", "KE", "NBO", -1.29, 36.82),
    city!("Lagos", "NG", "LOS", 6.52, 3.38),
    city!("Cairo", "EG", "CAI", 30.04, 31.24),
    // Oceania
    city!("Sydney", "AU", "SYD", -33.87, 151.21),
    city!("Melbourne", "AU", "MEL", -37.81, 144.96),
    city!("Auckland", "NZ", "AKL", -36.85, 174.76),
];

/// Finds a catalogue city by its IATA airport code.
pub fn city_by_airport(code: &str) -> Option<&'static City> {
    WORLD_CITIES.iter().find(|c| c.airport.eq_ignore_ascii_case(code))
}

/// The location of the original testbed (University of Twente, Enschede, NL).
pub const TESTBED: GeoPoint = GeoPoint::new(52.24, 6.85);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_known_distances() {
        let london = city_by_airport("LHR").unwrap().location;
        let new_york = city_by_airport("JFK").unwrap().location;
        let d = haversine_km(london, new_york);
        assert!((5540.0..5620.0).contains(&d), "LHR-JFK distance {d}");
        let zero = haversine_km(london, london);
        assert!(zero < 1e-9);
        // Symmetry.
        assert!((haversine_km(new_york, london) - d).abs() < 1e-9);
    }

    #[test]
    fn catalogue_is_broad_and_consistent() {
        assert!(WORLD_CITIES.len() >= 70, "catalogue has {} cities", WORLD_CITIES.len());
        let countries: std::collections::HashSet<&str> =
            WORLD_CITIES.iter().map(|c| c.country).collect();
        assert!(countries.len() >= 45, "only {} countries", countries.len());
        let airports: std::collections::HashSet<&str> =
            WORLD_CITIES.iter().map(|c| c.airport).collect();
        assert_eq!(airports.len(), WORLD_CITIES.len(), "airport codes must be unique");
        for c in WORLD_CITIES {
            assert!(c.location.lat.abs() <= 90.0);
            assert!(c.location.lon.abs() <= 180.0);
            assert_eq!(c.airport.len(), 3);
        }
    }

    #[test]
    fn airport_lookup_is_case_insensitive() {
        assert_eq!(city_by_airport("ams").unwrap().name, "Amsterdam");
        assert_eq!(city_by_airport("AMS").unwrap().name, "Amsterdam");
        assert!(city_by_airport("XXX").is_none());
    }

    #[test]
    fn testbed_is_near_enschede() {
        let enschede = city_by_airport("ENS").unwrap().location;
        assert!(haversine_km(TESTBED, enschede) < 20.0);
    }

    #[test]
    fn geopoint_distance_method_matches_free_function() {
        let a = GeoPoint::new(10.0, 20.0);
        let b = GeoPoint::new(-30.0, 120.0);
        assert_eq!(a.distance_km(&b), haversine_km(a, b));
    }
}
