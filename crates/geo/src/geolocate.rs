//! Hybrid geolocation of discovered front-end addresses.
//!
//! §2.1: popular geolocation databases are unreliable for cloud providers, so
//! the study uses a hybrid of (i) informative strings — International Airport
//! Codes — in reverse-DNS names, (ii) the shortest RTT to PlanetLab nodes and
//! (iii) traceroute hints, achieving roughly 100 km precision.
//!
//! [`HybridGeolocator`] implements the first two stages over the synthetic
//! substrate. Because the ground truth is known, every estimate carries its
//! error distance, which lets the test-suite verify the claimed precision.

use crate::coords::{city_by_airport, GeoPoint};
use crate::landmarks::LandmarkSet;
use serde::{Deserialize, Serialize};

/// How an estimate was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GeolocationMethod {
    /// An airport code embedded in the reverse-DNS name matched the catalogue.
    AirportCode,
    /// Fallback: location of the landmark with the smallest measured RTT.
    ShortestRtt,
}

/// The result of geolocating one address.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeolocationEstimate {
    /// Estimated location.
    pub location: GeoPoint,
    /// Which stage of the hybrid produced the estimate.
    pub method: GeolocationMethod,
    /// Great-circle error against the ground truth, in kilometres.
    pub error_km: f64,
}

/// The hybrid geolocator.
#[derive(Debug, Clone)]
pub struct HybridGeolocator {
    landmarks: LandmarkSet,
    rtt_seed: u64,
}

impl HybridGeolocator {
    /// Creates a geolocator over the default landmark set.
    pub fn new(rtt_seed: u64) -> Self {
        HybridGeolocator { landmarks: LandmarkSet::planetlab_like(), rtt_seed }
    }

    /// Creates a geolocator with an explicit landmark set (for ablations on
    /// landmark density).
    pub fn with_landmarks(landmarks: LandmarkSet, rtt_seed: u64) -> Self {
        HybridGeolocator { landmarks, rtt_seed }
    }

    /// The landmark set in use.
    pub fn landmarks(&self) -> &LandmarkSet {
        &self.landmarks
    }

    /// Geolocates a front end. `reverse_dns` is the PTR record (if any) and
    /// `true_location` is the ground truth used both to synthesise the RTT
    /// measurements and to score the estimate.
    pub fn locate(
        &self,
        reverse_dns: Option<&str>,
        true_location: GeoPoint,
    ) -> GeolocationEstimate {
        if let Some(name) = reverse_dns {
            if let Some(city) = Self::airport_hint(name) {
                return GeolocationEstimate {
                    location: city,
                    method: GeolocationMethod::AirportCode,
                    error_km: city.distance_km(&true_location),
                };
            }
        }
        // RTT stage: probe from every landmark towards the (unknown) target;
        // the landmark with the smallest RTT is the estimate.
        let (closest, _rtt) = self
            .landmarks
            .closest(true_location, self.rtt_seed)
            .expect("landmark set must not be empty");
        GeolocationEstimate {
            location: closest.location,
            method: GeolocationMethod::ShortestRtt,
            error_km: closest.location.distance_km(&true_location),
        }
    }

    /// Extracts an airport-code hint from a reverse-DNS name: any dot- or
    /// dash-separated token that matches a catalogue IATA code (ignoring
    /// trailing digits, so `ams15s01` still hints at Amsterdam).
    fn airport_hint(reverse_dns: &str) -> Option<GeoPoint> {
        for raw in reverse_dns.split(['.', '-', '_']) {
            let token: String = raw.chars().take_while(|c| c.is_ascii_alphabetic()).collect();
            if token.len() == 3 {
                if let Some(city) = city_by_airport(&token) {
                    return Some(city.location);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::city_by_airport;
    use crate::providers::{Provider, ProviderTopology};

    #[test]
    fn airport_codes_in_reverse_dns_are_used_first() {
        let geo = HybridGeolocator::new(1);
        let truth = city_by_airport("SJC").unwrap().location;
        let est = geo.locate(Some("client1.sjc.dropbox.com"), truth);
        assert_eq!(est.method, GeolocationMethod::AirportCode);
        assert!(est.error_km < 50.0);
    }

    #[test]
    fn airport_hint_handles_digit_suffixes_and_separators() {
        let geo = HybridGeolocator::new(1);
        let truth = city_by_airport("AMS").unwrap().location;
        for name in ["ams15s01-in-f1.1e100.example", "edge-ams-3.provider.example", "x.AMS.example"]
        {
            let est = geo.locate(Some(name), truth);
            assert_eq!(est.method, GeolocationMethod::AirportCode, "{name}");
            assert!(est.error_km < 50.0, "{name}");
        }
    }

    #[test]
    fn names_without_hints_fall_back_to_rtt() {
        let geo = HybridGeolocator::new(2);
        let truth = city_by_airport("ZRH").unwrap().location;
        let est = geo.locate(Some("static.88-198-10-1.clients.your-server.example"), truth);
        assert_eq!(est.method, GeolocationMethod::ShortestRtt);
        // The paper quotes ~100 km precision for the hybrid method.
        assert!(est.error_km < 300.0, "error {}", est.error_km);
        let est_none = geo.locate(None, truth);
        assert_eq!(est_none.method, GeolocationMethod::ShortestRtt);
    }

    #[test]
    fn whole_ground_truth_is_located_with_reasonable_error() {
        let geo = HybridGeolocator::new(3);
        let mut worst: f64 = 0.0;
        let mut count = 0usize;
        for topo in ProviderTopology::all() {
            for node in &topo.nodes {
                let est = geo.locate(Some(&node.reverse_dns), node.location);
                worst = worst.max(est.error_km);
                count += 1;
            }
        }
        assert!(count > 100);
        assert!(worst < 500.0, "worst-case error {worst} km");
    }

    #[test]
    fn google_edges_resolve_via_airport_codes() {
        let geo = HybridGeolocator::new(4);
        let topo = ProviderTopology::ground_truth(Provider::GoogleDrive);
        let mut airport_hits = 0usize;
        let mut edges = 0usize;
        for node in
            topo.nodes.iter().filter(|n| matches!(n.role, crate::providers::ServerRole::Edge))
        {
            edges += 1;
            let est = geo.locate(Some(&node.reverse_dns), node.location);
            if est.method == GeolocationMethod::AirportCode {
                airport_hits += 1;
                assert!(est.error_km < 50.0);
            }
        }
        assert!(edges > 100);
        assert!(airport_hits * 10 >= edges * 9, "{airport_hits}/{edges} airport hits");
    }
}
