//! The sync client: login, idle polling and batch synchronisation.
//!
//! `SyncClient` executes a service profile against the network simulator:
//! every login exchange, keep-alive poll, metadata commit and chunk upload
//! becomes traffic in the experiment trace, from which the benchmark suite
//! extracts exactly the metrics the paper defines (start-up delay, completion
//! time, overhead, SYN counts, idle volume).

use crate::deployment::Deployment;
use crate::planner::{FilePlan, UploadPlanner};
use crate::profile::{ServiceProfile, TransferMode};
use crate::retry::RetryPolicy;
use crate::session::{FaultStats, RangedRestore, UploadSession};
use cloudsim_net::http::{HttpExchange, HttpOverhead};
use cloudsim_net::tcp::{ConnectionOptions, TcpConnection};
use cloudsim_net::{AccessLink, FaultSchedule, Simulator, TransferInterrupted};
use cloudsim_trace::{FlowKind, LatencyHistogram, SimDuration, SimTime};
use cloudsim_workload::seed::derive_seed;
use cloudsim_workload::GeneratedFile;

/// Seed salt for upload-retry jitter draws (per chunk, per attempt).
const UPLOAD_RETRY_SALT: u64 = 0xB0FF_0001;
/// Seed salt for restore-retry jitter draws (per file, per attempt).
const RESTORE_RETRY_SALT: u64 = 0xB0FF_0002;

/// The outcome of one restore operation (a batch of paths pulled from one
/// owner's namespace — the download mirror of [`SyncOutcome`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RestoreOutcome {
    /// When the client asked the control plane for the manifests.
    pub requested_at: SimTime,
    /// When the first storage payload byte arrived, if anything travelled
    /// (`None` when every chunk was already local, or nothing restored).
    pub first_byte_at: Option<SimTime>,
    /// When the restore finished (manifest fetch included).
    pub completed_at: SimTime,
    /// Files reconstructed byte-identically.
    pub files_restored: usize,
    /// Files that failed with a typed restore error (e.g. the owner
    /// hard-deleted the manifest mid-run) — failures are outcomes, never
    /// panics. Pulling a user with no live files counts as one failure.
    pub files_failed: usize,
    /// Plaintext bytes of the restored files.
    pub logical_bytes: u64,
    /// Payload bytes that actually travelled downstream.
    pub downloaded_payload: u64,
    /// Plaintext bytes the local-copy dedup check kept off the wire.
    pub dedup_skipped_bytes: u64,
}

impl RestoreOutcome {
    /// Simulated seconds the restore took end to end.
    pub fn duration_secs(&self) -> f64 {
        (self.completed_at - self.requested_at).as_secs_f64()
    }

    /// Simulated seconds from the request to the first payload byte, if any
    /// payload travelled.
    pub fn ttfb_secs(&self) -> Option<f64> {
        self.first_byte_at.map(|t| (t - self.requested_at).as_secs_f64())
    }
}

/// The outcome of one batch synchronisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncOutcome {
    /// When the testing application finished modifying the files.
    pub modification_time: SimTime,
    /// When the client began talking to the storage servers.
    pub sync_started_at: SimTime,
    /// When the last storage payload left the client (upload complete).
    pub completed_at: SimTime,
    /// Number of files synchronised.
    pub files: usize,
    /// Sum of the plaintext file sizes.
    pub logical_bytes: u64,
    /// Payload bytes the planner decided to upload.
    pub uploaded_payload: u64,
}

/// The outcome of one fault-injected batch synchronisation: the plain
/// [`SyncOutcome`] plus what recovery cost and how much payload became
/// durable. `outcome.completed_at` is when the *session* finished — whether
/// by committing every chunk or by exhausting retry budgets.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultedSyncOutcome {
    /// The plain sync accounting (timing, planned payload).
    pub outcome: SyncOutcome,
    /// Payload bytes durably committed (whole chunks the server acked).
    pub committed_payload: u64,
    /// Chunks abandoned after the retry budget ran out.
    pub abandoned_chunks: usize,
    /// True when every planned chunk committed.
    pub completed: bool,
    /// Interruption / retry / wasted-byte accounting for the batch.
    pub stats: FaultStats,
    /// Distribution of the seeded backoff waits the batch actually slept.
    pub backoff_waits: LatencyHistogram,
}

/// The outcome of one fault-injected restore: the plain [`RestoreOutcome`]
/// plus recovery accounting. A file only counts as restored once its ranged
/// download completed *and* the reassembled content passed SHA-256
/// validation; abandoned files count as failed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultedRestoreOutcome {
    /// The plain restore accounting (timing, payload, failures).
    pub outcome: RestoreOutcome,
    /// Files abandoned mid-download after the retry budget ran out.
    pub files_abandoned: usize,
    /// True when nothing was abandoned and every checksum verified.
    pub completed: bool,
    /// Interruption / retry / wasted-byte accounting for the restore.
    pub stats: FaultStats,
    /// Distribution of the seeded backoff waits the restore actually slept.
    pub backoff_waits: LatencyHistogram,
}

/// A sync client bound to one service profile and one deployment.
#[derive(Debug)]
pub struct SyncClient {
    profile: ServiceProfile,
    deployment: Deployment,
    planner: UploadPlanner,
    control_conn: Option<TcpConnection>,
    notify_conn: Option<TcpConnection>,
    storage_conn: Option<TcpConnection>,
    logged_in: bool,
    last_activity: SimTime,
}

impl SyncClient {
    /// Creates a client for a profile, building its deployment. The upload
    /// pipeline runs in parallel; see [`SyncClient::with_pipeline`] to pin a
    /// mode (plans are byte-identical either way).
    pub fn new(profile: ServiceProfile) -> SyncClient {
        SyncClient::with_pipeline(profile, cloudsim_storage::UploadPipeline::parallel())
    }

    /// Creates a client whose planner uses the given pipeline.
    pub fn with_pipeline(
        profile: ServiceProfile,
        pipeline: cloudsim_storage::UploadPipeline,
    ) -> SyncClient {
        SyncClient::from_planner(UploadPlanner::with_pipeline(profile.clone(), pipeline), profile)
    }

    /// Creates a client for a named user account committing into a shared
    /// object store — the fleet constructor. Each client still owns its
    /// deployment, connections and client-side dedup/delta state; only the
    /// server-side store is shared.
    pub fn for_user(
        profile: ServiceProfile,
        pipeline: cloudsim_storage::UploadPipeline,
        store: cloudsim_storage::ObjectStore,
        user: &str,
    ) -> SyncClient {
        SyncClient::for_user_on_link(profile, pipeline, store, user, &AccessLink::campus())
    }

    /// The fleet constructor for a client behind a specific access link: the
    /// deployment's paths are composed with the link, so an ADSL user and a
    /// fibre user of the same service live in different network worlds.
    pub fn for_user_on_link(
        profile: ServiceProfile,
        pipeline: cloudsim_storage::UploadPipeline,
        store: cloudsim_storage::ObjectStore,
        user: &str,
        link: &AccessLink,
    ) -> SyncClient {
        SyncClient::with_deployment(
            UploadPlanner::for_user(profile.clone(), pipeline, store, user),
            Deployment::with_link(&profile, link),
            profile,
        )
    }

    fn from_planner(planner: UploadPlanner, profile: ServiceProfile) -> SyncClient {
        let deployment = Deployment::new(&profile);
        SyncClient::with_deployment(planner, deployment, profile)
    }

    fn with_deployment(
        planner: UploadPlanner,
        deployment: Deployment,
        profile: ServiceProfile,
    ) -> SyncClient {
        SyncClient {
            planner,
            profile,
            deployment,
            control_conn: None,
            notify_conn: None,
            storage_conn: None,
            logged_in: false,
            last_activity: SimTime::ZERO,
        }
    }

    /// The profile driving this client.
    pub fn profile(&self) -> &ServiceProfile {
        &self.profile
    }

    /// The deployment (topology) of the service.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// The upload planner (exposes server-side state and dedup statistics).
    pub fn planner(&self) -> &UploadPlanner {
        &self.planner
    }

    /// The virtual instant of the client's most recent protocol activity
    /// (login, poll, sync, restore or departure) — the point an idle window
    /// resumes polling from. The fleet scheduler reads this to stitch
    /// activated and idle rounds onto one continuous per-client timeline.
    pub fn last_activity(&self) -> SimTime {
        self.last_activity
    }

    /// Performs the application start-up: authenticates against every control
    /// server and checks whether any content needs updating (§3.1, Fig. 1).
    /// Returns the time login completed.
    pub fn login(&mut self, sim: &mut Simulator, start: SimTime) -> SimTime {
        let servers = self.deployment.control_hosts.clone();
        let per_server = self.profile.login_bytes / servers.len().max(1) as u64;
        let mut t = start;
        for (i, host) in servers.iter().enumerate() {
            let mut conn = TcpConnection::open(
                sim,
                &self.deployment.network,
                *host,
                ConnectionOptions::https(FlowKind::Control),
                t,
            );
            // Roughly one third of the login volume goes up (credentials,
            // state queries), two thirds come down (account state, metadata).
            let exchange =
                HttpExchange::new(per_server / 3, per_server * 2 / 3, self.profile.server_think)
                    .with_overhead(self.profile.http_overhead);
            let established = conn.established_at();
            let done = exchange.execute(&mut conn, sim, &self.deployment.network, established);
            // Stagger server contacts slightly, as observed in real login
            // sequences; keep the first connection as the long-lived control
            // channel.
            if i == 0 {
                self.control_conn = Some(conn);
            } else {
                // Secondary login servers are contacted and released.
            }
            t = done + SimDuration::from_millis(20);
        }

        // Open the notification channel (plain HTTP for Dropbox).
        let notify_opts = if self.profile.notification_plain_http {
            ConnectionOptions::http(FlowKind::Notification)
        } else {
            ConnectionOptions::https(FlowKind::Notification)
        };
        let notify = TcpConnection::open(
            sim,
            &self.deployment.network,
            self.deployment.notification_host,
            notify_opts,
            t,
        );
        t = notify.established_at();
        self.notify_conn = Some(notify);
        self.logged_in = true;
        self.last_activity = t;
        t
    }

    /// Keeps the client idle until `until`, generating the periodic keep-alive
    /// traffic of §3.1 / Fig. 1. Returns the time of the last poll.
    pub fn idle_until(&mut self, sim: &mut Simulator, until: SimTime) -> SimTime {
        assert!(self.logged_in, "idle_until requires a prior login");
        let mut t = self.last_activity;
        loop {
            let next = t + self.profile.polling_interval;
            if next > until {
                break;
            }
            t = self.poll_once(sim, next);
        }
        self.last_activity = t;
        t
    }

    /// One keep-alive poll at time `at`.
    fn poll_once(&mut self, sim: &mut Simulator, at: SimTime) -> SimTime {
        let request = self.profile.polling_bytes / 2;
        let response = self.profile.polling_bytes - request;
        if self.profile.polling_new_connection {
            // Cloud Drive: a fresh HTTPS connection per poll, torn down after.
            let mut conn = TcpConnection::open(
                sim,
                &self.deployment.network,
                self.deployment.primary_control(),
                ConnectionOptions::https(FlowKind::Notification),
                at,
            );
            let established = conn.established_at();
            let done = HttpExchange::new(request, response, SimDuration::from_millis(20))
                .with_overhead(HttpOverhead::LEAN)
                .execute(&mut conn, sim, &self.deployment.network, established);
            conn.close(sim, &self.deployment.network, done)
        } else {
            let conn = self.notify_conn.as_mut().expect("notification channel missing");
            conn.request(
                sim,
                &self.deployment.network,
                at,
                request,
                response,
                SimDuration::from_millis(15),
            )
        }
    }

    /// Synchronises a batch of files that were written to the local folder at
    /// `modification_time`.
    pub fn sync_batch(
        &mut self,
        sim: &mut Simulator,
        files: &[GeneratedFile],
        modification_time: SimTime,
    ) -> SyncOutcome {
        assert!(!files.is_empty(), "sync_batch needs at least one file");
        if !self.logged_in {
            let done = self.login(sim, modification_time - SimDuration::from_secs(60));
            debug_assert!(done <= modification_time || self.logged_in);
        }

        // Change detection / batching delay (§5.1).
        let detection = self.profile.startup_delay
            + self.profile.startup_delay_per_file.saturating_mul(files.len() as u64);
        let sync_start = modification_time + detection;

        // Plan every file (capabilities applied here). The batch goes through
        // the upload pipeline as one unit, so the pure per-chunk work fans
        // out across worker threads while the plans stay byte-identical to
        // sequential per-file planning.
        let batch: Vec<(&str, &[u8])> =
            files.iter().map(|f| (f.path.as_str(), f.content.as_slice())).collect();
        let plans: Vec<FilePlan> = self.planner.plan_batch(&batch);
        let uploaded_payload: u64 = plans.iter().map(|p| p.upload_bytes()).sum();
        let logical_bytes: u64 = plans.iter().map(|p| p.logical_bytes).sum();
        let metadata_total: u64 = plans.iter().map(|p| p.metadata_bytes).sum();

        // Initial metadata exchange with the control plane announcing the batch.
        let control_done = {
            let network = self.deployment.network.clone();
            let conn = self.ensure_control(sim, sync_start);
            HttpExchange::new(metadata_total.clamp(600, 64_000), 800, SimDuration::from_millis(30))
                .execute(conn, sim, &network, sync_start)
        };

        // Storage transfer according to the service's transfer mode.
        let transfer_start = control_done.max(sync_start);
        let completed = match self.profile.transfer_mode {
            TransferMode::Bundled => self.transfer_bundled(sim, &plans, transfer_start),
            TransferMode::SequentialWithAcks => {
                self.transfer_sequential(sim, &plans, transfer_start)
            }
            TransferMode::ConnectionPerFile { control_connections_per_file } => self
                .transfer_connection_per_file(
                    sim,
                    &plans,
                    transfer_start,
                    control_connections_per_file,
                ),
        };

        // Final commit on the control channel.
        let final_commit = {
            let network = self.deployment.network.clone();
            let conn = self.ensure_control(sim, completed);
            HttpExchange::new(900, 500, SimDuration::from_millis(30))
                .execute(conn, sim, &network, completed)
        };
        self.last_activity = final_commit;

        SyncOutcome {
            modification_time,
            sync_started_at: sync_start,
            completed_at: completed,
            files: files.len(),
            logical_bytes,
            uploaded_payload,
        }
    }

    /// Dropbox-style bundling: one reused storage connection, small files
    /// coalesced into multi-megabyte bundles, chunks of large files pipelined.
    fn transfer_bundled(
        &mut self,
        sim: &mut Simulator,
        plans: &[FilePlan],
        start: SimTime,
    ) -> SimTime {
        const BUNDLE_LIMIT: u64 = 4 * 1024 * 1024;
        let network = self.deployment.network.clone();
        let think = self.profile.server_think;
        let per_file = self.profile.per_file_overhead;
        let http = self.profile.http_overhead;
        let mut t = start;
        let mut pending_bundle = 0u64;

        // Collect the work items first so connection handling stays simple.
        let mut items: Vec<u64> = Vec::new();
        for plan in plans {
            t += per_file;
            for chunk in &plan.chunks {
                if chunk.upload_bytes == 0 {
                    continue;
                }
                items.push(chunk.upload_bytes);
            }
        }
        let conn = self.ensure_storage(sim, start);
        let mut last = start;
        for bytes in items {
            if bytes >= BUNDLE_LIMIT {
                // Large chunk: flush any pending bundle, then its own request.
                if pending_bundle > 0 {
                    last = HttpExchange::new(pending_bundle, 400, think)
                        .with_overhead(http)
                        .execute(conn, sim, &network, t.max(last));
                    pending_bundle = 0;
                }
                last = HttpExchange::new(bytes, 400, think).with_overhead(http).execute(
                    conn,
                    sim,
                    &network,
                    t.max(last),
                );
            } else {
                pending_bundle += bytes;
                if pending_bundle >= BUNDLE_LIMIT {
                    last = HttpExchange::new(pending_bundle, 400, think)
                        .with_overhead(http)
                        .execute(conn, sim, &network, t.max(last));
                    pending_bundle = 0;
                }
            }
        }
        if pending_bundle > 0 {
            last = HttpExchange::new(pending_bundle, 400, think).with_overhead(http).execute(
                conn,
                sim,
                &network,
                t.max(last),
            );
        }
        // The per-file client processing cannot finish after the network work
        // it feeds; completion is whichever is later.
        last.max(t)
    }

    /// SkyDrive / Wuala: one reused storage connection, one request per chunk,
    /// waiting for the application-layer acknowledgement before the next file.
    fn transfer_sequential(
        &mut self,
        sim: &mut Simulator,
        plans: &[FilePlan],
        start: SimTime,
    ) -> SimTime {
        let network = self.deployment.network.clone();
        let think = self.profile.server_think;
        let per_file = self.profile.per_file_overhead;
        let http = self.profile.http_overhead;
        let conn = self.ensure_storage(sim, start);
        let mut t = start;
        for plan in plans {
            t += per_file;
            for chunk in &plan.chunks {
                if chunk.upload_bytes == 0 {
                    continue;
                }
                t = HttpExchange::new(chunk.upload_bytes, 350, think)
                    .with_overhead(http)
                    .execute(conn, sim, &network, t);
            }
        }
        t
    }

    /// Google Drive / Cloud Drive: a fresh TCP+TLS storage connection per
    /// file, plus `extra_control` new control connections per file operation.
    fn transfer_connection_per_file(
        &mut self,
        sim: &mut Simulator,
        plans: &[FilePlan],
        start: SimTime,
        extra_control: u32,
    ) -> SimTime {
        let network = self.deployment.network.clone();
        let think = self.profile.server_think;
        let per_file = self.profile.per_file_overhead;
        let http = self.profile.http_overhead;
        let control_host = self.deployment.primary_control();
        let storage_host = self.deployment.storage_host;
        let mut t = start;
        for plan in plans {
            t += per_file;
            // Control connections opened for this file operation (Cloud Drive
            // opens three, §4.2), each a short-lived HTTPS exchange.
            let mut control_done = t;
            for _ in 0..extra_control {
                let mut conn = TcpConnection::open(
                    sim,
                    &network,
                    control_host,
                    ConnectionOptions::https(FlowKind::Control),
                    t,
                );
                let established = conn.established_at();
                control_done = HttpExchange::new(700, 500, SimDuration::from_millis(25)).execute(
                    &mut conn,
                    sim,
                    &network,
                    established,
                );
                conn.close(sim, &network, control_done);
            }
            let mut file_done = control_done.max(t);
            if plan.upload_bytes() == 0 {
                t = file_done;
                continue;
            }
            let mut conn = TcpConnection::open(
                sim,
                &network,
                storage_host,
                ConnectionOptions::https(FlowKind::Storage),
                file_done,
            );
            for chunk in &plan.chunks {
                if chunk.upload_bytes == 0 {
                    continue;
                }
                let request_start = file_done.max(conn.established_at());
                file_done = HttpExchange::new(chunk.upload_bytes, 350, think)
                    .with_overhead(http)
                    .execute(&mut conn, sim, &network, request_start);
            }
            conn.close(sim, &network, file_done);
            t = file_done;
        }
        t
    }

    /// Restores every live file of `owner`'s namespace — the fleet's
    /// "pull another user's content" operation (and, with `owner` = own
    /// account, the §4.3 delete/restore test at full fidelity). An owner
    /// with no live files (departed, purged) yields a clean one-failure
    /// outcome. See [`SyncClient::restore_batch`].
    pub fn restore_user(
        &mut self,
        sim: &mut Simulator,
        owner: &str,
        at: SimTime,
    ) -> RestoreOutcome {
        let paths = self.planner.store().list_files(owner);
        self.restore_batch(sim, owner, &paths, at)
    }

    /// Restores `owner`'s files at the given paths, driving the manifest
    /// fetch over the control channel and the chunk downloads over the
    /// storage connection's *downstream* side (time-to-first-byte and
    /// completion are measured like the upload path measures sync time).
    /// Chunks the client already holds locally are not re-downloaded and
    /// delta downloads apply against locally held bases — the planner's
    /// [`UploadPlanner::plan_restore_paths`] decides, this method only moves
    /// the bytes. Failed files (typed restore errors) cost a control
    /// round-trip but no storage traffic.
    pub fn restore_batch(
        &mut self,
        sim: &mut Simulator,
        owner: &str,
        paths: &[String],
        at: SimTime,
    ) -> RestoreOutcome {
        if !self.logged_in {
            let done = self.login(sim, at - SimDuration::from_secs(60));
            debug_assert!(done <= at || self.logged_in);
        }
        let plans = self.planner.plan_restore_paths(owner, paths);

        let mut files_restored = 0usize;
        let mut files_failed = 0usize;
        let mut logical_bytes = 0u64;
        let mut downloaded_payload = 0u64;
        let mut dedup_skipped_bytes = 0u64;
        let mut metadata_down = 0u64;
        let mut downloads: Vec<u64> = Vec::new();
        for plan in &plans {
            match plan {
                Ok(file) => {
                    files_restored += 1;
                    logical_bytes += file.logical_bytes();
                    dedup_skipped_bytes += file.dedup_skipped_bytes();
                    metadata_down += file.metadata_bytes;
                    let bytes = file.download_bytes();
                    downloaded_payload += bytes;
                    if bytes > 0 {
                        downloads.push(bytes);
                    }
                }
                Err(_) => {
                    files_failed += 1;
                    metadata_down += 200; // the error reply
                }
            }
        }
        // An empty pull (the owner left and took the namespace with it) is
        // still an answered question: one failure, one control round-trip.
        if plans.is_empty() {
            files_failed = 1;
            metadata_down = 200;
        }

        // Control plane: request the manifest set, download the chunk lists.
        let control_done = {
            let network = self.deployment.network.clone();
            let conn = self.ensure_control(sim, at);
            HttpExchange::new(600, metadata_down.clamp(300, 64_000), SimDuration::from_millis(30))
                .execute(conn, sim, &network, at)
        };

        // Storage plane: one GET per file that has bytes to move, on the
        // reused storage connection, filling the downstream pipe.
        let network = self.deployment.network.clone();
        let think = self.profile.server_think;
        let mut first_byte_at: Option<SimTime> = None;
        let mut t = control_done;
        if !downloads.is_empty() {
            let conn = self.ensure_storage(sim, control_done);
            for bytes in downloads {
                let outcome = conn.fetch(sim, &network, t, 250, bytes, think);
                if first_byte_at.is_none() {
                    first_byte_at = Some(outcome.first_byte_at);
                }
                t = outcome.completed_at;
            }
        }
        self.last_activity = t;

        RestoreOutcome {
            requested_at: at,
            first_byte_at,
            completed_at: t,
            files_restored,
            files_failed,
            logical_bytes,
            downloaded_payload,
            dedup_skipped_bytes,
        }
    }

    /// Synchronises a batch under a seeded outage schedule with a resumable
    /// upload session: every chunk is driven through
    /// [`TcpConnection::send_faulted`], and when a cut kills the transfer the
    /// session persists the last committed offset so the retry — granted by
    /// `policy`, after a backoff that spends *virtual-clock* time — re-drives
    /// only the uncommitted tail over a freshly dialled connection. When the
    /// budget runs out the chunk is abandoned and the batch moves on.
    ///
    /// Two deliberate simplifications: the control plane stays fault-free
    /// (metadata exchanges are tiny and real clients retry them invisibly —
    /// only storage transfers feel the outages), and the session drives
    /// chunks one at a time regardless of the profile's transfer mode, so
    /// the fault-free control for inflation comparisons is this same method
    /// with [`FaultSchedule::NONE`], not [`SyncClient::sync_batch`].
    ///
    /// `seed` feeds the per-(chunk, attempt) jitter draws; same seed, same
    /// schedule, same virtual timeline.
    #[allow(clippy::too_many_arguments)]
    pub fn sync_batch_faulted(
        &mut self,
        sim: &mut Simulator,
        files: &[GeneratedFile],
        modification_time: SimTime,
        faults: &FaultSchedule,
        policy: &dyn RetryPolicy,
        seed: u64,
    ) -> FaultedSyncOutcome {
        assert!(!files.is_empty(), "sync_batch_faulted needs at least one file");
        if !self.logged_in {
            let done = self.login(sim, modification_time - SimDuration::from_secs(60));
            debug_assert!(done <= modification_time || self.logged_in);
        }
        let detection = self.profile.startup_delay
            + self.profile.startup_delay_per_file.saturating_mul(files.len() as u64);
        let sync_start = modification_time + detection;

        let batch: Vec<(&str, &[u8])> =
            files.iter().map(|f| (f.path.as_str(), f.content.as_slice())).collect();
        let plans: Vec<FilePlan> = self.planner.plan_batch(&batch);
        let uploaded_payload: u64 = plans.iter().map(|p| p.upload_bytes()).sum();
        let logical_bytes: u64 = plans.iter().map(|p| p.logical_bytes).sum();
        let metadata_total: u64 = plans.iter().map(|p| p.metadata_bytes).sum();

        let control_done = {
            let network = self.deployment.network.clone();
            let conn = self.ensure_control(sim, sync_start);
            HttpExchange::new(metadata_total.clamp(600, 64_000), 800, SimDuration::from_millis(30))
                .execute(conn, sim, &network, sync_start)
        };

        let transfer_start = control_done.max(sync_start);
        let mut session = UploadSession::new(
            plans.iter().flat_map(|p| p.chunks.iter().map(|c| c.upload_bytes)).collect(),
        );
        let network = self.deployment.network.clone();
        let mut t = transfer_start;
        let mut current = usize::MAX;
        let mut attempt = 0u32;
        let mut backoff_waits = LatencyHistogram::new();
        while let Some((idx, tail)) = session.remaining() {
            if idx != current {
                current = idx;
                attempt = 0;
            }
            let interrupted = self.drive_upload(sim, &network, t, tail, faults);
            match interrupted {
                Ok(done) => {
                    t = done;
                    session.commit();
                }
                Err(int) => {
                    session.interrupted(&int);
                    attempt += 1;
                    let draw = derive_seed(seed, UPLOAD_RETRY_SALT, idx as u64, attempt as u64);
                    match policy.backoff(attempt, draw) {
                        Some(wait) => {
                            session.retried(wait);
                            backoff_waits.record(wait);
                            // Backoff burns virtual-clock time like think
                            // time does, so retries interleave with the
                            // fleet's temporal schedule.
                            t = int.interrupted_at + wait;
                        }
                        None => {
                            session.abandon();
                            t = int.interrupted_at;
                        }
                    }
                }
            }
        }

        // Final commit on the (fault-free) control channel.
        let final_commit = {
            let network = self.deployment.network.clone();
            let conn = self.ensure_control(sim, t);
            HttpExchange::new(900, 500, SimDuration::from_millis(30))
                .execute(conn, sim, &network, t)
        };
        self.last_activity = final_commit;

        FaultedSyncOutcome {
            outcome: SyncOutcome {
                modification_time,
                sync_started_at: sync_start,
                completed_at: t,
                files: files.len(),
                logical_bytes,
                uploaded_payload,
            },
            committed_payload: session.committed_payload(),
            abandoned_chunks: session.abandoned_chunks(),
            completed: session.is_complete(),
            stats: session.stats(),
            backoff_waits,
        }
    }

    /// One upload attempt under faults: fails at zero wire cost when the
    /// link is already down at `t` (the client never reaches the handshake),
    /// otherwise dials a fresh storage connection if an earlier cut killed
    /// the socket and drives `tail` bytes through the faulted send.
    fn drive_upload(
        &mut self,
        sim: &mut Simulator,
        network: &cloudsim_net::Network,
        t: SimTime,
        tail: u64,
        faults: &FaultSchedule,
    ) -> Result<SimTime, TransferInterrupted> {
        if faults.is_down(t) {
            return Err(TransferInterrupted {
                bytes_acked: 0,
                bytes_sent: 0,
                elapsed: SimDuration::ZERO,
                interrupted_at: t,
            });
        }
        if self.storage_conn.as_ref().is_some_and(|c| c.is_closed()) {
            self.storage_conn = None;
        }
        let conn = self.ensure_storage(sim, t);
        conn.send_faulted(sim, network, t, tail, faults)
    }

    /// [`SyncClient::restore_user`] under a seeded outage schedule — lists
    /// the owner's live files and drives a fault-injected, resumable restore.
    #[allow(clippy::too_many_arguments)]
    pub fn restore_user_faulted(
        &mut self,
        sim: &mut Simulator,
        owner: &str,
        at: SimTime,
        faults: &FaultSchedule,
        policy: &dyn RetryPolicy,
        seed: u64,
    ) -> FaultedRestoreOutcome {
        let paths = self.planner.store().list_files(owner);
        self.restore_batch_faulted(sim, owner, &paths, at, faults, policy, seed)
    }

    /// Restores `owner`'s files under a seeded outage schedule with ranged,
    /// resumable downloads: each file is fetched through
    /// [`TcpConnection::fetch_faulted`]; a cut leaves the received prefix
    /// verified, and the retry issues a fresh range request for only the
    /// remaining bytes. On completion the reassembled content is validated
    /// end to end with SHA-256 along the recorded resume boundaries. The
    /// control plane stays fault-free (see
    /// [`SyncClient::sync_batch_faulted`]); `first_byte_at` is recorded from
    /// completed ranges only.
    #[allow(clippy::too_many_arguments)]
    pub fn restore_batch_faulted(
        &mut self,
        sim: &mut Simulator,
        owner: &str,
        paths: &[String],
        at: SimTime,
        faults: &FaultSchedule,
        policy: &dyn RetryPolicy,
        seed: u64,
    ) -> FaultedRestoreOutcome {
        if !self.logged_in {
            let done = self.login(sim, at - SimDuration::from_secs(60));
            debug_assert!(done <= at || self.logged_in);
        }
        let plans = self.planner.plan_restore_paths(owner, paths);

        let mut files_failed = 0usize;
        let mut metadata_down = 0u64;
        let mut work: Vec<&cloudsim_storage::RestoredFile> = Vec::new();
        for plan in &plans {
            match plan {
                Ok(file) => {
                    metadata_down += file.metadata_bytes;
                    work.push(file);
                }
                Err(_) => {
                    files_failed += 1;
                    metadata_down += 200;
                }
            }
        }
        if plans.is_empty() {
            files_failed = 1;
            metadata_down = 200;
        }

        let control_done = {
            let network = self.deployment.network.clone();
            let conn = self.ensure_control(sim, at);
            HttpExchange::new(600, metadata_down.clamp(300, 64_000), SimDuration::from_millis(30))
                .execute(conn, sim, &network, at)
        };

        let network = self.deployment.network.clone();
        let think = self.profile.server_think;
        let mut first_byte_at: Option<SimTime> = None;
        let mut t = control_done;
        let mut files_restored = 0usize;
        let mut files_abandoned = 0usize;
        let mut logical_bytes = 0u64;
        let mut downloaded_payload = 0u64;
        let mut dedup_skipped_bytes = 0u64;
        let mut stats = FaultStats::default();
        let mut backoff_waits = LatencyHistogram::new();
        for (fi, file) in work.iter().enumerate() {
            let bytes = file.download_bytes();
            let mut ranged = RangedRestore::new(bytes);
            let mut attempt = 0u32;
            let mut abandoned = false;
            while !ranged.is_complete() {
                let outcome =
                    self.drive_download(sim, &network, t, ranged.remaining(), think, faults);
                match outcome {
                    Ok(out) => {
                        if first_byte_at.is_none() {
                            first_byte_at = Some(out.first_byte_at);
                        }
                        t = out.completed_at;
                        ranged.complete();
                    }
                    Err(int) => {
                        ranged.interrupted(&int);
                        attempt += 1;
                        let draw = derive_seed(seed, RESTORE_RETRY_SALT, fi as u64, attempt as u64);
                        match policy.backoff(attempt, draw) {
                            Some(wait) => {
                                ranged.retried(wait);
                                backoff_waits.record(wait);
                                t = int.interrupted_at + wait;
                            }
                            None => {
                                ranged.abandon();
                                t = int.interrupted_at;
                                abandoned = true;
                                break;
                            }
                        }
                    }
                }
            }
            if abandoned {
                files_abandoned += 1;
                files_failed += 1;
                downloaded_payload += ranged.verified();
            } else {
                // End-to-end validation of the reassembled content.
                if ranged.verify(&file.content) {
                    files_restored += 1;
                } else {
                    files_failed += 1;
                }
                logical_bytes += file.logical_bytes();
                dedup_skipped_bytes += file.dedup_skipped_bytes();
                downloaded_payload += bytes;
            }
            stats.merge(&ranged.stats());
        }
        self.last_activity = t;

        let completed = files_abandoned == 0 && stats.checksum_failures == 0;
        FaultedRestoreOutcome {
            outcome: RestoreOutcome {
                requested_at: at,
                first_byte_at,
                completed_at: t,
                files_restored,
                files_failed,
                logical_bytes,
                downloaded_payload,
                dedup_skipped_bytes,
            },
            files_abandoned,
            completed,
            stats,
            backoff_waits,
        }
    }

    /// One ranged download attempt under faults — the download mirror of
    /// [`SyncClient::drive_upload`].
    fn drive_download(
        &mut self,
        sim: &mut Simulator,
        network: &cloudsim_net::Network,
        t: SimTime,
        remaining: u64,
        think: SimDuration,
        faults: &FaultSchedule,
    ) -> Result<cloudsim_net::tcp::DownloadOutcome, TransferInterrupted> {
        if faults.is_down(t) {
            return Err(TransferInterrupted {
                bytes_acked: 0,
                bytes_sent: 0,
                elapsed: SimDuration::ZERO,
                interrupted_at: t,
            });
        }
        if self.storage_conn.as_ref().is_some_and(|c| c.is_closed()) {
            self.storage_conn = None;
        }
        let conn = self.ensure_storage(sim, t);
        conn.fetch_faulted(sim, network, t, 250, remaining, think, faults)
    }

    /// Deletes a file from the synced folder and propagates the deletion as a
    /// metadata-only operation.
    pub fn delete_file(&mut self, sim: &mut Simulator, path: &str, at: SimTime) -> SimTime {
        self.planner.plan_delete(path);
        let network = self.deployment.network.clone();
        let conn = self.ensure_control(sim, at);
        HttpExchange::new(600, 300, SimDuration::from_millis(25)).execute(conn, sim, &network, at)
    }

    /// Leaves the service for good: hard-deletes every manifest of the
    /// account (releasing the user's chunk references server-side, unlike the
    /// retention-friendly [`SyncClient::delete_file`]) and tears the control
    /// channel down. Returns the time the departure completed and the number
    /// of manifests deleted. The churn harness calls this for leaving
    /// clients; freeing the released bytes is the store's GC policy's job.
    pub fn leave_service(&mut self, sim: &mut Simulator, at: SimTime) -> (SimTime, usize) {
        let deleted = self.planner.purge_account();
        // One control exchange announces the account teardown; its size
        // scales with the manifest count like a batched delete would.
        let request = 500 + 120 * deleted as u64;
        let network = self.deployment.network.clone();
        let done = {
            let conn = self.ensure_control(sim, at);
            HttpExchange::new(request.min(64_000), 400, SimDuration::from_millis(40))
                .execute(conn, sim, &network, at)
        };
        let closed = match self.control_conn.take() {
            Some(mut conn) => conn.close(sim, &network, done),
            None => done,
        };
        if let Some(mut conn) = self.notify_conn.take() {
            conn.close(sim, &network, closed);
        }
        if let Some(mut conn) = self.storage_conn.take() {
            conn.close(sim, &network, closed);
        }
        self.logged_in = false;
        self.last_activity = closed;
        (closed, deleted)
    }

    fn ensure_control(&mut self, sim: &mut Simulator, at: SimTime) -> &mut TcpConnection {
        if self.control_conn.is_none() {
            let conn = TcpConnection::open(
                sim,
                &self.deployment.network,
                self.deployment.primary_control(),
                ConnectionOptions::https(FlowKind::Control),
                at,
            );
            self.control_conn = Some(conn);
        }
        self.control_conn.as_mut().unwrap()
    }

    fn ensure_storage(&mut self, sim: &mut Simulator, at: SimTime) -> &mut TcpConnection {
        if self.storage_conn.is_none() {
            let conn = TcpConnection::open(
                sim,
                &self.deployment.network,
                self.deployment.storage_host,
                ConnectionOptions::https(FlowKind::Storage),
                at,
            );
            self.storage_conn = Some(conn);
        }
        self.storage_conn.as_mut().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsim_trace::analysis;
    use cloudsim_workload::{BatchSpec, FileKind};

    fn batch(count: usize, size: usize) -> Vec<GeneratedFile> {
        BatchSpec::new(count, size, FileKind::RandomBinary).generate(77)
    }

    fn run_sync(
        profile: ServiceProfile,
        files: &[GeneratedFile],
    ) -> (SyncOutcome, Vec<cloudsim_trace::PacketRecord>) {
        let mut sim = Simulator::new(42);
        let mut client = SyncClient::new(profile);
        let login_done = client.login(&mut sim, SimTime::ZERO);
        let outcome = client.sync_batch(&mut sim, files, login_done + SimDuration::from_secs(5));
        (outcome, sim.packets())
    }

    #[test]
    fn login_generates_control_traffic_proportional_to_the_profile() {
        let mut sim = Simulator::new(1);
        let mut client = SyncClient::new(ServiceProfile::skydrive());
        client.login(&mut sim, SimTime::ZERO);
        let sky_bytes = sim.trace().wire_bytes(FlowKind::Control);

        let mut sim2 = Simulator::new(1);
        let mut client2 = SyncClient::new(ServiceProfile::dropbox());
        client2.login(&mut sim2, SimTime::ZERO);
        let dropbox_bytes = sim2.trace().wire_bytes(FlowKind::Control);

        assert!(sky_bytes > 120_000, "SkyDrive login bytes {sky_bytes}");
        assert!(
            sky_bytes as f64 > 2.5 * dropbox_bytes as f64,
            "SkyDrive ({sky_bytes}) should be several times Dropbox ({dropbox_bytes})"
        );
    }

    #[test]
    fn idle_polling_volume_ranks_cloud_drive_worst() {
        let horizon = SimTime::from_secs(16 * 60);
        let mut volumes = std::collections::HashMap::new();
        for profile in ServiceProfile::all() {
            let name = profile.name();
            let mut sim = Simulator::new(7);
            let mut client = SyncClient::new(profile);
            let login_done = client.login(&mut sim, SimTime::ZERO);
            client.idle_until(&mut sim, horizon);
            // Only count traffic after login completed.
            let idle_bytes: u64 = sim
                .packets()
                .iter()
                .filter(|p| p.timestamp > login_done)
                .map(|p| p.wire_len())
                .sum();
            volumes.insert(name, idle_bytes);
        }
        let cloud = volumes["Cloud Drive"];
        for (name, bytes) in &volumes {
            if *name != "Cloud Drive" {
                assert!(cloud > 5 * bytes, "Cloud Drive ({cloud}) should dwarf {name} ({bytes})");
            }
        }
        // Wuala polls every 5 minutes: the quietest client.
        assert!(volumes["Wuala"] <= *volumes.values().min().unwrap() * 2);
    }

    #[test]
    fn single_file_completion_is_rtt_dominated() {
        let files = batch(1, 1_000_000);
        let (g_out, _) = run_sync(ServiceProfile::google_drive(), &files);
        let (s_out, _) = run_sync(ServiceProfile::skydrive(), &files);
        let g_time = (g_out.completed_at - g_out.sync_started_at).as_secs_f64();
        let s_time = (s_out.completed_at - s_out.sync_started_at).as_secs_f64();
        assert!(g_time < 1.5, "Google Drive 1 MB took {g_time}s");
        assert!(
            s_time > 2.0 * g_time,
            "SkyDrive ({s_time}s) should be much slower than Google Drive ({g_time}s)"
        );
    }

    #[test]
    fn many_small_files_reward_bundling() {
        let files = batch(50, 10_000);
        let (dropbox, dropbox_trace) = run_sync(ServiceProfile::dropbox(), &files);
        let (gdrive, gdrive_trace) = run_sync(ServiceProfile::google_drive(), &files);
        let (clouddrive, clouddrive_trace) = run_sync(ServiceProfile::cloud_drive(), &files);

        let d = (dropbox.completed_at - dropbox.sync_started_at).as_secs_f64();
        let g = (gdrive.completed_at - gdrive.sync_started_at).as_secs_f64();
        let c = (clouddrive.completed_at - clouddrive.sync_started_at).as_secs_f64();
        assert!(d < g, "Dropbox ({d}s) must beat Google Drive ({g}s)");
        assert!(g < c, "Google Drive ({g}s) must beat Cloud Drive ({c}s)");
        assert!(g > 2.0 * d, "bundling advantage should be large: {d} vs {g}");

        // Connection counts tell the §4.2 story: Dropbox reuses, Google Drive
        // opens one per file, Cloud Drive opens four per file.
        let d_syn = analysis::syn_count_by_kind(&dropbox_trace, FlowKind::Storage);
        let g_syn = analysis::syn_count_by_kind(&gdrive_trace, FlowKind::Storage);
        let c_syn_total = analysis::syn_count(&clouddrive_trace);
        assert!(d_syn <= 2, "Dropbox opened {d_syn} storage connections");
        assert_eq!(g_syn, 50);
        assert!(c_syn_total >= 200, "Cloud Drive opened only {c_syn_total} connections");
    }

    #[test]
    fn startup_delay_ranking_matches_fig6a() {
        let files = batch(100, 10_000);
        let (dropbox, _) = run_sync(ServiceProfile::dropbox(), &files);
        let (skydrive, _) = run_sync(ServiceProfile::skydrive(), &files);
        let d = (dropbox.sync_started_at - dropbox.modification_time).as_secs_f64();
        let s = (skydrive.sync_started_at - skydrive.modification_time).as_secs_f64();
        assert!(s > 15.0, "SkyDrive startup with 100 files should exceed 15 s, got {s}");
        assert!(d < 5.0, "Dropbox startup should stay below 5 s, got {d}");
    }

    #[test]
    fn dedup_copies_produce_no_storage_traffic() {
        let mut sim = Simulator::new(9);
        let mut client = SyncClient::new(ServiceProfile::dropbox());
        let t0 = client.login(&mut sim, SimTime::ZERO);
        let original = batch(1, 200_000);
        let out1 = client.sync_batch(&mut sim, &original, t0 + SimDuration::from_secs(2));
        let storage_before = sim.trace().wire_bytes(FlowKind::Storage);

        // A copy of the same content under a different name.
        let copy = vec![GeneratedFile {
            path: "copy/replica.bin".to_string(),
            content: original[0].content.clone(),
        }];
        let out2 =
            client.sync_batch(&mut sim, &copy, out1.completed_at + SimDuration::from_secs(5));
        let storage_after = sim.trace().wire_bytes(FlowKind::Storage);
        assert_eq!(out2.uploaded_payload, 0, "the copy must be deduplicated");
        assert_eq!(storage_before, storage_after, "no storage traffic for a dedup hit");
        assert!(out2.completed_at > out2.modification_time);
    }

    #[test]
    fn outcome_accounting_is_consistent() {
        let files = batch(10, 50_000);
        let (outcome, packets) = run_sync(ServiceProfile::wuala(), &files);
        assert_eq!(outcome.files, 10);
        assert_eq!(outcome.logical_bytes, 500_000);
        assert!(outcome.uploaded_payload >= 500_000);
        assert!(outcome.sync_started_at >= outcome.modification_time);
        assert!(outcome.completed_at > outcome.sync_started_at);
        // The trace's storage payload is at least the planned upload volume
        // (headers add more).
        let uploaded = analysis::uploaded_payload(&packets);
        assert!(uploaded >= outcome.uploaded_payload);
    }

    #[test]
    fn cross_user_restore_moves_download_traffic() {
        use cloudsim_storage::{ObjectStore, UploadPipeline};
        let store = ObjectStore::new();
        let pipeline = UploadPipeline::sequential();
        let mut sim = Simulator::new(11);
        let mut owner =
            SyncClient::for_user(ServiceProfile::dropbox(), pipeline, store.clone(), "owner");
        let files = batch(4, 100_000);
        let t0 = owner.login(&mut sim, SimTime::ZERO);
        let synced = owner.sync_batch(&mut sim, &files, t0 + SimDuration::from_secs(2));

        // A second client behind ADSL pulls the owner's namespace down.
        let mut puller = SyncClient::for_user_on_link(
            ServiceProfile::dropbox(),
            pipeline,
            store.clone(),
            "puller",
            &AccessLink::adsl(),
        );
        let mut psim = Simulator::new(12);
        let login = puller.login(&mut psim, SimTime::ZERO);
        let before = psim.trace().wire_bytes(FlowKind::Storage);
        let outcome = puller.restore_user(&mut psim, "owner", login + SimDuration::from_secs(1));

        assert_eq!(outcome.files_restored, 4);
        assert_eq!(outcome.files_failed, 0);
        assert_eq!(outcome.logical_bytes, synced.logical_bytes);
        assert!(outcome.downloaded_payload > 0);
        assert!(outcome.completed_at > outcome.requested_at);
        let ttfb = outcome.ttfb_secs().expect("bytes travelled");
        assert!(ttfb > 0.0 && ttfb < outcome.duration_secs());
        // The storage flow actually carried the download.
        let after = psim.trace().wire_bytes(FlowKind::Storage);
        assert!(after - before >= outcome.downloaded_payload);
        // ADSL's fat downstream: pulling 400 kB is far faster than the
        // owner-side ADSL upload of the same batch would be (1 Mb/s up).
        assert!(
            outcome.duration_secs() < 4.0,
            "restore took {}s over the 8 Mb/s downstream",
            outcome.duration_secs()
        );
    }

    #[test]
    fn restoring_a_departed_user_fails_cleanly() {
        use cloudsim_storage::{ObjectStore, UploadPipeline};
        let store = ObjectStore::new();
        let pipeline = UploadPipeline::sequential();
        let mut sim = Simulator::new(13);
        let mut owner =
            SyncClient::for_user(ServiceProfile::dropbox(), pipeline, store.clone(), "owner");
        let t0 = owner.login(&mut sim, SimTime::ZERO);
        let synced = owner.sync_batch(&mut sim, &batch(2, 50_000), t0 + SimDuration::from_secs(1));
        let paths = store.list_files("owner");
        owner.leave_service(&mut sim, synced.completed_at + SimDuration::from_secs(1));

        let mut puller =
            SyncClient::for_user(ServiceProfile::dropbox(), pipeline, store.clone(), "puller");
        let mut psim = Simulator::new(14);
        let login = puller.login(&mut psim, SimTime::ZERO);
        let storage_before = psim.trace().wire_bytes(FlowKind::Storage);

        // Whole-user pull: the namespace is gone — one clean failure.
        let outcome = puller.restore_user(&mut psim, "owner", login + SimDuration::from_secs(1));
        assert_eq!(outcome.files_restored, 0);
        assert_eq!(outcome.files_failed, 1);
        assert_eq!(outcome.downloaded_payload, 0);
        assert_eq!(outcome.first_byte_at, None);

        // Path-level pull of the hard-deleted manifests: typed per-file
        // failures, still no storage traffic, never a panic.
        let outcome = puller.restore_batch(&mut psim, "owner", &paths, outcome.completed_at);
        assert_eq!(outcome.files_failed, paths.len());
        assert_eq!(psim.trace().wire_bytes(FlowKind::Storage), storage_before);
        assert!(outcome.completed_at > outcome.requested_at, "the control plane still answered");
    }

    #[test]
    fn idling_touches_the_clock_but_never_the_planner() {
        // The temporal scheduler's invariant: idle rounds pay signalling
        // only. Batches planned advance exactly with syncs, and
        // last_activity tracks every protocol step.
        let mut sim = Simulator::new(5);
        let mut client = SyncClient::new(ServiceProfile::dropbox());
        let t0 = client.login(&mut sim, SimTime::ZERO);
        assert_eq!(client.last_activity(), t0);
        assert_eq!(client.planner().batches_planned(), 0);

        let out = client.sync_batch(&mut sim, &batch(2, 10_000), t0 + SimDuration::from_secs(5));
        assert_eq!(client.planner().batches_planned(), 1);
        assert_eq!(client.last_activity(), out.completed_at.max(client.last_activity()));

        let before = client.last_activity();
        let last_poll = client.idle_until(&mut sim, before + SimDuration::from_secs(300));
        assert_eq!(client.planner().batches_planned(), 1, "idling must not plan batches");
        assert!(last_poll > before, "five minutes of idling must poll at least once");
        assert_eq!(client.last_activity(), last_poll);

        client.sync_batch(&mut sim, &batch(1, 5_000), last_poll + SimDuration::from_secs(5));
        assert_eq!(client.planner().batches_planned(), 2);
    }

    #[test]
    fn fault_free_faulted_sync_is_clean_and_commits_everything() {
        use crate::retry::NoRetry;
        let files = batch(3, 200_000);
        let run = || {
            let mut sim = Simulator::new(42);
            let mut client = SyncClient::new(ServiceProfile::dropbox());
            let t0 = client.login(&mut sim, SimTime::ZERO);
            client.sync_batch_faulted(
                &mut sim,
                &files,
                t0 + SimDuration::from_secs(5),
                &FaultSchedule::NONE,
                &NoRetry,
                0xFEED,
            )
        };
        let out = run();
        assert!(out.completed);
        assert_eq!(out.committed_payload, out.outcome.uploaded_payload);
        assert_eq!(out.abandoned_chunks, 0);
        assert!(out.stats.is_clean());
        assert_eq!(out.stats.interruptions, 0);
        assert_eq!(out.stats.wasted_bytes, 0);
        assert_eq!(out, run(), "the faulted path must be deterministic");
    }

    /// The upload fault-recovery harness: learns the fault-free transfer
    /// window, then cuts the link inside it.
    fn faulted_sync_with(
        policy: &dyn crate::retry::RetryPolicy,
        faults: &FaultSchedule,
        files: &[GeneratedFile],
    ) -> FaultedSyncOutcome {
        use cloudsim_storage::{ObjectStore, UploadPipeline};
        let mut sim = Simulator::new(21);
        let mut client = SyncClient::for_user_on_link(
            ServiceProfile::dropbox(),
            UploadPipeline::sequential(),
            ObjectStore::new(),
            "victim",
            &AccessLink::adsl(),
        );
        let t0 = client.login(&mut sim, SimTime::ZERO);
        client.sync_batch_faulted(
            &mut sim,
            files,
            t0 + SimDuration::from_secs(5),
            faults,
            policy,
            0xFA57,
        )
    }

    /// One outage window centred inside the control run's transfer span.
    fn outage_inside(control: &FaultedSyncOutcome, secs: u64) -> FaultSchedule {
        use cloudsim_net::OutageWindow;
        let start = control.outcome.sync_started_at;
        let span = control.outcome.completed_at.saturating_since(start);
        let mid = start + SimDuration::from_secs_f64(span.as_secs_f64() / 2.0);
        FaultSchedule {
            windows: vec![OutageWindow { down_at: mid, up_at: mid + SimDuration::from_secs(secs) }],
        }
    }

    #[test]
    fn a_mid_upload_outage_is_retried_resumed_and_salvaged() {
        use crate::retry::ExponentialBackoff;
        let files = batch(2, 400_000);
        // 800 kB over the 1 Mb/s ADSL upstream: a multi-second window.
        let control = faulted_sync_with(&crate::retry::NoRetry, &FaultSchedule::NONE, &files);
        assert!(control.completed);

        let faults = outage_inside(&control, 3);
        let out = faulted_sync_with(&ExponentialBackoff::standard(), &faults, &files);
        assert!(out.completed, "the backoff policy must recover: {:?}", out.stats);
        assert_eq!(out.committed_payload, control.committed_payload);
        assert!(out.stats.interruptions >= 1);
        assert!(out.stats.retries >= 1);
        assert!(out.stats.backoff_wait > SimDuration::ZERO);
        assert!(out.stats.wasted_bytes > 0, "in-flight bytes at the cut are wasted");
        assert!(out.stats.salvaged_bytes > 0, "acked bytes must not travel twice");
        assert!(out.stats.resume_efficiency() > 0.0);
        // Recovery costs virtual time: the faulted run finishes later.
        assert!(out.outcome.completed_at > control.outcome.completed_at);
    }

    #[test]
    fn no_retry_abandons_at_the_first_cut_and_commits_strictly_less() {
        use crate::retry::{ExponentialBackoff, NoRetry};
        let files = batch(2, 400_000);
        let control = faulted_sync_with(&NoRetry, &FaultSchedule::NONE, &files);
        let faults = outage_inside(&control, 3);

        let abandoned = faulted_sync_with(&NoRetry, &faults, &files);
        let recovered = faulted_sync_with(&ExponentialBackoff::standard(), &faults, &files);
        assert!(!abandoned.completed);
        assert!(abandoned.abandoned_chunks >= 1);
        assert_eq!(abandoned.stats.abandoned, abandoned.abandoned_chunks as u64);
        assert_eq!(abandoned.stats.retries, 0);
        assert!(abandoned.stats.wasted_bytes > 0);
        assert!(
            abandoned.committed_payload < recovered.committed_payload,
            "no-retry ({}) must commit strictly less than backoff ({})",
            abandoned.committed_payload,
            recovered.committed_payload
        );
    }

    #[test]
    fn faulted_restores_resume_ranged_and_validate_checksums() {
        use crate::retry::{ExponentialBackoff, NoRetry};
        use cloudsim_net::OutageWindow;
        use cloudsim_storage::{ObjectStore, UploadPipeline};
        let store = ObjectStore::new();
        let pipeline = UploadPipeline::sequential();
        let files = batch(4, 200_000);
        let mut sim = Simulator::new(31);
        let mut owner =
            SyncClient::for_user(ServiceProfile::dropbox(), pipeline, store.clone(), "owner");
        let t0 = owner.login(&mut sim, SimTime::ZERO);
        owner.sync_batch(&mut sim, &files, t0 + SimDuration::from_secs(2));

        let pull = |faults: &FaultSchedule, policy: &dyn crate::retry::RetryPolicy| {
            let mut psim = Simulator::new(32);
            let mut puller = SyncClient::for_user_on_link(
                ServiceProfile::dropbox(),
                pipeline,
                store.clone(),
                "puller",
                &AccessLink::adsl(),
            );
            let login = puller.login(&mut psim, SimTime::ZERO);
            puller.restore_user_faulted(
                &mut psim,
                "owner",
                login + SimDuration::from_secs(1),
                faults,
                policy,
                0xD0_5E,
            )
        };

        let control = pull(&FaultSchedule::NONE, &NoRetry);
        assert!(control.completed);
        assert_eq!(control.outcome.files_restored, 4);
        assert_eq!(control.stats.checksums_verified, 4, "every reassembly is validated");
        assert_eq!(control.stats.checksum_failures, 0);
        assert!(control.stats.is_clean());

        // Cut the link mid-download.
        let start = control.outcome.requested_at;
        let span = control.outcome.completed_at.saturating_since(start);
        let mid = start + SimDuration::from_secs_f64(span.as_secs_f64() * 0.6);
        let faults = FaultSchedule {
            windows: vec![OutageWindow { down_at: mid, up_at: mid + SimDuration::from_secs(2) }],
        };

        let recovered = pull(&faults, &ExponentialBackoff::standard());
        assert!(recovered.completed, "backoff must recover the restore: {:?}", recovered.stats);
        assert_eq!(recovered.outcome.files_restored, 4);
        assert_eq!(recovered.stats.checksums_verified, 4);
        assert_eq!(recovered.stats.checksum_failures, 0);
        assert!(recovered.stats.interruptions >= 1);
        assert!(recovered.stats.salvaged_bytes > 0, "the verified prefix resumes, not restarts");
        assert!(recovered.outcome.completed_at > control.outcome.completed_at);

        let abandoned = pull(&faults, &NoRetry);
        assert!(!abandoned.completed);
        assert!(abandoned.files_abandoned >= 1);
        assert!(abandoned.outcome.files_failed >= 1);
        assert!(abandoned.stats.wasted_bytes > 0, "a dropped download is wasted wire");
        assert!(
            abandoned.outcome.files_restored < recovered.outcome.files_restored,
            "abandonment must lose files"
        );
    }

    #[test]
    #[should_panic(expected = "sync_batch needs at least one file")]
    fn empty_batches_are_rejected() {
        let mut sim = Simulator::new(1);
        let mut client = SyncClient::new(ServiceProfile::dropbox());
        client.login(&mut sim, SimTime::ZERO);
        client.sync_batch(&mut sim, &[], SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "idle_until requires a prior login")]
    fn idle_without_login_panics() {
        let mut sim = Simulator::new(1);
        let mut client = SyncClient::new(ServiceProfile::dropbox());
        client.idle_until(&mut sim, SimTime::from_secs(60));
    }
}
