//! The sync client: login, idle polling and batch synchronisation.
//!
//! `SyncClient` executes a service profile against the network simulator:
//! every login exchange, keep-alive poll, metadata commit and chunk upload
//! becomes traffic in the experiment trace, from which the benchmark suite
//! extracts exactly the metrics the paper defines (start-up delay, completion
//! time, overhead, SYN counts, idle volume).

use crate::deployment::Deployment;
use crate::planner::{FilePlan, UploadPlanner};
use crate::profile::{ServiceProfile, TransferMode};
use cloudsim_net::http::{HttpExchange, HttpOverhead};
use cloudsim_net::tcp::{ConnectionOptions, TcpConnection};
use cloudsim_net::{AccessLink, Simulator};
use cloudsim_trace::{FlowKind, SimDuration, SimTime};
use cloudsim_workload::GeneratedFile;

/// The outcome of one restore operation (a batch of paths pulled from one
/// owner's namespace — the download mirror of [`SyncOutcome`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RestoreOutcome {
    /// When the client asked the control plane for the manifests.
    pub requested_at: SimTime,
    /// When the first storage payload byte arrived, if anything travelled
    /// (`None` when every chunk was already local, or nothing restored).
    pub first_byte_at: Option<SimTime>,
    /// When the restore finished (manifest fetch included).
    pub completed_at: SimTime,
    /// Files reconstructed byte-identically.
    pub files_restored: usize,
    /// Files that failed with a typed restore error (e.g. the owner
    /// hard-deleted the manifest mid-run) — failures are outcomes, never
    /// panics. Pulling a user with no live files counts as one failure.
    pub files_failed: usize,
    /// Plaintext bytes of the restored files.
    pub logical_bytes: u64,
    /// Payload bytes that actually travelled downstream.
    pub downloaded_payload: u64,
    /// Plaintext bytes the local-copy dedup check kept off the wire.
    pub dedup_skipped_bytes: u64,
}

impl RestoreOutcome {
    /// Simulated seconds the restore took end to end.
    pub fn duration_secs(&self) -> f64 {
        (self.completed_at - self.requested_at).as_secs_f64()
    }

    /// Simulated seconds from the request to the first payload byte, if any
    /// payload travelled.
    pub fn ttfb_secs(&self) -> Option<f64> {
        self.first_byte_at.map(|t| (t - self.requested_at).as_secs_f64())
    }
}

/// The outcome of one batch synchronisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncOutcome {
    /// When the testing application finished modifying the files.
    pub modification_time: SimTime,
    /// When the client began talking to the storage servers.
    pub sync_started_at: SimTime,
    /// When the last storage payload left the client (upload complete).
    pub completed_at: SimTime,
    /// Number of files synchronised.
    pub files: usize,
    /// Sum of the plaintext file sizes.
    pub logical_bytes: u64,
    /// Payload bytes the planner decided to upload.
    pub uploaded_payload: u64,
}

/// A sync client bound to one service profile and one deployment.
#[derive(Debug)]
pub struct SyncClient {
    profile: ServiceProfile,
    deployment: Deployment,
    planner: UploadPlanner,
    control_conn: Option<TcpConnection>,
    notify_conn: Option<TcpConnection>,
    storage_conn: Option<TcpConnection>,
    logged_in: bool,
    last_activity: SimTime,
}

impl SyncClient {
    /// Creates a client for a profile, building its deployment. The upload
    /// pipeline runs in parallel; see [`SyncClient::with_pipeline`] to pin a
    /// mode (plans are byte-identical either way).
    pub fn new(profile: ServiceProfile) -> SyncClient {
        SyncClient::with_pipeline(profile, cloudsim_storage::UploadPipeline::parallel())
    }

    /// Creates a client whose planner uses the given pipeline.
    pub fn with_pipeline(
        profile: ServiceProfile,
        pipeline: cloudsim_storage::UploadPipeline,
    ) -> SyncClient {
        SyncClient::from_planner(UploadPlanner::with_pipeline(profile.clone(), pipeline), profile)
    }

    /// Creates a client for a named user account committing into a shared
    /// object store — the fleet constructor. Each client still owns its
    /// deployment, connections and client-side dedup/delta state; only the
    /// server-side store is shared.
    pub fn for_user(
        profile: ServiceProfile,
        pipeline: cloudsim_storage::UploadPipeline,
        store: cloudsim_storage::ObjectStore,
        user: &str,
    ) -> SyncClient {
        SyncClient::for_user_on_link(profile, pipeline, store, user, &AccessLink::campus())
    }

    /// The fleet constructor for a client behind a specific access link: the
    /// deployment's paths are composed with the link, so an ADSL user and a
    /// fibre user of the same service live in different network worlds.
    pub fn for_user_on_link(
        profile: ServiceProfile,
        pipeline: cloudsim_storage::UploadPipeline,
        store: cloudsim_storage::ObjectStore,
        user: &str,
        link: &AccessLink,
    ) -> SyncClient {
        SyncClient::with_deployment(
            UploadPlanner::for_user(profile.clone(), pipeline, store, user),
            Deployment::with_link(&profile, link),
            profile,
        )
    }

    fn from_planner(planner: UploadPlanner, profile: ServiceProfile) -> SyncClient {
        let deployment = Deployment::new(&profile);
        SyncClient::with_deployment(planner, deployment, profile)
    }

    fn with_deployment(
        planner: UploadPlanner,
        deployment: Deployment,
        profile: ServiceProfile,
    ) -> SyncClient {
        SyncClient {
            planner,
            profile,
            deployment,
            control_conn: None,
            notify_conn: None,
            storage_conn: None,
            logged_in: false,
            last_activity: SimTime::ZERO,
        }
    }

    /// The profile driving this client.
    pub fn profile(&self) -> &ServiceProfile {
        &self.profile
    }

    /// The deployment (topology) of the service.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// The upload planner (exposes server-side state and dedup statistics).
    pub fn planner(&self) -> &UploadPlanner {
        &self.planner
    }

    /// The virtual instant of the client's most recent protocol activity
    /// (login, poll, sync, restore or departure) — the point an idle window
    /// resumes polling from. The fleet scheduler reads this to stitch
    /// activated and idle rounds onto one continuous per-client timeline.
    pub fn last_activity(&self) -> SimTime {
        self.last_activity
    }

    /// Performs the application start-up: authenticates against every control
    /// server and checks whether any content needs updating (§3.1, Fig. 1).
    /// Returns the time login completed.
    pub fn login(&mut self, sim: &mut Simulator, start: SimTime) -> SimTime {
        let servers = self.deployment.control_hosts.clone();
        let per_server = self.profile.login_bytes / servers.len().max(1) as u64;
        let mut t = start;
        for (i, host) in servers.iter().enumerate() {
            let mut conn = TcpConnection::open(
                sim,
                &self.deployment.network,
                *host,
                ConnectionOptions::https(FlowKind::Control),
                t,
            );
            // Roughly one third of the login volume goes up (credentials,
            // state queries), two thirds come down (account state, metadata).
            let exchange =
                HttpExchange::new(per_server / 3, per_server * 2 / 3, self.profile.server_think)
                    .with_overhead(self.profile.http_overhead);
            let established = conn.established_at();
            let done = exchange.execute(&mut conn, sim, &self.deployment.network, established);
            // Stagger server contacts slightly, as observed in real login
            // sequences; keep the first connection as the long-lived control
            // channel.
            if i == 0 {
                self.control_conn = Some(conn);
            } else {
                // Secondary login servers are contacted and released.
            }
            t = done + SimDuration::from_millis(20);
        }

        // Open the notification channel (plain HTTP for Dropbox).
        let notify_opts = if self.profile.notification_plain_http {
            ConnectionOptions::http(FlowKind::Notification)
        } else {
            ConnectionOptions::https(FlowKind::Notification)
        };
        let notify = TcpConnection::open(
            sim,
            &self.deployment.network,
            self.deployment.notification_host,
            notify_opts,
            t,
        );
        t = notify.established_at();
        self.notify_conn = Some(notify);
        self.logged_in = true;
        self.last_activity = t;
        t
    }

    /// Keeps the client idle until `until`, generating the periodic keep-alive
    /// traffic of §3.1 / Fig. 1. Returns the time of the last poll.
    pub fn idle_until(&mut self, sim: &mut Simulator, until: SimTime) -> SimTime {
        assert!(self.logged_in, "idle_until requires a prior login");
        let mut t = self.last_activity;
        loop {
            let next = t + self.profile.polling_interval;
            if next > until {
                break;
            }
            t = self.poll_once(sim, next);
        }
        self.last_activity = t;
        t
    }

    /// One keep-alive poll at time `at`.
    fn poll_once(&mut self, sim: &mut Simulator, at: SimTime) -> SimTime {
        let request = self.profile.polling_bytes / 2;
        let response = self.profile.polling_bytes - request;
        if self.profile.polling_new_connection {
            // Cloud Drive: a fresh HTTPS connection per poll, torn down after.
            let mut conn = TcpConnection::open(
                sim,
                &self.deployment.network,
                self.deployment.primary_control(),
                ConnectionOptions::https(FlowKind::Notification),
                at,
            );
            let established = conn.established_at();
            let done = HttpExchange::new(request, response, SimDuration::from_millis(20))
                .with_overhead(HttpOverhead::LEAN)
                .execute(&mut conn, sim, &self.deployment.network, established);
            conn.close(sim, &self.deployment.network, done)
        } else {
            let conn = self.notify_conn.as_mut().expect("notification channel missing");
            conn.request(
                sim,
                &self.deployment.network,
                at,
                request,
                response,
                SimDuration::from_millis(15),
            )
        }
    }

    /// Synchronises a batch of files that were written to the local folder at
    /// `modification_time`.
    pub fn sync_batch(
        &mut self,
        sim: &mut Simulator,
        files: &[GeneratedFile],
        modification_time: SimTime,
    ) -> SyncOutcome {
        assert!(!files.is_empty(), "sync_batch needs at least one file");
        if !self.logged_in {
            let done = self.login(sim, modification_time - SimDuration::from_secs(60));
            debug_assert!(done <= modification_time || self.logged_in);
        }

        // Change detection / batching delay (§5.1).
        let detection = self.profile.startup_delay
            + self.profile.startup_delay_per_file.saturating_mul(files.len() as u64);
        let sync_start = modification_time + detection;

        // Plan every file (capabilities applied here). The batch goes through
        // the upload pipeline as one unit, so the pure per-chunk work fans
        // out across worker threads while the plans stay byte-identical to
        // sequential per-file planning.
        let batch: Vec<(&str, &[u8])> =
            files.iter().map(|f| (f.path.as_str(), f.content.as_slice())).collect();
        let plans: Vec<FilePlan> = self.planner.plan_batch(&batch);
        let uploaded_payload: u64 = plans.iter().map(|p| p.upload_bytes()).sum();
        let logical_bytes: u64 = plans.iter().map(|p| p.logical_bytes).sum();
        let metadata_total: u64 = plans.iter().map(|p| p.metadata_bytes).sum();

        // Initial metadata exchange with the control plane announcing the batch.
        let control_done = {
            let network = self.deployment.network.clone();
            let conn = self.ensure_control(sim, sync_start);
            HttpExchange::new(metadata_total.clamp(600, 64_000), 800, SimDuration::from_millis(30))
                .execute(conn, sim, &network, sync_start)
        };

        // Storage transfer according to the service's transfer mode.
        let transfer_start = control_done.max(sync_start);
        let completed = match self.profile.transfer_mode {
            TransferMode::Bundled => self.transfer_bundled(sim, &plans, transfer_start),
            TransferMode::SequentialWithAcks => {
                self.transfer_sequential(sim, &plans, transfer_start)
            }
            TransferMode::ConnectionPerFile { control_connections_per_file } => self
                .transfer_connection_per_file(
                    sim,
                    &plans,
                    transfer_start,
                    control_connections_per_file,
                ),
        };

        // Final commit on the control channel.
        let final_commit = {
            let network = self.deployment.network.clone();
            let conn = self.ensure_control(sim, completed);
            HttpExchange::new(900, 500, SimDuration::from_millis(30))
                .execute(conn, sim, &network, completed)
        };
        self.last_activity = final_commit;

        SyncOutcome {
            modification_time,
            sync_started_at: sync_start,
            completed_at: completed,
            files: files.len(),
            logical_bytes,
            uploaded_payload,
        }
    }

    /// Dropbox-style bundling: one reused storage connection, small files
    /// coalesced into multi-megabyte bundles, chunks of large files pipelined.
    fn transfer_bundled(
        &mut self,
        sim: &mut Simulator,
        plans: &[FilePlan],
        start: SimTime,
    ) -> SimTime {
        const BUNDLE_LIMIT: u64 = 4 * 1024 * 1024;
        let network = self.deployment.network.clone();
        let think = self.profile.server_think;
        let per_file = self.profile.per_file_overhead;
        let http = self.profile.http_overhead;
        let mut t = start;
        let mut pending_bundle = 0u64;

        // Collect the work items first so connection handling stays simple.
        let mut items: Vec<u64> = Vec::new();
        for plan in plans {
            t += per_file;
            for chunk in &plan.chunks {
                if chunk.upload_bytes == 0 {
                    continue;
                }
                items.push(chunk.upload_bytes);
            }
        }
        let conn = self.ensure_storage(sim, start);
        let mut last = start;
        for bytes in items {
            if bytes >= BUNDLE_LIMIT {
                // Large chunk: flush any pending bundle, then its own request.
                if pending_bundle > 0 {
                    last = HttpExchange::new(pending_bundle, 400, think)
                        .with_overhead(http)
                        .execute(conn, sim, &network, t.max(last));
                    pending_bundle = 0;
                }
                last = HttpExchange::new(bytes, 400, think).with_overhead(http).execute(
                    conn,
                    sim,
                    &network,
                    t.max(last),
                );
            } else {
                pending_bundle += bytes;
                if pending_bundle >= BUNDLE_LIMIT {
                    last = HttpExchange::new(pending_bundle, 400, think)
                        .with_overhead(http)
                        .execute(conn, sim, &network, t.max(last));
                    pending_bundle = 0;
                }
            }
        }
        if pending_bundle > 0 {
            last = HttpExchange::new(pending_bundle, 400, think).with_overhead(http).execute(
                conn,
                sim,
                &network,
                t.max(last),
            );
        }
        // The per-file client processing cannot finish after the network work
        // it feeds; completion is whichever is later.
        last.max(t)
    }

    /// SkyDrive / Wuala: one reused storage connection, one request per chunk,
    /// waiting for the application-layer acknowledgement before the next file.
    fn transfer_sequential(
        &mut self,
        sim: &mut Simulator,
        plans: &[FilePlan],
        start: SimTime,
    ) -> SimTime {
        let network = self.deployment.network.clone();
        let think = self.profile.server_think;
        let per_file = self.profile.per_file_overhead;
        let http = self.profile.http_overhead;
        let conn = self.ensure_storage(sim, start);
        let mut t = start;
        for plan in plans {
            t += per_file;
            for chunk in &plan.chunks {
                if chunk.upload_bytes == 0 {
                    continue;
                }
                t = HttpExchange::new(chunk.upload_bytes, 350, think)
                    .with_overhead(http)
                    .execute(conn, sim, &network, t);
            }
        }
        t
    }

    /// Google Drive / Cloud Drive: a fresh TCP+TLS storage connection per
    /// file, plus `extra_control` new control connections per file operation.
    fn transfer_connection_per_file(
        &mut self,
        sim: &mut Simulator,
        plans: &[FilePlan],
        start: SimTime,
        extra_control: u32,
    ) -> SimTime {
        let network = self.deployment.network.clone();
        let think = self.profile.server_think;
        let per_file = self.profile.per_file_overhead;
        let http = self.profile.http_overhead;
        let control_host = self.deployment.primary_control();
        let storage_host = self.deployment.storage_host;
        let mut t = start;
        for plan in plans {
            t += per_file;
            // Control connections opened for this file operation (Cloud Drive
            // opens three, §4.2), each a short-lived HTTPS exchange.
            let mut control_done = t;
            for _ in 0..extra_control {
                let mut conn = TcpConnection::open(
                    sim,
                    &network,
                    control_host,
                    ConnectionOptions::https(FlowKind::Control),
                    t,
                );
                let established = conn.established_at();
                control_done = HttpExchange::new(700, 500, SimDuration::from_millis(25)).execute(
                    &mut conn,
                    sim,
                    &network,
                    established,
                );
                conn.close(sim, &network, control_done);
            }
            let mut file_done = control_done.max(t);
            if plan.upload_bytes() == 0 {
                t = file_done;
                continue;
            }
            let mut conn = TcpConnection::open(
                sim,
                &network,
                storage_host,
                ConnectionOptions::https(FlowKind::Storage),
                file_done,
            );
            for chunk in &plan.chunks {
                if chunk.upload_bytes == 0 {
                    continue;
                }
                let request_start = file_done.max(conn.established_at());
                file_done = HttpExchange::new(chunk.upload_bytes, 350, think)
                    .with_overhead(http)
                    .execute(&mut conn, sim, &network, request_start);
            }
            conn.close(sim, &network, file_done);
            t = file_done;
        }
        t
    }

    /// Restores every live file of `owner`'s namespace — the fleet's
    /// "pull another user's content" operation (and, with `owner` = own
    /// account, the §4.3 delete/restore test at full fidelity). An owner
    /// with no live files (departed, purged) yields a clean one-failure
    /// outcome. See [`SyncClient::restore_batch`].
    pub fn restore_user(
        &mut self,
        sim: &mut Simulator,
        owner: &str,
        at: SimTime,
    ) -> RestoreOutcome {
        let paths = self.planner.store().list_files(owner);
        self.restore_batch(sim, owner, &paths, at)
    }

    /// Restores `owner`'s files at the given paths, driving the manifest
    /// fetch over the control channel and the chunk downloads over the
    /// storage connection's *downstream* side (time-to-first-byte and
    /// completion are measured like the upload path measures sync time).
    /// Chunks the client already holds locally are not re-downloaded and
    /// delta downloads apply against locally held bases — the planner's
    /// [`UploadPlanner::plan_restore_paths`] decides, this method only moves
    /// the bytes. Failed files (typed restore errors) cost a control
    /// round-trip but no storage traffic.
    pub fn restore_batch(
        &mut self,
        sim: &mut Simulator,
        owner: &str,
        paths: &[String],
        at: SimTime,
    ) -> RestoreOutcome {
        if !self.logged_in {
            let done = self.login(sim, at - SimDuration::from_secs(60));
            debug_assert!(done <= at || self.logged_in);
        }
        let plans = self.planner.plan_restore_paths(owner, paths);

        let mut files_restored = 0usize;
        let mut files_failed = 0usize;
        let mut logical_bytes = 0u64;
        let mut downloaded_payload = 0u64;
        let mut dedup_skipped_bytes = 0u64;
        let mut metadata_down = 0u64;
        let mut downloads: Vec<u64> = Vec::new();
        for plan in &plans {
            match plan {
                Ok(file) => {
                    files_restored += 1;
                    logical_bytes += file.logical_bytes();
                    dedup_skipped_bytes += file.dedup_skipped_bytes();
                    metadata_down += file.metadata_bytes;
                    let bytes = file.download_bytes();
                    downloaded_payload += bytes;
                    if bytes > 0 {
                        downloads.push(bytes);
                    }
                }
                Err(_) => {
                    files_failed += 1;
                    metadata_down += 200; // the error reply
                }
            }
        }
        // An empty pull (the owner left and took the namespace with it) is
        // still an answered question: one failure, one control round-trip.
        if plans.is_empty() {
            files_failed = 1;
            metadata_down = 200;
        }

        // Control plane: request the manifest set, download the chunk lists.
        let control_done = {
            let network = self.deployment.network.clone();
            let conn = self.ensure_control(sim, at);
            HttpExchange::new(600, metadata_down.clamp(300, 64_000), SimDuration::from_millis(30))
                .execute(conn, sim, &network, at)
        };

        // Storage plane: one GET per file that has bytes to move, on the
        // reused storage connection, filling the downstream pipe.
        let network = self.deployment.network.clone();
        let think = self.profile.server_think;
        let mut first_byte_at: Option<SimTime> = None;
        let mut t = control_done;
        if !downloads.is_empty() {
            let conn = self.ensure_storage(sim, control_done);
            for bytes in downloads {
                let outcome = conn.fetch(sim, &network, t, 250, bytes, think);
                if first_byte_at.is_none() {
                    first_byte_at = Some(outcome.first_byte_at);
                }
                t = outcome.completed_at;
            }
        }
        self.last_activity = t;

        RestoreOutcome {
            requested_at: at,
            first_byte_at,
            completed_at: t,
            files_restored,
            files_failed,
            logical_bytes,
            downloaded_payload,
            dedup_skipped_bytes,
        }
    }

    /// Deletes a file from the synced folder and propagates the deletion as a
    /// metadata-only operation.
    pub fn delete_file(&mut self, sim: &mut Simulator, path: &str, at: SimTime) -> SimTime {
        self.planner.plan_delete(path);
        let network = self.deployment.network.clone();
        let conn = self.ensure_control(sim, at);
        HttpExchange::new(600, 300, SimDuration::from_millis(25)).execute(conn, sim, &network, at)
    }

    /// Leaves the service for good: hard-deletes every manifest of the
    /// account (releasing the user's chunk references server-side, unlike the
    /// retention-friendly [`SyncClient::delete_file`]) and tears the control
    /// channel down. Returns the time the departure completed and the number
    /// of manifests deleted. The churn harness calls this for leaving
    /// clients; freeing the released bytes is the store's GC policy's job.
    pub fn leave_service(&mut self, sim: &mut Simulator, at: SimTime) -> (SimTime, usize) {
        let deleted = self.planner.purge_account();
        // One control exchange announces the account teardown; its size
        // scales with the manifest count like a batched delete would.
        let request = 500 + 120 * deleted as u64;
        let network = self.deployment.network.clone();
        let done = {
            let conn = self.ensure_control(sim, at);
            HttpExchange::new(request.min(64_000), 400, SimDuration::from_millis(40))
                .execute(conn, sim, &network, at)
        };
        let closed = match self.control_conn.take() {
            Some(mut conn) => conn.close(sim, &network, done),
            None => done,
        };
        if let Some(mut conn) = self.notify_conn.take() {
            conn.close(sim, &network, closed);
        }
        if let Some(mut conn) = self.storage_conn.take() {
            conn.close(sim, &network, closed);
        }
        self.logged_in = false;
        self.last_activity = closed;
        (closed, deleted)
    }

    fn ensure_control(&mut self, sim: &mut Simulator, at: SimTime) -> &mut TcpConnection {
        if self.control_conn.is_none() {
            let conn = TcpConnection::open(
                sim,
                &self.deployment.network,
                self.deployment.primary_control(),
                ConnectionOptions::https(FlowKind::Control),
                at,
            );
            self.control_conn = Some(conn);
        }
        self.control_conn.as_mut().unwrap()
    }

    fn ensure_storage(&mut self, sim: &mut Simulator, at: SimTime) -> &mut TcpConnection {
        if self.storage_conn.is_none() {
            let conn = TcpConnection::open(
                sim,
                &self.deployment.network,
                self.deployment.storage_host,
                ConnectionOptions::https(FlowKind::Storage),
                at,
            );
            self.storage_conn = Some(conn);
        }
        self.storage_conn.as_mut().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsim_trace::analysis;
    use cloudsim_workload::{BatchSpec, FileKind};

    fn batch(count: usize, size: usize) -> Vec<GeneratedFile> {
        BatchSpec::new(count, size, FileKind::RandomBinary).generate(77)
    }

    fn run_sync(
        profile: ServiceProfile,
        files: &[GeneratedFile],
    ) -> (SyncOutcome, Vec<cloudsim_trace::PacketRecord>) {
        let mut sim = Simulator::new(42);
        let mut client = SyncClient::new(profile);
        let login_done = client.login(&mut sim, SimTime::ZERO);
        let outcome = client.sync_batch(&mut sim, files, login_done + SimDuration::from_secs(5));
        (outcome, sim.packets())
    }

    #[test]
    fn login_generates_control_traffic_proportional_to_the_profile() {
        let mut sim = Simulator::new(1);
        let mut client = SyncClient::new(ServiceProfile::skydrive());
        client.login(&mut sim, SimTime::ZERO);
        let sky_bytes = sim.trace().wire_bytes(FlowKind::Control);

        let mut sim2 = Simulator::new(1);
        let mut client2 = SyncClient::new(ServiceProfile::dropbox());
        client2.login(&mut sim2, SimTime::ZERO);
        let dropbox_bytes = sim2.trace().wire_bytes(FlowKind::Control);

        assert!(sky_bytes > 120_000, "SkyDrive login bytes {sky_bytes}");
        assert!(
            sky_bytes as f64 > 2.5 * dropbox_bytes as f64,
            "SkyDrive ({sky_bytes}) should be several times Dropbox ({dropbox_bytes})"
        );
    }

    #[test]
    fn idle_polling_volume_ranks_cloud_drive_worst() {
        let horizon = SimTime::from_secs(16 * 60);
        let mut volumes = std::collections::HashMap::new();
        for profile in ServiceProfile::all() {
            let name = profile.name();
            let mut sim = Simulator::new(7);
            let mut client = SyncClient::new(profile);
            let login_done = client.login(&mut sim, SimTime::ZERO);
            client.idle_until(&mut sim, horizon);
            // Only count traffic after login completed.
            let idle_bytes: u64 = sim
                .packets()
                .iter()
                .filter(|p| p.timestamp > login_done)
                .map(|p| p.wire_len())
                .sum();
            volumes.insert(name, idle_bytes);
        }
        let cloud = volumes["Cloud Drive"];
        for (name, bytes) in &volumes {
            if *name != "Cloud Drive" {
                assert!(cloud > 5 * bytes, "Cloud Drive ({cloud}) should dwarf {name} ({bytes})");
            }
        }
        // Wuala polls every 5 minutes: the quietest client.
        assert!(volumes["Wuala"] <= *volumes.values().min().unwrap() * 2);
    }

    #[test]
    fn single_file_completion_is_rtt_dominated() {
        let files = batch(1, 1_000_000);
        let (g_out, _) = run_sync(ServiceProfile::google_drive(), &files);
        let (s_out, _) = run_sync(ServiceProfile::skydrive(), &files);
        let g_time = (g_out.completed_at - g_out.sync_started_at).as_secs_f64();
        let s_time = (s_out.completed_at - s_out.sync_started_at).as_secs_f64();
        assert!(g_time < 1.5, "Google Drive 1 MB took {g_time}s");
        assert!(
            s_time > 2.0 * g_time,
            "SkyDrive ({s_time}s) should be much slower than Google Drive ({g_time}s)"
        );
    }

    #[test]
    fn many_small_files_reward_bundling() {
        let files = batch(50, 10_000);
        let (dropbox, dropbox_trace) = run_sync(ServiceProfile::dropbox(), &files);
        let (gdrive, gdrive_trace) = run_sync(ServiceProfile::google_drive(), &files);
        let (clouddrive, clouddrive_trace) = run_sync(ServiceProfile::cloud_drive(), &files);

        let d = (dropbox.completed_at - dropbox.sync_started_at).as_secs_f64();
        let g = (gdrive.completed_at - gdrive.sync_started_at).as_secs_f64();
        let c = (clouddrive.completed_at - clouddrive.sync_started_at).as_secs_f64();
        assert!(d < g, "Dropbox ({d}s) must beat Google Drive ({g}s)");
        assert!(g < c, "Google Drive ({g}s) must beat Cloud Drive ({c}s)");
        assert!(g > 2.0 * d, "bundling advantage should be large: {d} vs {g}");

        // Connection counts tell the §4.2 story: Dropbox reuses, Google Drive
        // opens one per file, Cloud Drive opens four per file.
        let d_syn = analysis::syn_count_by_kind(&dropbox_trace, FlowKind::Storage);
        let g_syn = analysis::syn_count_by_kind(&gdrive_trace, FlowKind::Storage);
        let c_syn_total = analysis::syn_count(&clouddrive_trace);
        assert!(d_syn <= 2, "Dropbox opened {d_syn} storage connections");
        assert_eq!(g_syn, 50);
        assert!(c_syn_total >= 200, "Cloud Drive opened only {c_syn_total} connections");
    }

    #[test]
    fn startup_delay_ranking_matches_fig6a() {
        let files = batch(100, 10_000);
        let (dropbox, _) = run_sync(ServiceProfile::dropbox(), &files);
        let (skydrive, _) = run_sync(ServiceProfile::skydrive(), &files);
        let d = (dropbox.sync_started_at - dropbox.modification_time).as_secs_f64();
        let s = (skydrive.sync_started_at - skydrive.modification_time).as_secs_f64();
        assert!(s > 15.0, "SkyDrive startup with 100 files should exceed 15 s, got {s}");
        assert!(d < 5.0, "Dropbox startup should stay below 5 s, got {d}");
    }

    #[test]
    fn dedup_copies_produce_no_storage_traffic() {
        let mut sim = Simulator::new(9);
        let mut client = SyncClient::new(ServiceProfile::dropbox());
        let t0 = client.login(&mut sim, SimTime::ZERO);
        let original = batch(1, 200_000);
        let out1 = client.sync_batch(&mut sim, &original, t0 + SimDuration::from_secs(2));
        let storage_before = sim.trace().wire_bytes(FlowKind::Storage);

        // A copy of the same content under a different name.
        let copy = vec![GeneratedFile {
            path: "copy/replica.bin".to_string(),
            content: original[0].content.clone(),
        }];
        let out2 =
            client.sync_batch(&mut sim, &copy, out1.completed_at + SimDuration::from_secs(5));
        let storage_after = sim.trace().wire_bytes(FlowKind::Storage);
        assert_eq!(out2.uploaded_payload, 0, "the copy must be deduplicated");
        assert_eq!(storage_before, storage_after, "no storage traffic for a dedup hit");
        assert!(out2.completed_at > out2.modification_time);
    }

    #[test]
    fn outcome_accounting_is_consistent() {
        let files = batch(10, 50_000);
        let (outcome, packets) = run_sync(ServiceProfile::wuala(), &files);
        assert_eq!(outcome.files, 10);
        assert_eq!(outcome.logical_bytes, 500_000);
        assert!(outcome.uploaded_payload >= 500_000);
        assert!(outcome.sync_started_at >= outcome.modification_time);
        assert!(outcome.completed_at > outcome.sync_started_at);
        // The trace's storage payload is at least the planned upload volume
        // (headers add more).
        let uploaded = analysis::uploaded_payload(&packets);
        assert!(uploaded >= outcome.uploaded_payload);
    }

    #[test]
    fn cross_user_restore_moves_download_traffic() {
        use cloudsim_storage::{ObjectStore, UploadPipeline};
        let store = ObjectStore::new();
        let pipeline = UploadPipeline::sequential();
        let mut sim = Simulator::new(11);
        let mut owner =
            SyncClient::for_user(ServiceProfile::dropbox(), pipeline, store.clone(), "owner");
        let files = batch(4, 100_000);
        let t0 = owner.login(&mut sim, SimTime::ZERO);
        let synced = owner.sync_batch(&mut sim, &files, t0 + SimDuration::from_secs(2));

        // A second client behind ADSL pulls the owner's namespace down.
        let mut puller = SyncClient::for_user_on_link(
            ServiceProfile::dropbox(),
            pipeline,
            store.clone(),
            "puller",
            &AccessLink::adsl(),
        );
        let mut psim = Simulator::new(12);
        let login = puller.login(&mut psim, SimTime::ZERO);
        let before = psim.trace().wire_bytes(FlowKind::Storage);
        let outcome = puller.restore_user(&mut psim, "owner", login + SimDuration::from_secs(1));

        assert_eq!(outcome.files_restored, 4);
        assert_eq!(outcome.files_failed, 0);
        assert_eq!(outcome.logical_bytes, synced.logical_bytes);
        assert!(outcome.downloaded_payload > 0);
        assert!(outcome.completed_at > outcome.requested_at);
        let ttfb = outcome.ttfb_secs().expect("bytes travelled");
        assert!(ttfb > 0.0 && ttfb < outcome.duration_secs());
        // The storage flow actually carried the download.
        let after = psim.trace().wire_bytes(FlowKind::Storage);
        assert!(after - before >= outcome.downloaded_payload);
        // ADSL's fat downstream: pulling 400 kB is far faster than the
        // owner-side ADSL upload of the same batch would be (1 Mb/s up).
        assert!(
            outcome.duration_secs() < 4.0,
            "restore took {}s over the 8 Mb/s downstream",
            outcome.duration_secs()
        );
    }

    #[test]
    fn restoring_a_departed_user_fails_cleanly() {
        use cloudsim_storage::{ObjectStore, UploadPipeline};
        let store = ObjectStore::new();
        let pipeline = UploadPipeline::sequential();
        let mut sim = Simulator::new(13);
        let mut owner =
            SyncClient::for_user(ServiceProfile::dropbox(), pipeline, store.clone(), "owner");
        let t0 = owner.login(&mut sim, SimTime::ZERO);
        let synced = owner.sync_batch(&mut sim, &batch(2, 50_000), t0 + SimDuration::from_secs(1));
        let paths = store.list_files("owner");
        owner.leave_service(&mut sim, synced.completed_at + SimDuration::from_secs(1));

        let mut puller =
            SyncClient::for_user(ServiceProfile::dropbox(), pipeline, store.clone(), "puller");
        let mut psim = Simulator::new(14);
        let login = puller.login(&mut psim, SimTime::ZERO);
        let storage_before = psim.trace().wire_bytes(FlowKind::Storage);

        // Whole-user pull: the namespace is gone — one clean failure.
        let outcome = puller.restore_user(&mut psim, "owner", login + SimDuration::from_secs(1));
        assert_eq!(outcome.files_restored, 0);
        assert_eq!(outcome.files_failed, 1);
        assert_eq!(outcome.downloaded_payload, 0);
        assert_eq!(outcome.first_byte_at, None);

        // Path-level pull of the hard-deleted manifests: typed per-file
        // failures, still no storage traffic, never a panic.
        let outcome = puller.restore_batch(&mut psim, "owner", &paths, outcome.completed_at);
        assert_eq!(outcome.files_failed, paths.len());
        assert_eq!(psim.trace().wire_bytes(FlowKind::Storage), storage_before);
        assert!(outcome.completed_at > outcome.requested_at, "the control plane still answered");
    }

    #[test]
    fn idling_touches_the_clock_but_never_the_planner() {
        // The temporal scheduler's invariant: idle rounds pay signalling
        // only. Batches planned advance exactly with syncs, and
        // last_activity tracks every protocol step.
        let mut sim = Simulator::new(5);
        let mut client = SyncClient::new(ServiceProfile::dropbox());
        let t0 = client.login(&mut sim, SimTime::ZERO);
        assert_eq!(client.last_activity(), t0);
        assert_eq!(client.planner().batches_planned(), 0);

        let out = client.sync_batch(&mut sim, &batch(2, 10_000), t0 + SimDuration::from_secs(5));
        assert_eq!(client.planner().batches_planned(), 1);
        assert_eq!(client.last_activity(), out.completed_at.max(client.last_activity()));

        let before = client.last_activity();
        let last_poll = client.idle_until(&mut sim, before + SimDuration::from_secs(300));
        assert_eq!(client.planner().batches_planned(), 1, "idling must not plan batches");
        assert!(last_poll > before, "five minutes of idling must poll at least once");
        assert_eq!(client.last_activity(), last_poll);

        client.sync_batch(&mut sim, &batch(1, 5_000), last_poll + SimDuration::from_secs(5));
        assert_eq!(client.planner().batches_planned(), 2);
    }

    #[test]
    #[should_panic(expected = "sync_batch needs at least one file")]
    fn empty_batches_are_rejected() {
        let mut sim = Simulator::new(1);
        let mut client = SyncClient::new(ServiceProfile::dropbox());
        client.login(&mut sim, SimTime::ZERO);
        client.sync_batch(&mut sim, &[], SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "idle_until requires a prior login")]
    fn idle_without_login_panics() {
        let mut sim = Simulator::new(1);
        let mut client = SyncClient::new(ServiceProfile::dropbox());
        client.idle_until(&mut sim, SimTime::from_secs(60));
    }
}
