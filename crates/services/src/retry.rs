//! Pluggable retry policies for fault-injected transfers.
//!
//! When a link outage kills a transfer mid-flight (a
//! [`cloudsim_net::TransferInterrupted`]), the session layer consults a
//! [`RetryPolicy`] to decide whether — and after how long a backoff — the
//! uncommitted tail is re-driven. Backoff waits are *virtual-clock* time:
//! they advance the client's simulated timeline exactly like think-time
//! pauses do, so retry storms and think-time scheduling interact the way
//! they would on a real client.
//!
//! Determinism contract: a policy is pure. The jitter a backoff applies
//! comes from a seeded 64-bit `draw` the *caller* derives (per client, per
//! chunk, per attempt), never from shared RNG state — two runs with the
//! same seeds back off for identical virtual durations.

use cloudsim_trace::SimDuration;
use cloudsim_workload::seed::unit_f64;
use serde::{Deserialize, Serialize};

/// Decides whether an interrupted transfer is retried and how long the
/// client waits first. Implementations must be pure functions of
/// `(attempt, draw)` so faulted runs replay bit-identically.
pub trait RetryPolicy {
    /// The virtual-time backoff before retry number `attempt` (1-based: the
    /// first retry after the first interruption passes `attempt == 1`), or
    /// `None` when the policy's budget is exhausted and the operation must
    /// be abandoned. `draw` is a seeded 64-bit value for jitter.
    fn backoff(&self, attempt: u32, draw: u64) -> Option<SimDuration>;

    /// Stable policy name, used in reports and metric keys.
    fn name(&self) -> &'static str;
}

/// The control policy: never retry. An interrupted transfer is abandoned on
/// the first failure — the lower bound every real policy is compared
/// against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NoRetry;

impl RetryPolicy for NoRetry {
    fn backoff(&self, _attempt: u32, _draw: u64) -> Option<SimDuration> {
        None
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

/// Exponential backoff with seeded jitter and a bounded retry budget:
/// retry `n` waits `base * 2^(n-1)` capped at `cap`, stretched by a
/// multiplicative jitter factor drawn from `[1 - jitter, 1 + jitter]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialBackoff {
    /// Backoff before the first retry.
    pub base: SimDuration,
    /// Upper bound any single backoff is clamped to.
    pub cap: SimDuration,
    /// Maximum number of retries per operation (0 degenerates to no-retry).
    pub budget: u32,
    /// Jitter half-width in `[0, 1]`: each wait is scaled by a seeded
    /// factor in `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl ExponentialBackoff {
    /// The fleet default: 2 s base, 60 s cap, 8 retries, 30% jitter.
    pub fn standard() -> ExponentialBackoff {
        ExponentialBackoff {
            base: SimDuration::from_secs(2),
            cap: SimDuration::from_secs(60),
            budget: 8,
            jitter: 0.3,
        }
    }
}

impl RetryPolicy for ExponentialBackoff {
    fn backoff(&self, attempt: u32, draw: u64) -> Option<SimDuration> {
        assert!(attempt >= 1, "retry attempts are 1-based");
        if attempt > self.budget {
            return None;
        }
        let doublings = (attempt - 1).min(32);
        let wait = self.base.saturating_mul(1u64 << doublings).min(self.cap);
        let factor = 1.0 + self.jitter * (2.0 * unit_f64(draw) - 1.0);
        Some(SimDuration::from_secs_f64(wait.as_secs_f64() * factor.max(0.0)))
    }

    fn name(&self) -> &'static str {
        "exponential"
    }
}

/// Serialisable retry-policy configuration — the form a [`RetryPolicy`]
/// takes inside a fleet spec. `policy()` materialises the trait object; to
/// add a policy, implement [`RetryPolicy`], add a variant here and map it
/// in `policy()`/`name()`.
///
/// ```
/// use cloudsim_services::retry::{RetryConfig, RetryPolicy as _};
///
/// let policy = RetryConfig::standard_exponential().policy();
/// let wait = policy.backoff(1, 42).expect("the standard budget allows a first retry");
/// // Pure: the same (attempt, draw) pair always waits the same time.
/// assert_eq!(policy.backoff(1, 42), Some(wait));
/// // The control policy and an exhausted budget both abandon immediately.
/// assert_eq!(RetryConfig::None.policy().backoff(1, 42), None);
/// assert_eq!(RetryConfig::with_budget(0).policy().backoff(1, 42), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RetryConfig {
    /// Abandon on first interruption (the no-recovery control).
    None,
    /// Exponential backoff with seeded jitter and a bounded budget.
    Exponential {
        /// Backoff before the first retry.
        base: SimDuration,
        /// Upper bound any single backoff is clamped to.
        cap: SimDuration,
        /// Maximum retries per operation.
        budget: u32,
        /// Jitter half-width in `[0, 1]`.
        jitter: f64,
    },
}

impl RetryConfig {
    /// The standard exponential configuration ([`ExponentialBackoff::standard`]).
    pub fn standard_exponential() -> RetryConfig {
        let e = ExponentialBackoff::standard();
        RetryConfig::Exponential { base: e.base, cap: e.cap, budget: e.budget, jitter: e.jitter }
    }

    /// An exponential configuration with the given retry budget and the
    /// standard base/cap/jitter — `budget(0)` is the "retries exhausted
    /// immediately" arm of the faults suite.
    pub fn with_budget(budget: u32) -> RetryConfig {
        match RetryConfig::standard_exponential() {
            RetryConfig::Exponential { base, cap, jitter, .. } => {
                RetryConfig::Exponential { base, cap, budget, jitter }
            }
            other => other,
        }
    }

    /// Materialises the policy this configuration describes.
    pub fn policy(&self) -> Box<dyn RetryPolicy + Send + Sync> {
        match *self {
            RetryConfig::None => Box::new(NoRetry),
            RetryConfig::Exponential { base, cap, budget, jitter } => {
                assert!((0.0..=1.0).contains(&jitter), "jitter must be within [0, 1]");
                Box::new(ExponentialBackoff { base, cap, budget, jitter })
            }
        }
    }

    /// Stable configuration name (matches the materialised policy's name).
    pub fn name(&self) -> &'static str {
        match self {
            RetryConfig::None => "none",
            RetryConfig::Exponential { .. } => "exponential",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_retry_never_grants_a_backoff() {
        assert_eq!(NoRetry.backoff(1, 42), None);
        assert_eq!(NoRetry.backoff(100, 7), None);
        assert_eq!(NoRetry.name(), "none");
    }

    #[test]
    fn exponential_backoff_doubles_caps_and_respects_the_budget() {
        let p = ExponentialBackoff {
            base: SimDuration::from_secs(1),
            cap: SimDuration::from_secs(10),
            budget: 5,
            jitter: 0.0,
        };
        assert_eq!(p.backoff(1, 0), Some(SimDuration::from_secs(1)));
        assert_eq!(p.backoff(2, 0), Some(SimDuration::from_secs(2)));
        assert_eq!(p.backoff(3, 0), Some(SimDuration::from_secs(4)));
        assert_eq!(p.backoff(4, 0), Some(SimDuration::from_secs(8)));
        // Clamped to the cap, then the budget runs out.
        assert_eq!(p.backoff(5, 0), Some(SimDuration::from_secs(10)));
        assert_eq!(p.backoff(6, 0), None);
    }

    #[test]
    fn jitter_is_a_pure_function_of_the_draw() {
        // Draws are full 64-bit mixed values in practice (derive_seed), so
        // the test uses mixed draws too: tiny integers all collapse to the
        // bottom of the unit interval.
        let p = ExponentialBackoff::standard();
        let x = 0x9E3779B97F4A7C15u64;
        let y = 0xD1B54A32D192ED03u64;
        let a = p.backoff(1, x).unwrap();
        assert_eq!(a, p.backoff(1, x).unwrap(), "same draw, same wait");
        let b = p.backoff(1, y).unwrap();
        assert_ne!(a, b, "different draws should jitter differently");
        // Jitter stays within the configured half-width.
        let base = p.base.as_secs_f64();
        for draw in 0..100u64 {
            let w = p.backoff(1, draw.wrapping_mul(0x9E3779B97F4A7C15)).unwrap().as_secs_f64();
            assert!(w >= base * (1.0 - p.jitter) - 1e-6 && w <= base * (1.0 + p.jitter) + 1e-6);
        }
    }

    #[test]
    fn a_zero_budget_exponential_degenerates_to_no_retry() {
        let cfg = RetryConfig::with_budget(0);
        assert_eq!(cfg.policy().backoff(1, 99), None);
        assert_eq!(cfg.name(), "exponential");
    }

    #[test]
    fn config_serialises_deterministically_and_materialises() {
        for cfg in [RetryConfig::None, RetryConfig::standard_exponential()] {
            let json = serde_json::to_string(&cfg).unwrap();
            assert_eq!(json, serde_json::to_string(&cfg).unwrap());
            assert_eq!(cfg.policy().name(), cfg.name());
        }
        let json = serde_json::to_string(&RetryConfig::standard_exponential()).unwrap();
        assert!(json.contains("Exponential") && json.contains("budget"), "got {json}");
        let policy = RetryConfig::standard_exponential().policy();
        assert!(policy.backoff(1, 7).is_some());
    }
}
