//! The temporal fleet schedule: think times, idle rounds and arrival jitter
//! on a virtual clock.
//!
//! The paper's benchmarks are fundamentally temporal — §3.1 measures idle
//! background signalling over a 16-minute capture, and the §5 workload
//! experiments measure sync *start-up delay* and completion time, which only
//! exist when clients don't all fire in lock-step. The round-major fleet
//! originally synced every active client exactly one batch per round with no
//! notion of elapsed time between or within rounds; this module replaces
//! that implicit lock-step with a seeded virtual-clock schedule:
//!
//! * a [`ThinkTime`] distribution (fixed / uniform / exponential) samples
//!   the pause a user "thinks" between activity bursts,
//! * a per-round **activation probability** yields idle rounds in which a
//!   client stays connected and pays §3.1-style keep-alive signalling but
//!   syncs nothing,
//! * an **arrival jitter** bound offsets each sync start inside its round so
//!   clients arrive at distinct virtual instants instead of a shared
//!   barrier.
//!
//! Determinism contract: [`FleetSchedule::generate`] is a *pure function* of
//! the [`FleetSpec`] (which carries the master seed) — no wall clock, no
//! unseeded RNG, no thread-order dependence. The schedule is data; the fleet
//! harness merely replays it, which is why concurrent runs stay bit-exact
//! with jitter enabled and why the CI `schedule-determinism` leg can `cmp`
//! two fresh dumps byte for byte. A legacy configuration (zero think time,
//! zero jitter, activation 1.0) degenerates to exactly the old lock-step
//! timeline, so the pre-existing `fleet.*`/`hetero.*`/`restore.*` baselines
//! double as the refactor's safety proof.

use crate::fleet::FleetSpec;
use cloudsim_trace::SimDuration;
use cloudsim_workload::seed::{derive_seed, unit_f64};
use serde::Serialize;
use std::fmt;

/// Salt distinguishing activation draws from every other seeded stream.
const SALT_ACTIVATION: u64 = 0x5EED_AC21;
/// Salt distinguishing arrival-jitter draws.
const SALT_JITTER: u64 = 0x5EED_0FF5;
/// Salt distinguishing think-time draws.
const SALT_THINK: u64 = 0x5EED_7183;

/// The distribution of the pause between a client's activity bursts.
///
/// All variants are sampled from the fleet's seeded draw stream, so a
/// schedule is reproducible bit-for-bit from `(FleetSpec, seed)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum ThinkTime {
    /// Every pause lasts exactly this long (zero = the legacy lock-step).
    Fixed(SimDuration),
    /// Pauses drawn uniformly from `[min, max]`.
    Uniform {
        /// Shortest possible pause.
        min: SimDuration,
        /// Longest possible pause.
        max: SimDuration,
    },
    /// Memoryless pauses with the given mean — the classic think-time model
    /// for user sessions.
    Exponential {
        /// Mean pause length.
        mean: SimDuration,
    },
}

impl ThinkTime {
    /// The legacy configuration: no pause at all.
    pub const NONE: ThinkTime = ThinkTime::Fixed(SimDuration::ZERO);

    /// Samples the distribution from one seeded draw. Pure: the same draw
    /// always yields the same duration.
    ///
    /// ```
    /// use cloudsim_services::schedule::ThinkTime;
    /// use cloudsim_trace::SimDuration;
    ///
    /// let think = ThinkTime::Uniform {
    ///     min: SimDuration::from_secs(1),
    ///     max: SimDuration::from_secs(9),
    /// };
    /// let pause = think.sample(0xA11CE);
    /// assert!(pause >= SimDuration::from_secs(1) && pause <= SimDuration::from_secs(9));
    /// // Pure: the same draw always yields the same pause.
    /// assert_eq!(pause, think.sample(0xA11CE));
    /// assert!(ThinkTime::NONE.sample(7).is_zero());
    /// ```
    pub fn sample(&self, draw: u64) -> SimDuration {
        match *self {
            ThinkTime::Fixed(d) => d,
            ThinkTime::Uniform { min, max } => {
                assert!(max >= min, "uniform think time needs min <= max");
                let span = max.as_micros() - min.as_micros();
                let offset = (span as f64 * unit_f64(draw)).floor() as u64;
                SimDuration::from_micros(min.as_micros() + offset.min(span))
            }
            ThinkTime::Exponential { mean } => {
                // Inverse-CDF sampling; u < 1 keeps ln finite and the
                // result non-negative.
                let u = unit_f64(draw);
                SimDuration::from_secs_f64(-mean.as_secs_f64() * (1.0 - u).ln())
            }
        }
    }

    /// True when the distribution can only ever produce zero pauses.
    pub fn is_zero(&self) -> bool {
        match *self {
            ThinkTime::Fixed(d) => d.is_zero(),
            ThinkTime::Uniform { min, max } => min.is_zero() && max.is_zero(),
            ThinkTime::Exponential { mean } => mean.is_zero(),
        }
    }
}

impl fmt::Display for ThinkTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ThinkTime::Fixed(d) => write!(f, "fixed {}s", d.as_secs_f64()),
            ThinkTime::Uniform { min, max } => {
                write!(f, "uniform [{}s, {}s]", min.as_secs_f64(), max.as_secs_f64())
            }
            ThinkTime::Exponential { mean } => write!(f, "exp(mean {}s)", mean.as_secs_f64()),
        }
    }
}

/// One activated sync of the schedule: which round it belongs to, which
/// activation ordinal it is for its client, and the temporal offsets the
/// draws assigned to it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SyncActivation {
    /// The round this activation fires in. Batch *content* stays keyed to
    /// this round so the fleet-wide shared pool keeps aligning across
    /// clients (and the legacy configuration replays the old content
    /// byte-identically).
    pub round: usize,
    /// How many syncs this client activated before this one — a per-client
    /// activation counter (dense: 0, 1, 2, … whatever the idle pattern).
    /// Purely informational for per-client accounting; batch *content* must
    /// stay keyed to [`SyncActivation::round`], never to this ordinal, or
    /// the cross-client shared-pool alignment (and the legacy byte-identity
    /// with the committed baselines) breaks.
    pub ordinal: usize,
    /// Intra-round arrival offset: added to the client's virtual clock so
    /// arrivals spread across the round instead of hitting a shared barrier.
    pub arrival_jitter: SimDuration,
    /// The think-time pause preceding this activity burst.
    pub think: SimDuration,
}

/// What one client does in one of its connected rounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum RoundEvent {
    /// The client activates and syncs one batch.
    Sync(SyncActivation),
    /// The client stays connected but syncs nothing: an idle round. It still
    /// pays the §3.1 background signalling (keep-alive polls) for the
    /// round's span of virtual time.
    Idle {
        /// The round spent idle.
        round: usize,
    },
}

impl RoundEvent {
    /// The round this event belongs to.
    pub fn round(&self) -> usize {
        match *self {
            RoundEvent::Sync(ref s) => s.round,
            RoundEvent::Idle { round } => round,
        }
    }

    /// The activation if this event syncs.
    pub fn activation(&self) -> Option<&SyncActivation> {
        match self {
            RoundEvent::Sync(s) => Some(s),
            RoundEvent::Idle { .. } => None,
        }
    }
}

/// One client's precomputed timeline: one event per connected round, in
/// round order.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClientSchedule {
    /// The slot index this timeline belongs to.
    pub slot: usize,
    /// One event per round in the slot's membership window.
    pub events: Vec<RoundEvent>,
}

impl ClientSchedule {
    /// The event of a given round, if the client is connected then.
    pub fn event_in(&self, round: usize) -> Option<&RoundEvent> {
        self.events.iter().find(|e| e.round() == round)
    }

    /// The activation of a given round, if the client syncs then.
    pub fn activation_in(&self, round: usize) -> Option<&SyncActivation> {
        self.event_in(round).and_then(RoundEvent::activation)
    }

    /// Rounds in which this client activates and syncs a batch.
    pub fn sync_rounds(&self) -> usize {
        self.events.iter().filter(|e| matches!(e, RoundEvent::Sync(_))).count()
    }

    /// Rounds this client spends connected but idle.
    pub fn idle_rounds(&self) -> usize {
        self.events.len() - self.sync_rounds()
    }
}

/// The whole fleet's precomputed temporal schedule: per-client event lists
/// derived up front from `(FleetSpec, seed)`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetSchedule {
    /// One timeline per slot, indexed by slot number.
    pub clients: Vec<ClientSchedule>,
}

impl FleetSchedule {
    /// Generates the schedule: a pure function of the spec (no wall clock,
    /// no unseeded RNG). Every `(client, round)` pair draws its activation,
    /// jitter and think time from independent seeded streams, so inserting
    /// or removing clients or rounds never shifts another pair's draws.
    ///
    /// ```
    /// use cloudsim_services::fleet::FleetSpec;
    /// use cloudsim_services::schedule::{FleetSchedule, ThinkTime};
    /// use cloudsim_services::ServiceProfile;
    /// use cloudsim_trace::SimDuration;
    ///
    /// let spec = FleetSpec::new(ServiceProfile::dropbox(), 3)
    ///     .with_batches(2)
    ///     .with_seed(7)
    ///     .with_think_time(ThinkTime::Exponential { mean: SimDuration::from_secs(5) })
    ///     .with_activation(0.8);
    /// let schedule = FleetSchedule::generate(&spec);
    /// assert_eq!(schedule.clients.len(), 3);
    /// // The schedule is data: regenerating from the same spec is identical.
    /// assert_eq!(schedule, spec.schedule());
    /// ```
    pub fn generate(spec: &FleetSpec) -> FleetSchedule {
        let clients = (0..spec.slots.len())
            .map(|i| {
                let slot = &spec.slots[i];
                let mut events = Vec::new();
                let mut ordinal = 0usize;
                for round in 0..spec.rounds {
                    if !slot.active_in(round) {
                        continue;
                    }
                    let act_draw = derive_seed(spec.seed, i as u64, round as u64, SALT_ACTIVATION);
                    if unit_f64(act_draw) < spec.activation {
                        let jitter_span = spec.arrival_jitter.as_micros();
                        let jit_draw = derive_seed(spec.seed, i as u64, round as u64, SALT_JITTER);
                        let arrival_jitter = SimDuration::from_micros(jit_draw % (jitter_span + 1));
                        let think_draw = derive_seed(spec.seed, i as u64, round as u64, SALT_THINK);
                        let think = spec.think.sample(think_draw);
                        events.push(RoundEvent::Sync(SyncActivation {
                            round,
                            ordinal,
                            arrival_jitter,
                            think,
                        }));
                        ordinal += 1;
                    } else {
                        events.push(RoundEvent::Idle { round });
                    }
                }
                ClientSchedule { slot: i, events }
            })
            .collect();
        FleetSchedule { clients }
    }

    /// Total activated syncs across the fleet.
    pub fn total_sync_rounds(&self) -> usize {
        self.clients.iter().map(ClientSchedule::sync_rounds).sum()
    }

    /// Total connected-but-idle rounds across the fleet.
    pub fn total_idle_rounds(&self) -> usize {
        self.clients.iter().map(ClientSchedule::idle_rounds).sum()
    }

    /// True when every connected round of every client activates with zero
    /// jitter and zero think time — the configuration that replays the old
    /// lock-step fleet byte-identically.
    pub fn is_lockstep(&self) -> bool {
        self.clients.iter().all(|c| {
            c.events.iter().all(|e| match e {
                RoundEvent::Sync(s) => s.arrival_jitter.is_zero() && s.think.is_zero(),
                RoundEvent::Idle { .. } => false,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ServiceProfile;

    fn spec(clients: usize) -> FleetSpec {
        FleetSpec::new(ServiceProfile::dropbox(), clients)
            .with_files(2, 8 * 1024)
            .with_batches(4)
            .with_seed(0xABCD)
    }

    #[test]
    fn legacy_config_schedules_pure_lockstep() {
        let schedule = spec(3).schedule();
        assert!(schedule.is_lockstep());
        assert_eq!(schedule.total_idle_rounds(), 0);
        assert_eq!(schedule.total_sync_rounds(), 12);
        for client in &schedule.clients {
            for (k, event) in client.events.iter().enumerate() {
                let act = event.activation().expect("legacy rounds all sync");
                assert_eq!(act.round, k);
                assert_eq!(act.ordinal, k, "legacy ordinals equal round offsets");
                assert!(act.arrival_jitter.is_zero());
                assert!(act.think.is_zero());
            }
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_the_spec() {
        let temporal = spec(5)
            .with_think_time(ThinkTime::Exponential { mean: SimDuration::from_secs(10) })
            .with_arrival_jitter(SimDuration::from_secs(30))
            .with_activation(0.6);
        assert_eq!(temporal.schedule(), temporal.schedule());
        assert_eq!(FleetSchedule::generate(&temporal), temporal.schedule());
        // A different seed reshuffles the draws.
        assert_ne!(temporal.schedule(), temporal.clone().with_seed(99).schedule());
    }

    #[test]
    fn activation_probability_produces_idle_rounds_and_respects_bounds() {
        let temporal = spec(8).with_activation(0.5);
        let schedule = temporal.schedule();
        assert!(schedule.total_idle_rounds() > 0, "p=0.5 over 32 draws must idle somewhere");
        assert!(schedule.total_sync_rounds() > 0);
        assert_eq!(schedule.total_sync_rounds() + schedule.total_idle_rounds(), 32);
        // Ordinals count activations, not rounds: they stay dense per client.
        for client in &schedule.clients {
            let ordinals: Vec<usize> =
                client.events.iter().filter_map(|e| e.activation()).map(|a| a.ordinal).collect();
            assert_eq!(ordinals, (0..ordinals.len()).collect::<Vec<_>>());
        }
        // The extremes: activation 0 never syncs, activation 1 never idles.
        assert_eq!(spec(8).with_activation(0.0).schedule().total_sync_rounds(), 0);
        assert_eq!(spec(8).with_activation(1.0).schedule().total_idle_rounds(), 0);
    }

    #[test]
    fn jitter_draws_stay_within_the_bound_and_spread_arrivals() {
        let bound = SimDuration::from_secs(20);
        let schedule = spec(8).with_arrival_jitter(bound).schedule();
        let jitters: Vec<SimDuration> = schedule
            .clients
            .iter()
            .flat_map(|c| c.events.iter())
            .filter_map(|e| e.activation())
            .map(|a| a.arrival_jitter)
            .collect();
        assert!(jitters.iter().all(|j| *j <= bound));
        let distinct: std::collections::HashSet<u64> =
            jitters.iter().map(|j| j.as_micros()).collect();
        assert!(distinct.len() > jitters.len() / 2, "draws must spread, not collapse");
    }

    #[test]
    fn think_time_distributions_sample_deterministically() {
        let fixed = ThinkTime::Fixed(SimDuration::from_secs(3));
        assert_eq!(fixed.sample(1), SimDuration::from_secs(3));
        assert_eq!(fixed.sample(2), SimDuration::from_secs(3));

        let uniform =
            ThinkTime::Uniform { min: SimDuration::from_secs(2), max: SimDuration::from_secs(6) };
        for draw in 0..500u64 {
            let s = uniform.sample(derive_seed(1, draw, 0, 0));
            assert!(s >= SimDuration::from_secs(2) && s <= SimDuration::from_secs(6));
        }
        assert_eq!(uniform.sample(77), uniform.sample(77));

        let exp = ThinkTime::Exponential { mean: SimDuration::from_secs(5) };
        let mut sum = 0.0;
        for draw in 0..2_000u64 {
            let s = exp.sample(derive_seed(2, draw, 0, 0));
            sum += s.as_secs_f64();
        }
        let mean = sum / 2_000.0;
        assert!((3.5..6.5).contains(&mean), "empirical mean {mean} far from 5s");
        assert_eq!(exp.sample(42), exp.sample(42));

        assert!(ThinkTime::NONE.is_zero());
        assert!(!exp.is_zero());
        assert_eq!(format!("{exp}"), "exp(mean 5s)");
        assert_eq!(format!("{}", ThinkTime::NONE), "fixed 0s");
        assert_eq!(format!("{uniform}"), "uniform [2s, 6s]");
    }

    #[test]
    fn churned_slots_only_schedule_their_membership_window() {
        let mut temporal = spec(3);
        temporal.slots[0].leave_after = Some(1);
        temporal.slots[2].join_round = 2;
        let schedule = temporal.schedule();
        assert_eq!(
            schedule.clients[0].events.iter().map(RoundEvent::round).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(
            schedule.clients[2].events.iter().map(RoundEvent::round).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert!(schedule.clients[1].event_in(3).is_some());
        assert!(schedule.clients[0].event_in(3).is_none());
        assert!(schedule.clients[0].activation_in(0).is_some());
    }
}
