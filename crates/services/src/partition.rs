//! Worker-sharded partition runner: the fleet population split into N
//! disjoint client sets, each driven by its own worker against the one
//! shared sharded [`ObjectStore`].
//!
//! The controller derives the event heap once (from a live [`ScaleSpec`]
//! or a parsed [`FleetCapture`]), cuts the population into disjoint
//! [`ClientSet`]s — contiguous ranges over a capture (the slice doubles as
//! the work-distribution unit, see [`slice_capture`]), round-robin stripes
//! over a live spec — and hands each partition a self-contained
//! [`PartitionSpec`]. A worker drives its partition's sub-heap through the
//! exact same executor as the unsliced run ([`crate::scale`]) and returns a
//! [`PartitionRun`]; the controller then merges the per-partition state:
//!
//! * **busy-chaining is per-client**: a client's commits serialise on its
//!   own link and never touch another client's state, so driving a client's
//!   events inside any partition produces the same intervals as the
//!   unsliced heap;
//! * **store aggregates are commutative**: all partitions commit into the
//!   one shared store, whose accounting is order-independent — the same
//!   property that already makes waves parallelisable;
//! * **interval and histogram merges are order-independent**: per-partition
//!   event streams are subsequences of the globally key-ordered stream, so
//!   a k-way merge by [`FleetEvent::key`] reconstructs the global heap pop
//!   order exactly, and histogram merge is elementwise bucket addition.
//!
//! Together these make a partitioned run **bit-identical** to the unsliced
//! run for every derived metric, whatever the partition count — asserted
//! with `to_bits` equality at 10k clients in the bench crate and `cmp`ed
//! byte for byte by the CI partition-determinism leg.
//!
//! The worker-facing API is deliberately free of shared-memory assumptions
//! beyond the store handle: a [`PartitionSpec`] is pure data (a capture
//! slice serialises to the versioned JSONL format), and a [`PartitionRun`]
//! is plain state records, events and intervals — the seam for a future
//! multi-process mode where workers live in separate processes and ship
//! their runs back over a pipe.

use crate::capture::{slice_capture, FleetCapture};
use crate::engine::{wave_count, EventHeap, FleetEvent, Phase};
use crate::scale::{
    assemble_run, drive_waves, execute_transfer, scale_user, ScaleClientState, ScaleRun, ScaleSpec,
};
use cloudsim_net::AccessLink;
use cloudsim_storage::{GcPolicy, ObjectStore};
use cloudsim_trace::{LatencyHistogram, SimTime};

/// The disjoint set of global client indices one partition owns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientSet {
    /// Contiguous global clients `[start, end)` — what capture slices
    /// cover.
    Range {
        /// First global client index (inclusive).
        start: usize,
        /// One past the last global client index.
        end: usize,
    },
    /// Every `step`-th client of a `total`-client population starting at
    /// `offset` — the round-robin split over a live spec, which balances
    /// the link mix (links are assigned round-robin too) across partitions.
    Stripe {
        /// First global client index of the stripe.
        offset: usize,
        /// Distance between consecutive stripe members (the partition
        /// count).
        step: usize,
        /// Clients in the whole population.
        total: usize,
    },
}

impl ClientSet {
    /// Clients in the set.
    pub fn len(&self) -> usize {
        match *self {
            ClientSet::Range { start, end } => end.saturating_sub(start),
            ClientSet::Stripe { offset, step, total } => {
                if offset >= total {
                    0
                } else {
                    (total - offset - 1) / step + 1
                }
            }
        }
    }

    /// True when the set holds no clients.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the set owns global client `id`.
    pub fn contains(&self, id: usize) -> bool {
        match *self {
            ClientSet::Range { start, end } => (start..end).contains(&id),
            ClientSet::Stripe { offset, step, total } => {
                id < total && id >= offset && (id - offset).is_multiple_of(step)
            }
        }
    }

    /// The set-local index of global client `id`, if the set owns it. The
    /// inverse of [`ClientSet::global_id`].
    pub fn local_index(&self, id: usize) -> Option<usize> {
        if !self.contains(id) {
            return None;
        }
        Some(match *self {
            ClientSet::Range { start, .. } => id - start,
            ClientSet::Stripe { offset, step, .. } => (id - offset) / step,
        })
    }

    /// The global index of the set's `local`-th client.
    pub fn global_id(&self, local: usize) -> usize {
        debug_assert!(
            local < self.len(),
            "local index {local} outside the {}-client set",
            self.len()
        );
        match *self {
            ClientSet::Range { start, .. } => start + local,
            ClientSet::Stripe { offset, step, .. } => offset + local * step,
        }
    }

    /// The set's global client indices in local order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).map(|local| self.global_id(local))
    }
}

/// The workload one partition drives — pure data either way.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionWorkload {
    /// Derive the partition's events live from the spec (the partition
    /// only fires events of the clients its set owns).
    Spec(ScaleSpec),
    /// Replay a capture slice — the work-distribution unit a controller
    /// can hand to an out-of-process worker as versioned JSONL.
    Slice(FleetCapture),
}

/// Everything one worker needs to drive its partition: the client set it
/// owns and the workload to derive events from. No shared memory beyond
/// the store handle passed to [`run_partition`].
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSpec {
    /// The partition's index among its siblings.
    pub index: usize,
    /// The global clients this partition owns.
    pub clients: ClientSet,
    /// Where the partition's events come from.
    pub workload: PartitionWorkload,
}

/// One finished partition: the driven state, the partition's events in
/// heap order (global client indices) and the matching transfer intervals.
/// Plain data — nothing here assumes the worker shared an address space
/// with the controller.
#[derive(Debug, Clone)]
pub struct PartitionRun {
    /// The partition's index among its siblings.
    pub index: usize,
    /// The global clients the partition drove.
    pub clients: ClientSet,
    /// The partition's events in heap pop order, with global client
    /// indices — each stream is a subsequence of the unsliced run's global
    /// event order, which is what makes the k-way merge exact.
    pub events: Vec<FleetEvent>,
    /// Transfer intervals, parallel to `events`.
    pub intervals: Vec<(SimTime, SimTime)>,
    /// Waves the partition's own sub-heap split into.
    pub waves: usize,
    /// Commits the partition performed.
    pub commits: u64,
    /// Plaintext bytes the partition committed.
    pub logical_bytes: u64,
    /// Per-client state records in set-local order.
    pub(crate) states: Vec<ScaleClientState>,
}

impl PartitionRun {
    /// Start of the partition's earliest transfer.
    pub fn first_start(&self) -> SimTime {
        self.intervals.iter().map(|&(s, _)| s).min().unwrap_or(SimTime::ZERO)
    }

    /// End of the partition's latest transfer.
    pub fn last_end(&self) -> SimTime {
        self.intervals.iter().map(|&(_, e)| e).max().unwrap_or(SimTime::ZERO)
    }

    /// Distribution of the partition's per-commit transfer durations.
    /// Merging the partitions' histograms elementwise reproduces the
    /// unsliced run's histogram exactly.
    pub fn transfer_histogram(&self) -> LatencyHistogram {
        self.intervals.iter().map(|&(s, e)| e - s).collect()
    }
}

/// Near-equal contiguous ranges splitting `clients` into `partitions`
/// parts: the first `clients % partitions` ranges get one extra client.
/// Capture-local, half-open — exactly what [`slice_capture`] consumes.
pub fn partition_ranges(clients: usize, partitions: usize) -> Vec<(usize, usize)> {
    assert!(partitions > 0, "need at least one partition");
    let base = clients / partitions;
    let extra = clients % partitions;
    let mut ranges = Vec::with_capacity(partitions);
    let mut start = 0usize;
    for k in 0..partitions {
        let end = start + base + usize::from(k < extra);
        ranges.push((start, end));
        start = end;
    }
    ranges
}

/// Cuts a live spec into `partitions` round-robin stripes. Striping keeps
/// every partition's link mix representative (links are assigned
/// round-robin over global client indices too).
pub fn spec_partitions(spec: &ScaleSpec, partitions: usize) -> Vec<PartitionSpec> {
    assert!(partitions > 0, "need at least one partition");
    (0..partitions)
        .map(|k| PartitionSpec {
            index: k,
            clients: ClientSet::Stripe { offset: k, step: partitions, total: spec.clients },
            workload: PartitionWorkload::Spec(spec.clone()),
        })
        .collect()
}

/// Cuts a capture into `partitions` contiguous slices via
/// [`slice_capture`] and wraps each as a partition spec. Fails when the
/// capture holds fewer clients than partitions.
pub fn capture_partitions(
    capture: &FleetCapture,
    partitions: usize,
) -> Result<Vec<PartitionSpec>, String> {
    if partitions == 0 {
        return Err("need at least one partition".into());
    }
    if partitions > capture.clients {
        return Err(format!(
            "cannot cut {} clients into {partitions} non-empty partitions",
            capture.clients
        ));
    }
    let ranges = partition_ranges(capture.clients, partitions);
    let slices = slice_capture(capture, &ranges)?;
    Ok(slices
        .into_iter()
        .enumerate()
        .map(|(k, slice)| PartitionSpec {
            index: k,
            clients: ClientSet::Range {
                start: slice.client_base,
                end: slice.client_base + slice.clients,
            },
            workload: PartitionWorkload::Slice(slice),
        })
        .collect())
}

/// Drives one partition on up to `workers` threads against the shared
/// store. The partition's events run through the same wave machinery and
/// the same commit executor as the unsliced run; only the state array is
/// set-local. Returns the partition's events (global indices, heap order)
/// alongside the driven state.
pub fn run_partition(
    part: &PartitionSpec,
    store: &ObjectStore,
    workers: usize,
) -> Result<PartitionRun, String> {
    // The partition's events, in global heap order with global client ids.
    let mut events: Vec<FleetEvent> = match &part.workload {
        PartitionWorkload::Spec(spec) => {
            spec.validate();
            let mut events = Vec::with_capacity(part.clients.len() * spec.commits_per_client);
            for i in part.clients.iter() {
                if i >= spec.clients {
                    return Err(format!(
                        "partition {} owns client {i} outside the {}-client spec",
                        part.index, spec.clients
                    ));
                }
                for k in 0..spec.commits_per_client {
                    events.push(FleetEvent {
                        at: spec.commit_at(i, k),
                        phase: Phase::Sync,
                        client: i,
                        round: k,
                    });
                }
            }
            events
        }
        PartitionWorkload::Slice(capture) => {
            let expected = ClientSet::Range {
                start: capture.client_base,
                end: capture.client_base + capture.clients,
            };
            if part.clients != expected {
                return Err(format!(
                    "partition {} owns {:?} but its slice covers {:?}",
                    part.index, part.clients, expected
                ));
            }
            capture
                .events
                .iter()
                .map(|ev| FleetEvent {
                    at: ev.at,
                    phase: Phase::Sync,
                    client: ev.client,
                    round: ev.round,
                })
                .collect()
        }
    };
    events.sort();

    // Seed lookup for the slice path, keyed by set-local (client, round).
    let seeds: Vec<&[u64]> = match &part.workload {
        PartitionWorkload::Spec(_) => Vec::new(),
        PartitionWorkload::Slice(capture) => {
            let mut seeds: Vec<&[u64]> = vec![&[]; capture.clients * capture.commits_per_client];
            for ev in &capture.events {
                let local = ev.client - capture.client_base;
                seeds[local * capture.commits_per_client + ev.round] = &ev.content_seeds;
            }
            seeds
        }
    };
    let slice_links: Vec<AccessLink> = match &part.workload {
        PartitionWorkload::Spec(_) => Vec::new(),
        PartitionWorkload::Slice(capture) => capture
            .link_names
            .iter()
            .map(|name| {
                AccessLink::by_name(name)
                    .ok_or_else(|| format!("capture references unknown link preset \"{name}\""))
            })
            .collect::<Result<_, _>>()?,
    };

    // The sub-heap indexes states by set-local client; the executor maps
    // back to the global index for the store keyspace and link assignment,
    // so the partition commits exactly its clients' share of the unsliced
    // run.
    let local_events: Vec<FleetEvent> = events
        .iter()
        .map(|ev| {
            let local = part.clients.local_index(ev.client).ok_or_else(|| {
                format!("partition {} event touches unowned client {}", part.index, ev.client)
            })?;
            Ok(FleetEvent { at: ev.at, phase: ev.phase, client: local, round: ev.round })
        })
        .collect::<Result<_, String>>()?;
    let heap = EventHeap::from_events(local_events);

    let (states, intervals) = drive_waves(heap, part.clients.len(), workers, |ev, state| {
        let global = part.clients.global_id(ev.client);
        match &part.workload {
            PartitionWorkload::Spec(spec) => execute_transfer(
                store,
                &scale_user(global),
                spec.link(global),
                ev.round,
                spec.files_per_commit,
                spec.file_size,
                spec.shared_files_per_commit(),
                1,
                ev.at,
                |f| spec.content_seed(global, ev.round, f),
                state,
            ),
            PartitionWorkload::Slice(capture) => execute_transfer(
                store,
                &scale_user(global),
                &slice_links[global % slice_links.len()],
                ev.round,
                capture.files_per_commit,
                capture.file_size,
                capture.shared_files_per_commit,
                1,
                ev.at,
                |f| seeds[ev.client * capture.commits_per_client + ev.round][f],
                state,
            ),
        }
    });

    let waves = wave_count(&events);
    Ok(PartitionRun {
        index: part.index,
        clients: part.clients.clone(),
        commits: states.iter().map(|s| s.commits as u64).sum(),
        logical_bytes: states.iter().map(|s| s.logical_bytes).sum(),
        events,
        intervals,
        waves,
        states,
    })
}

/// Merges finished partitions back into one [`ScaleRun`], in any partition
/// order. Validates that the partitions exactly tile the global client
/// range `[client_base, client_base + clients)`, scatters the state
/// records by global id, and k-way merges the per-partition
/// (event, interval) streams by [`FleetEvent::key`] — each stream is a
/// subsequence of the globally ordered stream, so the merge reconstructs
/// the unsliced heap pop order exactly. Returns the merged run plus the
/// wave count of the merged event stream.
pub fn merge_partitions(
    client_base: usize,
    clients: usize,
    files: u64,
    parts: &[PartitionRun],
    store: ObjectStore,
    started: std::time::Instant,
) -> Result<(ScaleRun, usize), String> {
    let mut owned = vec![false; clients];
    for part in parts {
        for id in part.clients.iter() {
            if id < client_base || id - client_base >= clients {
                return Err(format!(
                    "partition {} owns client {id} outside the [{client_base}, {}) population",
                    part.index,
                    client_base + clients
                ));
            }
            if owned[id - client_base] {
                return Err(format!("client {id} is owned by more than one partition"));
            }
            owned[id - client_base] = true;
        }
    }
    if let Some(orphan) = owned.iter().position(|&o| !o) {
        return Err(format!("no partition owns client {}", client_base + orphan));
    }

    let mut states = vec![ScaleClientState::default(); clients];
    for part in parts {
        for (local, id) in part.clients.iter().enumerate() {
            states[id - client_base] = part.states[local];
        }
    }

    let total: usize = parts.iter().map(|p| p.events.len()).sum();
    let mut cursors = vec![0usize; parts.len()];
    let mut merged_events = Vec::with_capacity(total);
    let mut intervals = Vec::with_capacity(total);
    loop {
        let mut best: Option<usize> = None;
        for (i, part) in parts.iter().enumerate() {
            let Some(candidate) = part.events.get(cursors[i]) else { continue };
            let beats = match best {
                None => true,
                Some(b) => candidate.key() < parts[b].events[cursors[b]].key(),
            };
            if beats {
                best = Some(i);
            }
        }
        let Some(b) = best else { break };
        merged_events.push(parts[b].events[cursors[b]]);
        intervals.push(parts[b].intervals[cursors[b]]);
        cursors[b] += 1;
    }

    let waves = wave_count(&merged_events);
    Ok((assemble_run(clients, files, &states, intervals, store, started), waves))
}

/// A merged partitioned run: the recombined [`ScaleRun`] (bit-identical to
/// the unsliced run) plus the per-partition runs the merge consumed.
#[derive(Debug)]
pub struct PartitionedRun {
    /// The recombined run — every derived metric matches the unsliced run
    /// to the bit.
    pub run: ScaleRun,
    /// The finished partitions, in partition-index order.
    pub parts: Vec<PartitionRun>,
    /// Waves the merged event stream splits into (the unsliced run's wave
    /// count).
    pub merged_waves: usize,
}

/// The controller: runs the prepared partitions concurrently against one
/// shared store and merges the results. Worker threads are divided evenly
/// across partitions.
fn run_controller(
    parts: &[PartitionSpec],
    client_base: usize,
    clients: usize,
    files: u64,
) -> Result<PartitionedRun, String> {
    let store = ObjectStore::with_policy(GcPolicy::MarkSweep);
    let started = std::time::Instant::now();
    let k = parts.len().max(1);
    let available = cloudsim_parallel::available_workers();
    let per_partition = (available / k).max(1);
    let results: Vec<Result<PartitionRun, String>> = cloudsim_parallel::run_indexed(
        available.min(k),
        parts.len(),
        || (),
        |(), i| run_partition(&parts[i], &store, per_partition),
    );
    let mut finished = Vec::with_capacity(parts.len());
    for result in results {
        finished.push(result?);
    }
    let (run, merged_waves) =
        merge_partitions(client_base, clients, files, &finished, store, started)?;
    Ok(PartitionedRun { run, parts: finished, merged_waves })
}

/// Runs a live spec split into `partitions` round-robin stripes. The
/// merged run is bit-identical to [`crate::scale::run_scale_concurrent`]
/// on the same spec, whatever the partition count.
pub fn run_partitioned(spec: &ScaleSpec, partitions: usize) -> PartitionedRun {
    spec.validate();
    assert!(
        partitions > 0 && partitions <= spec.clients,
        "partition count must be within [1, {}], got {partitions}",
        spec.clients
    );
    let parts = spec_partitions(spec, partitions);
    let files = spec.clients as u64 * spec.commits_per_client as u64 * spec.files_per_commit as u64;
    run_controller(&parts, 0, spec.clients, files)
        .expect("spec-derived partitions tile the population by construction")
}

/// Replays a capture split into `partitions` contiguous slices. The merged
/// run is bit-identical to an unsliced [`crate::capture::replay`] of the
/// same capture (and, for a spec-derived capture, to the live run).
pub fn replay_partitioned(
    capture: &FleetCapture,
    partitions: usize,
) -> Result<PartitionedRun, String> {
    let parts = capture_partitions(capture, partitions)?;
    let files = capture.clients as u64
        * capture.commits_per_client as u64
        * capture.files_per_commit as u64;
    run_controller(&parts, capture.client_base, capture.clients, files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{capture_of_spec, replay_concurrent, ReplayMix};
    use crate::scale::run_scale_concurrent;

    fn small_spec() -> ScaleSpec {
        ScaleSpec::new(60).with_seed(0xFACE)
    }

    #[test]
    fn client_sets_index_both_ways() {
        let range = ClientSet::Range { start: 10, end: 14 };
        assert_eq!(range.len(), 4);
        assert_eq!(range.iter().collect::<Vec<_>>(), vec![10, 11, 12, 13]);
        let stripe = ClientSet::Stripe { offset: 1, step: 3, total: 8 };
        assert_eq!(stripe.len(), 3);
        assert_eq!(stripe.iter().collect::<Vec<_>>(), vec![1, 4, 7]);
        for set in [range, stripe] {
            for (local, id) in set.iter().enumerate() {
                assert!(set.contains(id));
                assert_eq!(set.local_index(id), Some(local));
                assert_eq!(set.global_id(local), id);
            }
            assert_eq!(set.local_index(9), None);
        }
        assert!(ClientSet::Stripe { offset: 5, step: 2, total: 5 }.is_empty());
    }

    #[test]
    fn partition_ranges_tile_the_population() {
        assert_eq!(partition_ranges(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(partition_ranges(4, 4), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(partition_ranges(5, 1), vec![(0, 5)]);
    }

    #[test]
    fn striped_partitions_recombine_bit_identically_to_the_unsliced_run() {
        let spec = small_spec();
        let whole = run_scale_concurrent(&spec);
        for partitions in [1usize, 2, 7] {
            let split = run_partitioned(&spec, partitions);
            assert_eq!(split.run.commits, whole.commits);
            assert_eq!(split.run.files, whole.files);
            assert_eq!(split.run.logical_bytes, whole.logical_bytes);
            assert_eq!(split.run.intervals, whole.intervals, "k={partitions}");
            assert_eq!(split.run.aggregate(), whole.aggregate());
            assert_eq!(split.run.load_curve(12), whole.load_curve(12));
            assert_eq!(
                split.run.dedup_ratio().to_bits(),
                whole.dedup_ratio().to_bits(),
                "k={partitions}"
            );
            assert_eq!(split.parts.len(), partitions);
            assert_eq!(split.parts.iter().map(|p| p.commits).sum::<u64>(), whole.commits);
        }
    }

    #[test]
    fn sliced_capture_replays_recombine_bit_identically() {
        let spec = small_spec();
        let capture = capture_of_spec(&spec);
        let whole = replay_concurrent(&capture, &ReplayMix::Original).unwrap();
        let split = replay_partitioned(&capture, 4).unwrap();
        assert_eq!(split.run.intervals, whole.intervals);
        assert_eq!(split.run.aggregate(), whole.aggregate());
        assert_eq!(split.run.load_curve(12), whole.load_curve(12));
        // The merged histogram is the elementwise sum of the partitions'.
        let mut merged_parts = LatencyHistogram::new();
        for part in &split.parts {
            merged_parts.merge(&part.transfer_histogram());
        }
        let whole_hist = whole.transfer_histogram();
        assert_eq!(merged_parts.summary(), whole_hist.summary());
        // And the live run matches too (capture replay is bit-faithful).
        let live = run_scale_concurrent(&spec);
        assert_eq!(split.run.intervals, live.intervals);
    }

    #[test]
    fn merge_is_order_independent() {
        let spec = small_spec();
        let parts = spec_partitions(&spec, 3);
        let store = ObjectStore::with_policy(GcPolicy::MarkSweep);
        let started = std::time::Instant::now();
        let mut finished: Vec<PartitionRun> =
            parts.iter().map(|p| run_partition(p, &store, 2).unwrap()).collect();
        let files = (spec.clients * spec.commits_per_client * spec.files_per_commit) as u64;
        let (forward, waves_fwd) = merge_partitions(
            0,
            spec.clients,
            files,
            &finished,
            ObjectStore::with_policy(GcPolicy::MarkSweep),
            started,
        )
        .unwrap();
        finished.rotate_left(1);
        finished.reverse();
        let (shuffled, waves_shuf) =
            merge_partitions(0, spec.clients, files, &finished, store, started).unwrap();
        assert_eq!(forward.intervals, shuffled.intervals);
        assert_eq!(forward.commits, shuffled.commits);
        assert_eq!(waves_fwd, waves_shuf);
    }

    #[test]
    fn merge_rejects_overlaps_and_gaps() {
        let spec = small_spec();
        let parts = spec_partitions(&spec, 2);
        let store = ObjectStore::with_policy(GcPolicy::MarkSweep);
        let started = std::time::Instant::now();
        let finished: Vec<PartitionRun> =
            parts.iter().map(|p| run_partition(p, &store, 1).unwrap()).collect();
        let files = (spec.clients * spec.commits_per_client * spec.files_per_commit) as u64;
        // A duplicated partition overlaps itself.
        let doubled = vec![finished[0].clone(), finished[0].clone()];
        let err = merge_partitions(
            0,
            spec.clients,
            files,
            &doubled,
            ObjectStore::with_policy(GcPolicy::MarkSweep),
            started,
        )
        .unwrap_err();
        assert!(err.contains("more than one partition"), "got: {err}");
        // A missing partition leaves a gap.
        let err = merge_partitions(
            0,
            spec.clients,
            files,
            &finished[..1],
            ObjectStore::with_policy(GcPolicy::MarkSweep),
            started,
        )
        .unwrap_err();
        assert!(err.contains("no partition owns"), "got: {err}");
    }

    #[test]
    fn capture_partitions_reject_degenerate_counts() {
        let capture = capture_of_spec(&ScaleSpec::new(3).with_seed(1));
        assert!(capture_partitions(&capture, 0).is_err());
        assert!(capture_partitions(&capture, 4).is_err());
        assert_eq!(capture_partitions(&capture, 3).unwrap().len(), 3);
    }
}
