//! Upload planning: how many bytes a client actually has to send.
//!
//! Given a file's new content and the client's knowledge of the server state,
//! the planner applies the service's capabilities in the order a real client
//! does — chunking, client-side deduplication, delta encoding against the
//! previous revision, compression, convergent encryption — and returns the
//! per-chunk byte counts that must travel. The §4 capability tests and the
//! Fig. 4 / Fig. 5 byte-volume plots are direct observations of this logic
//! through the network trace.

use crate::profile::ServiceProfile;
use cloudsim_storage::{
    ContentHash, ConvergentCipher, DedupIndex, FileArtifacts, FileJob, FileManifest, ObjectStore,
    PipelineSpec, RestoreError, RestorePipeline, RestoreRequest, RestoredFile, StoredChunk,
    UploadPipeline,
};
use std::collections::HashMap;
use std::sync::Arc;

/// The plan for one chunk of one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPlan {
    /// Payload bytes that must be uploaded for this chunk (0 when the chunk is
    /// already on the server).
    pub upload_bytes: u64,
    /// Plaintext length of the chunk.
    pub plain_bytes: u64,
    /// True when client-side dedup avoided the upload entirely.
    pub deduplicated: bool,
    /// True when the chunk is transmitted as a delta against its previous
    /// revision rather than in full.
    pub delta_encoded: bool,
}

/// The plan for one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilePlan {
    /// Path of the file.
    pub path: String,
    /// Plaintext size of the file.
    pub logical_bytes: u64,
    /// Per-chunk upload plans, in file order.
    pub chunks: Vec<ChunkPlan>,
    /// Metadata bytes exchanged with the control plane for this file
    /// (manifest, dedup queries, delta signatures).
    pub metadata_bytes: u64,
}

impl FilePlan {
    /// Total payload bytes that travel to the storage servers for this file.
    pub fn upload_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.upload_bytes).sum()
    }

    /// True when every chunk was deduplicated (nothing travels to storage).
    pub fn fully_deduplicated(&self) -> bool {
        !self.chunks.is_empty() && self.chunks.iter().all(|c| c.deduplicated)
    }
}

/// The stateful planner: one per (service, user account) pair.
#[derive(Debug)]
pub struct UploadPlanner {
    profile: ServiceProfile,
    store: ObjectStore,
    dedup: DedupIndex,
    cipher: ConvergentCipher,
    /// Last revision of each path as the server knows it (basis for delta).
    previous: HashMap<String, Vec<u8>>,
    /// Content pulled down by restores, keyed `owner/path`. Feeds the local
    /// chunk view (pulled chunks are never re-downloaded) and serves as the
    /// delta base when a path is pulled again after the owner modified it.
    restored: HashMap<String, Vec<u8>>,
    /// The client's local chunk view: every chunk of every file it
    /// currently holds (own uploads + pulled content), with a count of the
    /// holding files. Maintained incrementally as files are committed,
    /// deleted, pulled and re-pulled — the restore pipeline's dedup check
    /// reads it directly instead of re-chunking the whole local state on
    /// every pull.
    local_chunks: HashMap<ContentHash, (Arc<[u8]>, usize)>,
    /// Chunk hashes per locally held file (`own:` / `pull:` key prefixes),
    /// so superseding or deleting a file releases exactly its references.
    local_files: HashMap<String, Vec<ContentHash>>,
    user: String,
    /// Executes the pure per-chunk work (hash, compress, delta estimate).
    pipeline: UploadPipeline,
    /// Batches planned so far. The temporal fleet scheduler's invariant —
    /// idle rounds never touch the planner — is checked against this.
    batches_planned: usize,
}

impl UploadPlanner {
    /// Creates a planner for a fresh user account of the given service,
    /// running the upload pipeline in parallel (byte counts are identical to
    /// sequential execution; see [`UploadPlanner::with_pipeline`]).
    pub fn new(profile: ServiceProfile) -> UploadPlanner {
        UploadPlanner::with_pipeline(profile, UploadPipeline::parallel())
    }

    /// Creates a planner with an explicit pipeline execution mode.
    pub fn with_pipeline(profile: ServiceProfile, pipeline: UploadPipeline) -> UploadPlanner {
        UploadPlanner::for_user(profile, pipeline, ObjectStore::new(), "benchmark-user")
    }

    /// Creates a planner for a named user account committing into a shared
    /// (sharded) object store. This is the constructor the fleet harness
    /// uses: every client keeps its own client-side dedup index and delta
    /// state, while the server-side store is shared across the whole fleet
    /// so inter-user deduplication is exercised.
    pub fn for_user(
        profile: ServiceProfile,
        pipeline: UploadPipeline,
        store: ObjectStore,
        user: &str,
    ) -> UploadPlanner {
        UploadPlanner {
            profile,
            store,
            dedup: DedupIndex::new(),
            cipher: ConvergentCipher::new(),
            previous: HashMap::new(),
            restored: HashMap::new(),
            local_chunks: HashMap::new(),
            local_files: HashMap::new(),
            user: user.to_string(),
            pipeline,
            batches_planned: 0,
        }
    }

    /// The user account this planner commits as.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// The profile this planner applies.
    pub fn profile(&self) -> &ServiceProfile {
        &self.profile
    }

    /// The pipeline executing this planner's per-chunk work.
    pub fn pipeline(&self) -> &UploadPipeline {
        &self.pipeline
    }

    /// The server-side object store backing the account.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// Dedup statistics (queries answered from the index vs. uploads).
    pub fn dedup_stats(&self) -> (u64, u64) {
        (self.dedup.hits(), self.dedup.misses())
    }

    /// Number of batches planned since the account was created. One sync
    /// activation plans exactly one batch; idle rounds plan none — the
    /// fleet's schedule accounting cross-checks against this counter.
    pub fn batches_planned(&self) -> usize {
        self.batches_planned
    }

    /// Plans (and commits) the upload of one file revision. Equivalent to a
    /// one-file [`UploadPlanner::plan_batch`].
    pub fn plan_file(&mut self, path: &str, content: &[u8]) -> FilePlan {
        self.plan_batch(&[(path, content)]).pop().expect("plan_batch returns one plan per file")
    }

    /// Plans (and commits) a batch of file revisions.
    ///
    /// The pure per-chunk work — chunking, SHA-256, candidate delta scripts,
    /// LZSS coding — runs through the planner's [`UploadPipeline`] (fanned
    /// out across chunks and files when the pipeline is parallel). The
    /// stateful decisions — dedup index queries, server-side commits — are
    /// then applied sequentially in file order, so the resulting
    /// [`FilePlan`]s are bit-identical regardless of the pipeline's
    /// execution mode, and identical to calling
    /// [`UploadPlanner::plan_file`] once per file.
    pub fn plan_batch(&mut self, files: &[(&str, &[u8])]) -> Vec<FilePlan> {
        self.batches_planned += 1;
        let spec = PipelineSpec {
            chunking: self.profile.chunking,
            compression: self.profile.compression,
            delta_encoding: self.profile.delta_encoding,
        };

        // The delta basis of each file: the server's previous revision of
        // its path — or, when the same path appears twice in one batch, the
        // most recent earlier occurrence (it will have been committed by the
        // time the later file is processed).
        let mut latest_in_batch: HashMap<&str, usize> = HashMap::new();
        let jobs: Vec<FileJob<'_>> = files
            .iter()
            .enumerate()
            .map(|(i, (path, content))| {
                let previous = match latest_in_batch.get(path) {
                    Some(&j) => Some(files[j].1),
                    None => self.previous.get(*path).map(Vec::as_slice),
                };
                latest_in_batch.insert(path, i);
                FileJob { content, previous }
            })
            .collect();

        // Known-chunk prefilter: when the service deduplicates client-side,
        // chunks already in the index at batch start are guaranteed dedup
        // hits (entries are never removed, §4.3), so the pipeline skips
        // their upload estimates. The merge step below re-checks against the
        // live index as state evolves within the batch.
        let pipeline = self.pipeline;
        let artifacts = {
            let dedup = &self.dedup;
            if self.profile.dedup {
                pipeline.process_filtered(&spec, &jobs, &|hash| dedup.contains(hash))
            } else {
                pipeline.process(&spec, &jobs)
            }
        };

        files
            .iter()
            .zip(artifacts)
            .map(|((path, content), file_artifacts)| {
                self.commit_file(path, content, file_artifacts)
            })
            .collect()
    }

    /// Sequential merge step: consumes one file's pipeline artifacts, makes
    /// the stateful upload decisions and commits the results server-side.
    fn commit_file(&mut self, path: &str, content: &[u8], artifacts: FileArtifacts) -> FilePlan {
        let mut plans = Vec::with_capacity(artifacts.chunks.len());
        let mut metadata_bytes = 300u64; // manifest / commit envelope

        for art in &artifacts.chunks {
            let chunk = &art.chunk;
            // Dedup works on the plaintext hash: convergent encryption keeps
            // identical plaintexts identical on the wire (§4.3, Wuala).
            let already_stored = if self.profile.dedup {
                metadata_bytes += 40; // hash query per chunk
                self.dedup.check_and_record(&chunk.hash)
            } else {
                // Services without client-side dedup upload unconditionally,
                // even when the server already holds identical content.
                false
            };

            let plan = if already_stored {
                ChunkPlan {
                    upload_bytes: 0,
                    plain_bytes: chunk.len,
                    deduplicated: true,
                    delta_encoded: false,
                }
            } else {
                // Delta encoding: the pipeline estimated the script against
                // the same-index chunk of the previous revision of the *same
                // path* (how Dropbox's block-level sync behaves; shifted
                // content beyond a chunk boundary is re-sent, the Fig. 4
                // right-hand observation). The client only uses the delta
                // when it actually saves traffic; otherwise it falls back to
                // a full (compressed) upload.
                match art.delta {
                    Some(est) if est.wire_bytes < chunk.len => {
                        // Delta literals of the benchmark's random content do
                        // not compress, so the raw delta size is what travels
                        // (matching Fig. 4: uploaded volume ≈ modified data).
                        metadata_bytes += est.signature_bytes.min(4096);
                        ChunkPlan {
                            upload_bytes: est.wire_bytes,
                            plain_bytes: chunk.len,
                            deduplicated: false,
                            delta_encoded: true,
                        }
                    }
                    _ => {
                        if self.profile.client_side_encryption {
                            // Convergent encryption is size-preserving;
                            // exercise the cipher so the cost is real, then
                            // keep the compressed length.
                            let data = &content[chunk.offset as usize..chunk.end() as usize];
                            let _ct = self.cipher.encrypt(&data[..data.len().min(4096)]);
                        }
                        ChunkPlan {
                            upload_bytes: art.full_upload_bytes,
                            plain_bytes: chunk.len,
                            deduplicated: false,
                            delta_encoded: false,
                        }
                    }
                }
            };

            // Commit the chunk server-side (the stored size is what we upload,
            // or the existing copy for dedup hits). The plaintext payload
            // rides along so the restore pipeline can serve the bytes back.
            if !already_stored {
                self.store.put_chunk_with_payload(
                    &self.user,
                    StoredChunk {
                        hash: chunk.hash,
                        stored_len: plan.upload_bytes.max(1),
                        plain_len: chunk.len,
                    },
                    &content[chunk.offset as usize..chunk.end() as usize],
                );
            }
            // Reference tracking happens for every service; the difference is
            // only whether the client *queries* the index before uploading.
            self.dedup.add_reference(chunk.hash);
            plans.push(plan);
        }

        if !artifacts.chunks.is_empty() {
            let manifest = FileManifest::from_chunks(path, &artifacts.chunk_list(), 0);
            self.store.commit_manifest(&self.user, manifest);
        }
        // The committed revision enters the local chunk view (hashes come
        // from the pipeline artifacts — nothing is re-hashed here); the
        // superseded revision's chunks leave it.
        let spans: Vec<(ContentHash, std::ops::Range<usize>)> = artifacts
            .chunks
            .iter()
            .map(|a| (a.chunk.hash, a.chunk.offset as usize..a.chunk.end() as usize))
            .collect();
        self.index_local_file(format!("own:{path}"), &spans, content);
        self.previous.insert(path.to_string(), content.to_vec());

        FilePlan {
            path: path.to_string(),
            logical_bytes: content.len() as u64,
            chunks: plans,
            metadata_bytes,
        }
    }

    /// Plans the deletion of a file: drops the manifest and the live
    /// references, but — like Dropbox and Wuala — keeps the chunk index so a
    /// later restore deduplicates (§4.3).
    pub fn plan_delete(&mut self, path: &str) {
        if let Some(old) = self.previous.remove(path) {
            for chunk in self.profile.chunking.chunk(&old) {
                self.dedup.remove_reference(&chunk.hash);
            }
            self.unindex_local_file(&format!("own:{path}"));
        }
        self.store.delete_file(&self.user, path);
    }

    /// Plans the restore of every live file of `owner` — the download
    /// mirror of [`UploadPlanner::plan_batch`]. Convenience wrapper over
    /// [`UploadPlanner::plan_restore_paths`] for the whole namespace.
    pub fn plan_restore_user(&mut self, owner: &str) -> Vec<Result<RestoredFile, RestoreError>> {
        let paths = self.store.list_files(owner);
        self.plan_restore_paths(owner, &paths)
    }

    /// Plans (and locally applies) the restore of `owner`'s files at the
    /// given paths. The restore pipeline runs in the same execution mode as
    /// the planner's upload pipeline; results are byte-identical either way.
    ///
    /// Capabilities mirror the upload direction:
    /// * chunks already in the client's local view (its own uploads or
    ///   earlier pulls) are not re-downloaded,
    /// * when the service delta-encodes and the client holds a base revision
    ///   of the path (its own previous upload for self-restores, the last
    ///   pulled revision for cross-user pulls), differing chunks travel as
    ///   delta scripts,
    /// * full downloads travel in the service's compression encoding.
    ///
    /// Successes are recorded in the planner's local view, so a repeat pull
    /// of unchanged content costs nothing on the wire. Failures (e.g. a
    /// manifest a churning owner hard-deleted) are typed values, never
    /// panics, and leave no local state behind.
    pub fn plan_restore_paths(
        &mut self,
        owner: &str,
        paths: &[String],
    ) -> Vec<Result<RestoredFile, RestoreError>> {
        let spec = PipelineSpec {
            chunking: self.profile.chunking,
            compression: self.profile.compression,
            delta_encoding: self.profile.delta_encoding,
        };
        let local = &self.local_chunks;
        let own = owner == self.user;
        let requests: Vec<RestoreRequest<'_>> = paths
            .iter()
            .map(|path| RestoreRequest {
                owner,
                path,
                base: if own {
                    self.previous.get(path).map(Vec::as_slice)
                } else {
                    self.restored.get(&format!("{owner}/{path}")).map(Vec::as_slice)
                },
            })
            .collect();
        let store = self.store.clone();
        let results = RestorePipeline::with_mode(self.pipeline.mode()).restore_batch(
            &store,
            &spec,
            &requests,
            &|hash| local.get(hash).map(|(bytes, _)| bytes.clone()),
        );
        for restored in results.iter().flatten() {
            let mut offset = 0usize;
            let spans: Vec<(ContentHash, std::ops::Range<usize>)> = restored
                .chunks
                .iter()
                .map(|c| {
                    let range = offset..offset + c.plain_len as usize;
                    offset = range.end;
                    (c.hash, range)
                })
                .collect();
            self.index_local_file(
                format!("pull:{owner}/{}", restored.path),
                &spans,
                &restored.content,
            );
            self.restored.insert(format!("{owner}/{}", restored.path), restored.content.clone());
        }
        results
    }

    /// Releases one locally held file's chunk references; chunks no other
    /// held file shares leave the local view.
    fn unindex_local_file(&mut self, key: &str) {
        let Some(hashes) = self.local_files.remove(key) else { return };
        for hash in hashes {
            if let Some((_, refs)) = self.local_chunks.get_mut(&hash) {
                *refs -= 1;
                if *refs == 0 {
                    self.local_chunks.remove(&hash);
                }
            }
        }
    }

    /// Registers (or replaces) one locally held file in the chunk view:
    /// `spans` are its chunk hashes with their byte ranges in `content`.
    fn index_local_file(
        &mut self,
        key: String,
        spans: &[(ContentHash, std::ops::Range<usize>)],
        content: &[u8],
    ) {
        self.unindex_local_file(&key);
        let mut hashes = Vec::with_capacity(spans.len());
        for (hash, range) in spans {
            hashes.push(*hash);
            let entry = self
                .local_chunks
                .entry(*hash)
                .or_insert_with(|| (Arc::from(&content[range.clone()]), 0));
            entry.1 += 1;
        }
        self.local_files.insert(key, hashes);
    }

    /// Hard-deletes the whole account server-side: every live manifest is
    /// deleted (releasing its chunk references for the store's GC), retained
    /// revisions are purged, and the client-side dedup/delta state is reset.
    /// Returns the number of live manifests deleted. This is the departure
    /// path of a churning fleet client — the opposite of the §4.3
    /// retention-friendly [`UploadPlanner::plan_delete`].
    pub fn purge_account(&mut self) -> usize {
        let deleted = self.store.list_files(&self.user).len();
        // One namespace purge releases every live manifest plus whatever
        // retention kept (superseded or soft-deleted revisions) — identical
        // accounting to deleting the manifests one by one, without taking
        // the shard locks once per file.
        self.store.purge_user(&self.user);
        self.previous.clear();
        self.restored.clear();
        self.local_chunks.clear();
        self.local_files.clear();
        self.dedup = DedupIndex::new();
        deleted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ServiceProfile;
    use cloudsim_workload::{generate, FileKind, Mutation};

    #[test]
    fn plain_upload_moves_roughly_the_file_size() {
        for profile in [ServiceProfile::skydrive(), ServiceProfile::cloud_drive()] {
            let mut planner = UploadPlanner::new(profile.clone());
            let content = generate(FileKind::RandomBinary, 500_000, 1);
            let plan = planner.plan_file("a.bin", &content);
            assert_eq!(plan.logical_bytes, 500_000);
            let up = plan.upload_bytes();
            assert!((500_000..=502_000).contains(&up), "{}: uploaded {up}", profile.name());
            assert!(!plan.fully_deduplicated());
        }
    }

    #[test]
    fn dropbox_compresses_text_but_not_random_data() {
        let mut planner = UploadPlanner::new(ServiceProfile::dropbox());
        let text = generate(FileKind::Text, 1_000_000, 2);
        let plan = planner.plan_file("notes.txt", &text);
        assert!(plan.upload_bytes() < 550_000, "text should compress: {}", plan.upload_bytes());

        let random = generate(FileKind::RandomBinary, 1_000_000, 3);
        let plan = planner.plan_file("noise.bin", &random);
        assert!(plan.upload_bytes() >= 1_000_000);
    }

    #[test]
    fn google_drive_skips_fake_jpegs_dropbox_does_not() {
        let fake = generate(FileKind::FakeJpeg, 800_000, 4);
        let mut gdrive = UploadPlanner::new(ServiceProfile::google_drive());
        let gplan = gdrive.plan_file("photo.jpg", &fake);
        assert_eq!(gplan.upload_bytes(), 800_000, "smart policy must skip JPEG headers");

        let mut dropbox = UploadPlanner::new(ServiceProfile::dropbox());
        let dplan = dropbox.plan_file("photo.jpg", &fake);
        assert!(dplan.upload_bytes() < 500_000, "Dropbox compresses even fake JPEGs");
    }

    #[test]
    fn dedup_detects_copies_and_survives_delete_restore() {
        let mut planner = UploadPlanner::new(ServiceProfile::wuala());
        let content = generate(FileKind::RandomBinary, 300_000, 5);
        let first = planner.plan_file("folder1/original.bin", &content);
        assert!(!first.fully_deduplicated());
        assert!(first.upload_bytes() >= 300_000);

        // Same payload, different name, second folder.
        let copy = planner.plan_file("folder2/replica.bin", &content);
        assert!(copy.fully_deduplicated());
        assert_eq!(copy.upload_bytes(), 0);

        // Copy to a third folder.
        let copy2 = planner.plan_file("folder3/copy.bin", &content);
        assert_eq!(copy2.upload_bytes(), 0);

        // Delete everything, then restore the original: still deduplicated.
        planner.plan_delete("folder1/original.bin");
        planner.plan_delete("folder2/replica.bin");
        planner.plan_delete("folder3/copy.bin");
        let restored = planner.plan_file("folder1/original.bin", &content);
        assert!(restored.fully_deduplicated(), "dedup must survive delete/restore");

        let (hits, misses) = planner.dedup_stats();
        assert!(hits >= 3);
        assert_eq!(misses, 1);
    }

    #[test]
    fn services_without_dedup_reupload_copies() {
        let mut planner = UploadPlanner::new(ServiceProfile::google_drive());
        let content = generate(FileKind::RandomBinary, 200_000, 6);
        planner.plan_file("a.bin", &content);
        let copy = planner.plan_file("b.bin", &content);
        assert!(copy.upload_bytes() >= 200_000, "no dedup: full re-upload expected");
        assert!(!copy.fully_deduplicated());
    }

    #[test]
    fn delta_encoding_tracks_appended_bytes_for_dropbox() {
        let mut planner = UploadPlanner::new(ServiceProfile::dropbox());
        let original = generate(FileKind::RandomBinary, 1_000_000, 7);
        planner.plan_file("doc.bin", &original);
        let appended = Mutation::Append { len: 100_000 }.apply(&original, 8);
        let plan = planner.plan_file("doc.bin", &appended);
        let up = plan.upload_bytes();
        assert!(
            (90_000..200_000).contains(&up),
            "delta upload should track the 100 kB append, got {up}"
        );
        assert!(plan.chunks.iter().any(|c| c.delta_encoded));
    }

    #[test]
    fn services_without_delta_reupload_modified_files() {
        let mut planner = UploadPlanner::new(ServiceProfile::skydrive());
        let original = generate(FileKind::RandomBinary, 1_000_000, 9);
        planner.plan_file("doc.bin", &original);
        let appended = Mutation::Append { len: 100_000 }.apply(&original, 10);
        let plan = planner.plan_file("doc.bin", &appended);
        assert!(plan.upload_bytes() >= 1_000_000, "no delta: full re-upload expected");
    }

    #[test]
    fn wuala_dedup_spares_unmodified_chunks_of_large_files() {
        // Fig. 4 (right): a 10 MB Wuala file with an insertion only re-uploads
        // the chunks the insertion touched.
        let mut planner = UploadPlanner::new(ServiceProfile::wuala());
        let original = generate(FileKind::RandomBinary, 10_000_000, 11);
        planner.plan_file("big.bin", &original);
        let modified = Mutation::InsertRandom { len: 100_000 }.apply(&original, 12);
        let plan = planner.plan_file("big.bin", &modified);
        let up = plan.upload_bytes();
        assert!(up < 8_000_000, "variable chunking + dedup should spare most chunks, got {up}");
        assert!(up >= 100_000);
        assert!(plan.chunks.iter().any(|c| c.deduplicated));
    }

    #[test]
    fn chunk_counts_follow_the_chunking_strategy() {
        let content = generate(FileKind::RandomBinary, 9_000_000, 13);
        let mut dropbox = UploadPlanner::new(ServiceProfile::dropbox());
        assert_eq!(dropbox.plan_file("x.bin", &content).chunks.len(), 3); // 4+4+1 MB
        let mut gdrive = UploadPlanner::new(ServiceProfile::google_drive());
        assert_eq!(gdrive.plan_file("x.bin", &content).chunks.len(), 2); // 8+1 MB
        let mut clouddrive = UploadPlanner::new(ServiceProfile::cloud_drive());
        assert_eq!(clouddrive.plan_file("x.bin", &content).chunks.len(), 1); // single object
    }

    /// The acceptance property of the parallel pipeline: for any profile and
    /// batch, the parallel planner's plans are byte-identical to the
    /// sequential planner's, including stateful dedup/delta interactions.
    #[test]
    fn parallel_and_sequential_planners_produce_identical_plans() {
        use cloudsim_storage::UploadPipeline;

        for profile in ServiceProfile::all() {
            let mut sequential =
                UploadPlanner::with_pipeline(profile.clone(), UploadPipeline::sequential());
            let mut parallel =
                UploadPlanner::with_pipeline(profile.clone(), UploadPipeline::with_threads(4));

            // A batch exercising dedup (duplicate content), delta (same path
            // re-uploaded within one batch), compression (text) and chunking
            // (a multi-chunk file).
            let text = generate(FileKind::Text, 400_000, 1);
            let big = generate(FileKind::RandomBinary, 9_000_000, 2);
            let copy = text.clone();
            let appended = Mutation::Append { len: 60_000 }.apply(&text, 3);
            let batch: Vec<(&str, &[u8])> = vec![
                ("a/notes.txt", &text),
                ("b/big.bin", &big),
                ("c/copy.txt", &copy),
                ("a/notes.txt", &appended),
            ];

            let seq_plans = sequential.plan_batch(&batch);
            let par_plans = parallel.plan_batch(&batch);
            assert_eq!(seq_plans, par_plans, "{}", profile.name());
            assert_eq!(sequential.dedup_stats(), parallel.dedup_stats(), "{}", profile.name());

            // A second batch re-uploading modified content must still agree
            // (delta now runs against planner state from the first batch).
            let mutated = Mutation::InsertRandom { len: 30_000 }.apply(&big, 4);
            let batch2: Vec<(&str, &[u8])> = vec![("b/big.bin", &mutated)];
            assert_eq!(
                sequential.plan_batch(&batch2),
                parallel.plan_batch(&batch2),
                "{} second batch",
                profile.name()
            );
        }
    }

    /// `plan_batch` must equal per-file `plan_file` calls — the pipeline is
    /// an execution strategy, not a semantic change.
    #[test]
    fn plan_batch_equals_sequential_plan_file_calls() {
        for profile in [ServiceProfile::dropbox(), ServiceProfile::wuala()] {
            let mut batched = UploadPlanner::new(profile.clone());
            let mut one_by_one = UploadPlanner::new(profile.clone());
            let files: Vec<Vec<u8>> = (0..6)
                .map(|i| generate(FileKind::RandomBinary, 150_000 + i * 10_000, 50 + i as u64))
                .collect();
            let mut batch: Vec<(&str, &[u8])> = Vec::new();
            let paths: Vec<String> = (0..6).map(|i| format!("f/{i}.bin")).collect();
            for (path, content) in paths.iter().zip(&files) {
                batch.push((path, content));
            }
            // Duplicate content at a new path to exercise dedup ordering.
            batch.push(("f/dup.bin", &files[0]));

            let batch_plans = batched.plan_batch(&batch);
            let file_plans: Vec<FilePlan> =
                batch.iter().map(|(p, c)| one_by_one.plan_file(p, c)).collect();
            assert_eq!(batch_plans, file_plans, "{}", profile.name());
        }
    }

    #[test]
    fn cross_user_restores_round_trip_and_dedup_shared_content() {
        // Two Dropbox users share a store; bob uploads one shared file (the
        // same bytes alice also has) and one private file. Alice pulls bob's
        // namespace: the shared file costs nothing on the wire, the private
        // one downloads, and both come back byte-identical.
        let store = ObjectStore::new();
        let pipeline = UploadPipeline::sequential();
        let mut alice =
            UploadPlanner::for_user(ServiceProfile::dropbox(), pipeline, store.clone(), "alice");
        let mut bob =
            UploadPlanner::for_user(ServiceProfile::dropbox(), pipeline, store.clone(), "bob");

        let shared = generate(FileKind::RandomBinary, 400_000, 21);
        let private = generate(FileKind::RandomBinary, 300_000, 22);
        alice.plan_file("pool/shared.bin", &shared);
        bob.plan_file("pool/shared.bin", &shared);
        bob.plan_file("own/private.bin", &private);

        let results = alice.plan_restore_user("bob");
        assert_eq!(results.len(), 2);
        let by_path = |p: &str| {
            results.iter().flatten().find(|r| r.path == p).unwrap_or_else(|| panic!("{p} restored"))
        };
        let pulled_private = by_path("own/private.bin");
        assert_eq!(pulled_private.content, private);
        assert!(pulled_private.download_bytes() >= 300_000, "random data travels in full");
        let pulled_shared = by_path("pool/shared.bin");
        assert_eq!(pulled_shared.content, shared);
        assert_eq!(pulled_shared.download_bytes(), 0, "alice already holds these chunks");
        assert_eq!(pulled_shared.dedup_skipped_bytes(), 400_000);

        // A repeat pull of unchanged content is free: the first pull entered
        // alice's local view.
        let again = alice.plan_restore_user("bob");
        assert!(again.iter().flatten().all(|r| r.download_bytes() == 0));

        // Bob appends; the re-pull travels roughly the appended bytes as a
        // delta against the previously pulled revision.
        let appended = Mutation::Append { len: 50_000 }.apply(&private, 23);
        bob.plan_file("own/private.bin", &appended);
        let repull = alice.plan_restore_paths("bob", &["own/private.bin".to_string()]);
        let repull = repull[0].as_ref().unwrap();
        assert_eq!(repull.content, appended);
        let down = repull.download_bytes();
        assert!((1..200_000).contains(&down), "delta re-pull should be small, got {down}");
    }

    #[test]
    fn restore_of_a_purged_account_fails_cleanly() {
        let store = ObjectStore::new();
        let pipeline = UploadPipeline::sequential();
        let mut owner =
            UploadPlanner::for_user(ServiceProfile::wuala(), pipeline, store.clone(), "owner");
        let mut puller =
            UploadPlanner::for_user(ServiceProfile::wuala(), pipeline, store.clone(), "puller");
        owner.plan_file("f.bin", &generate(FileKind::RandomBinary, 100_000, 31));
        let paths = store.list_files("owner");
        owner.purge_account();

        let results = puller.plan_restore_paths("owner", &paths);
        assert_eq!(results.len(), 1);
        assert!(matches!(
            results[0].as_ref().unwrap_err(),
            cloudsim_storage::RestoreError::ManifestMissing { .. }
        ));
        // A purged namespace lists no files, so the whole-user restore is
        // empty rather than an error.
        assert!(puller.plan_restore_user("owner").is_empty());
        // Counters never went negative: the purge released every reference,
        // and a mark-sweep pass reclaims the physical bytes it left behind.
        assert_eq!(store.aggregate().referenced_bytes, 0);
        store.collect_garbage();
        assert_eq!(store.aggregate().physical_bytes, 0);
    }

    #[test]
    fn self_restore_after_soft_delete_downloads_nothing() {
        // §4.3: delete then restore — dedup keeps the wire silent in both
        // directions. The planner holds the old revision locally, so even
        // the restore pipeline's download step is skipped entirely.
        let mut planner = UploadPlanner::new(ServiceProfile::dropbox());
        let content = generate(FileKind::RandomBinary, 200_000, 41);
        planner.plan_file("docs/keep.bin", &content);
        let restored = planner.plan_restore_paths("benchmark-user", &["docs/keep.bin".into()]);
        let restored = restored[0].as_ref().unwrap();
        assert_eq!(restored.content, content);
        assert_eq!(restored.download_bytes(), 0);
    }

    #[test]
    fn metadata_bytes_are_accounted() {
        let mut planner = UploadPlanner::new(ServiceProfile::dropbox());
        let plan = planner.plan_file("a.bin", &generate(FileKind::RandomBinary, 50_000, 14));
        assert!(plan.metadata_bytes >= 300);
        assert!(planner.store().stats("benchmark-user").files == 1);
        assert_eq!(planner.profile().provider, cloudsim_geo::Provider::Dropbox);
    }
}
