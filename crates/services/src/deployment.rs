//! Deployment: instantiating a service's servers and network paths.
//!
//! Converts a [`ServiceProfile`] into a `cloudsim-net` topology: control
//! servers (one per login destination), a storage front end and a
//! notification endpoint, each reachable over the RTT/bandwidth the profile
//! prescribes. The addresses are taken from the provider's ground-truth
//! topology in `cloudsim-geo` so the architecture-discovery experiments and
//! the performance benchmarks see a consistent world.

use crate::profile::ServiceProfile;
use cloudsim_geo::{Provider, ProviderTopology, ServerRole};
use cloudsim_net::{AccessLink, HostId, HostRole, Network, PathSpec};

/// The instantiated servers of one service.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// The network topology (client + servers + paths).
    pub network: Network,
    /// Control servers contacted during login, in contact order.
    pub control_hosts: Vec<HostId>,
    /// The storage front end uploads go to.
    pub storage_host: HostId,
    /// The notification / keep-alive endpoint.
    pub notification_host: HostId,
}

impl Deployment {
    /// Builds the deployment for a profile, measured from the paper's campus
    /// testbed (the identity access link).
    pub fn new(profile: &ServiceProfile) -> Deployment {
        Deployment::with_link(profile, &AccessLink::campus())
    }

    /// Builds the deployment for a profile as seen from a client behind the
    /// given access link: every server path is composed with the link
    /// (bottleneck bandwidth, added RTT, combined loss). This is how a
    /// heterogeneous fleet gives each simulated user its own network world.
    pub fn with_link(profile: &ServiceProfile, link: &AccessLink) -> Deployment {
        let mut network = Network::new();
        let truth = ProviderTopology::ground_truth(profile.provider);

        let control_path =
            link.apply(PathSpec::symmetric(profile.control_rtt, profile.control_bandwidth));
        let storage_path =
            link.apply(PathSpec::symmetric(profile.storage_rtt, profile.storage_bandwidth));

        // Control servers: reuse ground-truth control/both nodes, padding with
        // synthetic siblings when the profile contacts more servers than the
        // topology lists (SkyDrive's 13 Microsoft Live hosts).
        let mut control_hosts = Vec::new();
        let control_nodes: Vec<_> = truth
            .nodes
            .iter()
            .filter(|n| matches!(n.role, ServerRole::Control | ServerRole::Both))
            .collect();
        for i in 0..profile.login_servers as usize {
            let (name, octets) = if let Some(node) = control_nodes.get(i) {
                (node.dns_name.clone(), node.addr.to_be_bytes())
            } else {
                let base = control_nodes
                    .first()
                    .map(|n| n.addr)
                    .unwrap_or(u32::from_be_bytes([198, 51, 100, 1]));
                let addr = base.wrapping_add(100 + i as u32);
                (
                    format!(
                        "login{}.{}.example",
                        i,
                        profile.name().to_lowercase().replace(' ', "")
                    ),
                    addr.to_be_bytes(),
                )
            };
            let host = network.add_host(&name, octets, 443, HostRole::Control);
            network.set_path(host, control_path);
            control_hosts.push(host);
        }

        // Storage front end: for Google Drive this is the closest edge node
        // (which is what makes its RTT 15 ms), otherwise the first storage
        // node of the ground truth.
        let storage_node = match profile.provider {
            Provider::GoogleDrive => truth
                .nodes
                .iter()
                .find(|n| n.role == ServerRole::Edge && n.country_hint() == Some("NL"))
                .or_else(|| truth.nodes.iter().find(|n| n.role == ServerRole::Edge))
                .or_else(|| truth.nodes.iter().find(|n| n.role == ServerRole::Storage)),
            _ => truth
                .nodes
                .iter()
                .find(|n| matches!(n.role, ServerRole::Storage | ServerRole::Both)),
        };
        let (storage_name, storage_octets) = storage_node
            .map(|n| (n.dns_name.clone(), n.addr.to_be_bytes()))
            .unwrap_or(("storage.example".to_string(), [203, 0, 113, 10]));
        let storage_host = network.add_host(&storage_name, storage_octets, 443, HostRole::Storage);
        network.set_path(storage_host, storage_path);

        // Notification endpoint: shares the control placement.
        let notification_host = network.add_host(
            &format!("notify.{}.example", profile.name().to_lowercase().replace(' ', "")),
            [198, 51, 100, 53],
            if profile.notification_plain_http { 80 } else { 443 },
            HostRole::Notification,
        );
        network.set_path(notification_host, control_path);

        Deployment { network, control_hosts, storage_host, notification_host }
    }

    /// The first (primary) control server.
    pub fn primary_control(&self) -> HostId {
        self.control_hosts[0]
    }
}

/// Small extension used when picking a Dutch edge node for Google Drive.
trait CountryHint {
    fn country_hint(&self) -> Option<&'static str>;
}

impl CountryHint for cloudsim_geo::ServerNode {
    fn country_hint(&self) -> Option<&'static str> {
        cloudsim_geo::WORLD_CITIES.iter().find(|c| c.name == self.city).map(|c| c.country)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ServiceProfile;
    use cloudsim_net::SimDuration;

    #[test]
    fn every_profile_deploys_consistently() {
        for profile in ServiceProfile::all() {
            let deployment = Deployment::new(&profile);
            assert_eq!(
                deployment.control_hosts.len(),
                profile.login_servers as usize,
                "{}",
                profile.name()
            );
            // Paths carry the profile's RTTs.
            let storage_path = deployment.network.path(deployment.storage_host);
            assert_eq!(storage_path.rtt, profile.storage_rtt, "{}", profile.name());
            let control_path = deployment.network.path(deployment.primary_control());
            assert_eq!(control_path.rtt, profile.control_rtt, "{}", profile.name());
            // All hosts resolve.
            assert!(deployment.network.host(deployment.storage_host).is_some());
            assert!(deployment.network.host(deployment.notification_host).is_some());
        }
    }

    #[test]
    fn skydrive_contacts_thirteen_login_servers() {
        let deployment = Deployment::new(&ServiceProfile::skydrive());
        assert_eq!(deployment.control_hosts.len(), 13);
        // Servers must be distinct endpoints.
        let addrs: std::collections::HashSet<u32> = deployment
            .control_hosts
            .iter()
            .map(|h| deployment.network.host(*h).unwrap().endpoint.addr)
            .collect();
        assert_eq!(addrs.len(), 13);
    }

    #[test]
    fn google_drive_storage_is_a_nearby_edge() {
        let deployment = Deployment::new(&ServiceProfile::google_drive());
        let path = deployment.network.path(deployment.storage_host);
        assert!(path.rtt <= SimDuration::from_millis(20));
        let host = deployment.network.host(deployment.storage_host).unwrap();
        assert!(host.dns_name.contains("google"));
    }

    #[test]
    fn access_links_reshape_every_path_of_the_deployment() {
        let profile = ServiceProfile::dropbox();
        let campus = Deployment::new(&profile);
        let adsl = Deployment::with_link(&profile, &AccessLink::adsl());
        let storage = adsl.network.path(adsl.storage_host);
        // Upstream is clamped to the 1 Mb/s ADSL uplink and the access
        // latency is added on top of the provider RTT.
        assert_eq!(storage.up_bandwidth, 1_000_000);
        assert_eq!(
            storage.rtt,
            campus.network.path(campus.storage_host).rtt + SimDuration::from_millis(30)
        );
        let control = adsl.network.path(adsl.primary_control());
        assert_eq!(control.up_bandwidth, 1_000_000);
        // The campus link is the identity: same paths as the plain deployment.
        let campus2 = Deployment::with_link(&profile, &AccessLink::campus());
        assert_eq!(
            campus2.network.path(campus2.storage_host),
            campus.network.path(campus.storage_host)
        );
    }

    #[test]
    fn dropbox_notification_uses_plain_http_port() {
        let deployment = Deployment::new(&ServiceProfile::dropbox());
        let host = deployment.network.host(deployment.notification_host).unwrap();
        assert_eq!(host.endpoint.port, 80);
        let skydrive = Deployment::new(&ServiceProfile::skydrive());
        let sky_notify = skydrive.network.host(skydrive.notification_host).unwrap();
        assert_eq!(sky_notify.endpoint.port, 443);
    }
}
