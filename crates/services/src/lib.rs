//! # cloudsim-services
//!
//! Behavioural models of the five personal cloud storage services benchmarked
//! in the IMC'13 paper, built as real client/server state machines on top of
//! the `cloudsim-net` simulator and the `cloudsim-storage` engine.
//!
//! Each service is described by a [`profile::ServiceProfile`] carrying the
//! behaviour the paper documents (chunk sizes, bundling, per-file TCP/SSL
//! connections, polling intervals, data-centre placement, client-side
//! encryption, …), a [`deployment::Deployment`] that instantiates its servers
//! and network paths, and a generic [`client::SyncClient`] that executes
//! logins, idle polling and batch synchronisation while every byte it moves is
//! captured in the experiment trace.
//!
//! [`fleet`] drives many such clients as one multi-tenant population, and
//! [`schedule`] gives that population its temporal shape: seeded think-time
//! distributions, idle rounds and intra-round arrival jitter derived up
//! front on a virtual clock, so even jittered concurrent runs replay
//! bit-identically. [`engine`] lowers such a schedule onto a time-ordered
//! event heap — `(timestamp, phase, client)` entries popped one at a time,
//! each touching only its client's state — which is what the fleet loop
//! actually executes; [`scale`] rides the same heap with compact per-client
//! state records (no [`client::SyncClient`] at all) to reach 100k–1M
//! clients, [`partition`] shards that population into disjoint client sets
//! driven by independent workers whose results merge back bit-identically,
//! and [`session`]/[`retry`] add resumable transfers and seeded backoff
//! under injected link faults. `docs/ARCHITECTURE.md` at the
//! repository root walks through the whole lifecycle.
//!
//! The crate deliberately separates *what a service does* (the profile) from
//! *how the sync engine executes it* (the client), so the ablation benchmarks
//! can flip individual capabilities — bundling on/off, compression policies,
//! connection reuse — and measure their isolated effect, which is exactly the
//! kind of guidance the paper's conclusions call for.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod client;
pub mod deployment;
pub mod engine;
pub mod fleet;
pub mod partition;
pub mod planner;
pub mod profile;
pub mod retry;
pub mod scale;
pub mod schedule;
pub mod session;

pub use capture::{
    capture_of_spec, merge_slices, parse_capture, render_capture, render_fleet_capture, replay,
    replay_concurrent, slice_capture, CaptureEvent, FleetCapture, ReplayMix, CAPTURE_FORMAT,
    CAPTURE_VERSION,
};
pub use client::{
    FaultedRestoreOutcome, FaultedSyncOutcome, RestoreOutcome, SyncClient, SyncOutcome,
};
pub use deployment::Deployment;
pub use engine::{EventHeap, EventWave, FleetEvent, Phase};
pub use fleet::{
    run_fleet, run_fleet_concurrent, run_fleet_sequential, ClientSlot, ClientSummary, FleetFaults,
    FleetRun, FleetSpec,
};
pub use partition::{
    capture_partitions, partition_ranges, replay_partitioned, run_partition, run_partitioned,
    spec_partitions, ClientSet, PartitionRun, PartitionSpec, PartitionWorkload, PartitionedRun,
};
pub use retry::{ExponentialBackoff, NoRetry, RetryConfig, RetryPolicy};
pub use scale::{run_scale, run_scale_concurrent, run_scale_sequential, ScaleRun, ScaleSpec};
pub use schedule::{ClientSchedule, FleetSchedule, RoundEvent, SyncActivation, ThinkTime};
pub use session::{FaultStats, RangedRestore, UploadSession};

// Re-export the fault-injection vocabulary so harnesses can describe outage
// schedules without depending on cloudsim-net directly.
pub use cloudsim_net::{FaultSchedule, FaultSpec, OutageWindow, TransferInterrupted};

// Re-export the per-client network, GC and restore vocabulary the fleet
// speaks.
pub use cloudsim_net::AccessLink;
pub use cloudsim_storage::{GcPolicy, GcStats, RestoreError, RestoredFile};
pub use planner::{FilePlan, UploadPlanner};
pub use profile::ServiceProfile;

// Re-export the provider enum: it identifies services across the workspace.
pub use cloudsim_geo::Provider;

// Re-export the pipeline handle so harnesses can pin an execution mode
// without depending on cloudsim-storage directly.
pub use cloudsim_storage::{PipelineMode, UploadPipeline};
