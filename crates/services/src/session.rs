//! Resumable transfer sessions: the bookkeeping half of fault recovery.
//!
//! When a seeded link outage kills a transfer (a typed
//! [`TransferInterrupted`] from the TCP layer), the session objects here
//! persist how far the transfer *durably* got, so the next attempt
//! re-drives only the uncommitted tail:
//!
//! * [`UploadSession`] tracks a planned batch of chunks and the last
//!   committed chunk offset — bytes the server acknowledged before a cut
//!   are never uploaded again;
//! * [`RangedRestore`] tracks one download's last verified byte and the
//!   resume boundaries, and validates the reassembled content end to end
//!   with SHA-256 once the last range lands.
//!
//! Both accumulate the same [`FaultStats`] — retries, wasted wire bytes,
//! salvaged bytes, virtual backoff time — which the fleet aggregates into
//! the `faults.*` gate metrics.

use cloudsim_net::TransferInterrupted;
use cloudsim_storage::hash::{sha256, Sha256};
use cloudsim_trace::SimDuration;
use serde::Serialize;

/// Fault-recovery accounting for one session (or one client, or one fleet —
/// stats merge additively).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct FaultStats {
    /// Transfer attempts a link outage cut mid-flight (immediate failures
    /// on an already-down link included).
    pub interruptions: u64,
    /// Retries the policy granted (each spent a virtual-clock backoff).
    pub retries: u64,
    /// Operations abandoned after the retry budget ran out.
    pub abandoned: u64,
    /// Wire bytes that bought no durable progress: in-flight bytes lost to
    /// a cut, plus partial progress thrown away by an abandonment.
    pub wasted_bytes: u64,
    /// Bytes an interruption had already committed (acked or verified) that
    /// resume kept off the wire — the payoff of sessions over restarts.
    pub salvaged_bytes: u64,
    /// Virtual-clock time spent waiting in retry backoffs.
    pub backoff_wait: SimDuration,
    /// Restored files whose reassembled content passed SHA-256 validation.
    pub checksums_verified: u64,
    /// Restored files whose reassembled content failed validation.
    pub checksum_failures: u64,
}

impl FaultStats {
    /// Adds `other` into `self` (stats are additive across sessions).
    pub fn merge(&mut self, other: &FaultStats) {
        self.interruptions += other.interruptions;
        self.retries += other.retries;
        self.abandoned += other.abandoned;
        self.wasted_bytes += other.wasted_bytes;
        self.salvaged_bytes += other.salvaged_bytes;
        self.backoff_wait += other.backoff_wait;
        self.checksums_verified += other.checksums_verified;
        self.checksum_failures += other.checksum_failures;
    }

    /// Fraction of interruption-touched bytes that resume salvaged instead
    /// of re-driving, in `[0, 1]`. 0.0 when no interruption ever happened —
    /// never NaN.
    pub fn resume_efficiency(&self) -> f64 {
        let touched = self.salvaged_bytes + self.wasted_bytes;
        if touched > 0 {
            self.salvaged_bytes as f64 / touched as f64
        } else {
            0.0
        }
    }

    /// True when nothing ever went wrong (the fault-free control's shape).
    pub fn is_clean(&self) -> bool {
        self.interruptions == 0 && self.abandoned == 0 && self.checksum_failures == 0
    }
}

/// Resumable upload state for one planned batch: which chunks are durably
/// committed, how far into the current chunk the server acknowledged, and
/// what recovery cost so far. The driving loop (the sync client) owns the
/// connection; this object owns the offsets.
#[derive(Debug, Clone)]
pub struct UploadSession {
    chunks: Vec<u64>,
    next: usize,
    committed_offset: u64,
    pending_salvage: u64,
    committed_payload: u64,
    abandoned_chunks: usize,
    abandoned_payload: u64,
    stats: FaultStats,
}

impl UploadSession {
    /// A session over the planned chunk upload sizes (zero-byte chunks —
    /// deduplicated ones — are skipped up front: nothing to transfer).
    pub fn new(chunks: Vec<u64>) -> UploadSession {
        UploadSession {
            chunks: chunks.into_iter().filter(|b| *b > 0).collect(),
            next: 0,
            committed_offset: 0,
            pending_salvage: 0,
            committed_payload: 0,
            abandoned_chunks: 0,
            abandoned_payload: 0,
            stats: FaultStats::default(),
        }
    }

    /// The next transfer to drive: `(chunk index, uncommitted tail bytes)`,
    /// or `None` when every chunk is committed or abandoned.
    pub fn remaining(&self) -> Option<(usize, u64)> {
        self.chunks.get(self.next).map(|&size| (self.next, size - self.committed_offset))
    }

    /// Records a cut mid-chunk: bytes the server acknowledged advance the
    /// committed offset (the resume point); bytes in flight are wasted.
    pub fn interrupted(&mut self, int: &TransferInterrupted) {
        self.stats.interruptions += 1;
        self.stats.wasted_bytes += int.bytes_sent.saturating_sub(int.bytes_acked);
        self.committed_offset += int.bytes_acked;
        self.pending_salvage += int.bytes_acked;
    }

    /// Records a granted retry and its virtual backoff.
    pub fn retried(&mut self, wait: SimDuration) {
        self.stats.retries += 1;
        self.stats.backoff_wait += wait;
    }

    /// The current chunk's tail finished: the whole chunk is durable, and
    /// whatever earlier interruptions had acked counts as salvaged.
    pub fn commit(&mut self) {
        let size = self.chunks[self.next];
        self.committed_payload += size;
        self.stats.salvaged_bytes += self.pending_salvage;
        self.pending_salvage = 0;
        self.committed_offset = 0;
        self.next += 1;
    }

    /// The retry budget ran out: the current chunk is abandoned, and its
    /// partial progress — acked or not — is wasted wire.
    pub fn abandon(&mut self) {
        let size = self.chunks[self.next];
        self.stats.abandoned += 1;
        self.stats.wasted_bytes += self.committed_offset;
        self.abandoned_chunks += 1;
        self.abandoned_payload += size;
        self.pending_salvage = 0;
        self.committed_offset = 0;
        self.next += 1;
    }

    /// Payload bytes durably committed so far (whole chunks only).
    pub fn committed_payload(&self) -> u64 {
        self.committed_payload
    }

    /// Bytes of the current chunk the server has acknowledged — the offset
    /// the next attempt resumes from.
    pub fn committed_offset(&self) -> u64 {
        self.committed_offset
    }

    /// Chunks given up on after the retry budget ran out.
    pub fn abandoned_chunks(&self) -> usize {
        self.abandoned_chunks
    }

    /// Payload bytes of the abandoned chunks.
    pub fn abandoned_payload(&self) -> u64 {
        self.abandoned_payload
    }

    /// True when every chunk committed (nothing abandoned, nothing left).
    pub fn is_complete(&self) -> bool {
        self.next >= self.chunks.len() && self.abandoned_chunks == 0
    }

    /// The session's recovery accounting.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

/// Resumable download state for one file: the last verified byte of the
/// encoded stream, the resume boundaries, and SHA-256 validation of the
/// reassembled content once the stream completes.
#[derive(Debug, Clone)]
pub struct RangedRestore {
    total: u64,
    verified: u64,
    pending_salvage: u64,
    segments: Vec<u64>,
    stats: FaultStats,
}

impl RangedRestore {
    /// A ranged download of `total` encoded-stream bytes.
    pub fn new(total: u64) -> RangedRestore {
        RangedRestore {
            total,
            verified: 0,
            pending_salvage: 0,
            segments: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    /// Bytes still to fetch — the range the next attempt requests.
    pub fn remaining(&self) -> u64 {
        self.total - self.verified
    }

    /// The last verified byte offset (the next range request's start).
    pub fn verified(&self) -> u64 {
        self.verified
    }

    /// Records a cut mid-download: received bytes advance the verified
    /// offset, in-flight bytes (and the re-sent range request) are wasted.
    pub fn interrupted(&mut self, int: &TransferInterrupted) {
        self.stats.interruptions += 1;
        self.stats.wasted_bytes += int.bytes_sent.saturating_sub(int.bytes_acked);
        if int.bytes_acked > 0 {
            self.segments.push(int.bytes_acked);
            self.verified += int.bytes_acked;
            self.pending_salvage += int.bytes_acked;
        }
    }

    /// Records a granted retry and its virtual backoff.
    pub fn retried(&mut self, wait: SimDuration) {
        self.stats.retries += 1;
        self.stats.backoff_wait += wait;
    }

    /// The final range landed: the stream is complete, and the ranges that
    /// survived interruptions count as salvaged.
    pub fn complete(&mut self) {
        let tail = self.remaining();
        if tail > 0 {
            self.segments.push(tail);
        }
        self.verified = self.total;
        self.stats.salvaged_bytes += self.pending_salvage;
        self.pending_salvage = 0;
    }

    /// The retry budget ran out: everything downloaded so far is wasted —
    /// the file cannot be reassembled.
    pub fn abandon(&mut self) {
        self.stats.abandoned += 1;
        self.stats.wasted_bytes += self.verified;
        self.pending_salvage = 0;
    }

    /// True once the whole stream was received.
    pub fn is_complete(&self) -> bool {
        self.verified >= self.total
    }

    /// End-to-end validation: reassembles `content` along the recorded
    /// resume boundaries (each stream range maps onto its span of the
    /// plaintext) through an incremental SHA-256 and compares against the
    /// digest of the intact content. Records the verdict in the stats and
    /// returns it. Must only be called on a complete stream.
    pub fn verify(&mut self, content: &[u8]) -> bool {
        assert!(self.is_complete(), "verify requires a complete stream");
        let expected = sha256(content);
        let mut hasher = Sha256::new();
        let mut covered = 0u64;
        let mut offset = 0usize;
        for seg in &self.segments {
            covered += seg;
            // Map the stream boundary onto the plaintext proportionally
            // (the encoded stream may be smaller than the plaintext when
            // chunks deduplicated or delta-encoded away).
            let end = if covered >= self.total {
                content.len()
            } else {
                ((covered as u128 * content.len() as u128) / self.total.max(1) as u128) as usize
            };
            hasher.update(&content[offset..end]);
            offset = end;
        }
        if offset < content.len() {
            // Zero-byte streams (fully deduplicated files) hash in one piece.
            hasher.update(&content[offset..]);
        }
        let ok = hasher.finalize() == expected;
        if ok {
            self.stats.checksums_verified += 1;
        } else {
            self.stats.checksum_failures += 1;
        }
        ok
    }

    /// The restore's recovery accounting.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsim_trace::SimTime;

    fn cut(acked: u64, sent: u64) -> TransferInterrupted {
        TransferInterrupted {
            bytes_acked: acked,
            bytes_sent: sent,
            elapsed: SimDuration::from_secs(1),
            interrupted_at: SimTime::from_secs(1),
        }
    }

    #[test]
    fn upload_session_resumes_from_the_committed_offset() {
        let mut s = UploadSession::new(vec![1000, 0, 2000]);
        assert_eq!(s.remaining(), Some((0, 1000)), "zero-byte chunks are skipped");
        s.interrupted(&cut(300, 450));
        assert_eq!(s.remaining(), Some((0, 700)), "only the unacked tail is re-driven");
        assert_eq!(s.committed_offset(), 300);
        s.retried(SimDuration::from_secs(2));
        s.commit();
        assert_eq!(s.remaining(), Some((1, 2000)));
        s.commit();
        assert!(s.is_complete());
        assert_eq!(s.committed_payload(), 3000);
        let stats = s.stats();
        assert_eq!(stats.interruptions, 1);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.wasted_bytes, 150, "in-flight bytes at the cut");
        assert_eq!(stats.salvaged_bytes, 300, "acked bytes never travelled twice");
        assert_eq!(stats.backoff_wait, SimDuration::from_secs(2));
        assert!(stats.resume_efficiency() > 0.6);
    }

    #[test]
    fn abandoning_a_chunk_wastes_its_partial_progress() {
        let mut s = UploadSession::new(vec![1000, 500]);
        s.interrupted(&cut(400, 600));
        s.abandon();
        assert!(!s.is_complete());
        assert_eq!(s.abandoned_chunks(), 1);
        assert_eq!(s.abandoned_payload(), 1000);
        assert_eq!(s.remaining(), Some((1, 500)));
        s.commit();
        assert_eq!(s.remaining(), None);
        assert!(!s.is_complete(), "an abandoned chunk means the batch never completed");
        let stats = s.stats();
        // 200 in flight at the cut + 400 acked-then-thrown-away.
        assert_eq!(stats.wasted_bytes, 600);
        assert_eq!(stats.salvaged_bytes, 0);
        assert_eq!(stats.abandoned, 1);
    }

    #[test]
    fn ranged_restore_tracks_verified_bytes_and_validates_reassembly() {
        let content: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let mut r = RangedRestore::new(content.len() as u64);
        r.interrupted(&cut(4_000, 5_500));
        assert_eq!(r.verified(), 4_000);
        assert_eq!(r.remaining(), 6_000);
        r.retried(SimDuration::from_secs(1));
        r.complete();
        assert!(r.is_complete());
        assert!(r.verify(&content), "reassembled content must hash identically");
        let stats = r.stats();
        assert_eq!(stats.checksums_verified, 1);
        assert_eq!(stats.checksum_failures, 0);
        assert_eq!(stats.wasted_bytes, 1_500);
        assert_eq!(stats.salvaged_bytes, 4_000);
    }

    #[test]
    fn an_abandoned_restore_wastes_everything_it_downloaded() {
        let mut r = RangedRestore::new(8_000);
        r.interrupted(&cut(3_000, 3_500));
        r.abandon();
        assert!(!r.is_complete());
        let stats = r.stats();
        assert_eq!(stats.abandoned, 1);
        // 500 in flight + 3000 verified-but-useless.
        assert_eq!(stats.wasted_bytes, 3_500);
        assert_eq!(stats.resume_efficiency(), 0.0);
    }

    #[test]
    fn stats_merge_additively_and_fault_free_runs_stay_clean() {
        let mut a = FaultStats::default();
        assert!(a.is_clean());
        assert_eq!(a.resume_efficiency(), 0.0);
        let b = FaultStats {
            interruptions: 2,
            retries: 1,
            wasted_bytes: 100,
            salvaged_bytes: 300,
            backoff_wait: SimDuration::from_secs(3),
            ..FaultStats::default()
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.interruptions, 4);
        assert_eq!(a.wasted_bytes, 200);
        assert_eq!(a.salvaged_bytes, 600);
        assert_eq!(a.backoff_wait, SimDuration::from_secs(6));
        assert!(!a.is_clean());
        assert_eq!(a.resume_efficiency(), 0.75);
    }

    #[test]
    fn verification_runs_on_single_shot_and_empty_streams_too() {
        let content = b"personal cloud storage".to_vec();
        let mut whole = RangedRestore::new(content.len() as u64);
        whole.complete();
        assert!(whole.verify(&content));
        // A fully deduplicated file moves zero stream bytes; its content
        // still validates.
        let mut empty = RangedRestore::new(0);
        assert!(empty.is_complete());
        empty.complete();
        assert!(empty.verify(&content));
    }
}
