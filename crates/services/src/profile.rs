//! Service profiles: the behavioural parameters of each studied service.
//!
//! Every constant in the five constructors below is taken from (or calibrated
//! against) a statement in the paper; the relevant section is cited next to
//! each field group. DESIGN.md §5 lists the full calibration table.

use cloudsim_geo::Provider;
use cloudsim_net::http::HttpOverhead;
use cloudsim_net::SimDuration;
use cloudsim_storage::{ChunkingStrategy, CompressionPolicy};
use serde::{Deserialize, Serialize};

/// How a client maps files onto transport connections during an upload batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferMode {
    /// Files are bundled and pipelined over one reused storage connection
    /// (Dropbox, §4.2: "only Dropbox implements a file-bundling strategy").
    Bundled,
    /// One reused storage connection, but files are submitted sequentially and
    /// the client waits for an application-layer acknowledgement between files
    /// (SkyDrive, Wuala).
    SequentialWithAcks,
    /// A new TCP + SSL connection is opened for every file (Google Drive), and
    /// optionally extra control connections per file operation (Cloud Drive
    /// opens three, §4.2).
    ConnectionPerFile {
        /// Number of additional control connections opened per file operation.
        control_connections_per_file: u32,
    },
}

/// The full behavioural profile of one service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceProfile {
    /// Which provider this profile models.
    pub provider: Provider,

    // --- Client capabilities (§4, Table 1) -------------------------------
    /// Chunking strategy (§4.1).
    pub chunking: ChunkingStrategy,
    /// How files map onto connections (§4.2).
    pub transfer_mode: TransferMode,
    /// Compression policy (§4.5).
    pub compression: CompressionPolicy,
    /// Client-side deduplication (§4.3).
    pub dedup: bool,
    /// Delta encoding of modified files (§4.4).
    pub delta_encoding: bool,
    /// Client-side (convergent) encryption before upload (Wuala).
    pub client_side_encryption: bool,

    // --- Network placement (§3.2, §5.2) -----------------------------------
    /// RTT from the (European) testbed to the control servers.
    pub control_rtt: SimDuration,
    /// RTT from the testbed to the storage front end.
    pub storage_rtt: SimDuration,
    /// Bottleneck bandwidth towards storage, bits per second.
    pub storage_bandwidth: u64,
    /// Bottleneck bandwidth towards control servers, bits per second.
    pub control_bandwidth: u64,

    // --- Login and idle behaviour (§3.1, Fig. 1) ---------------------------
    /// Number of distinct control servers contacted during login (SkyDrive
    /// talks to ~13 Microsoft Live servers).
    pub login_servers: u32,
    /// Total bytes exchanged during login across all control servers.
    pub login_bytes: u64,
    /// Interval between keep-alive polls while idle.
    pub polling_interval: SimDuration,
    /// Application bytes exchanged per poll (request + response bodies).
    pub polling_bytes: u64,
    /// Whether every poll opens a brand-new HTTPS connection (Cloud Drive).
    pub polling_new_connection: bool,
    /// Whether the notification/keep-alive channel uses plain HTTP instead of
    /// HTTPS (Dropbox's notification protocol).
    pub notification_plain_http: bool,

    // --- Synchronisation timing (§5.1) -------------------------------------
    /// Base delay between a file change and the start of synchronisation.
    pub startup_delay: SimDuration,
    /// Additional start-up delay per file in the batch (SkyDrive "gets slower
    /// as batches increase").
    pub startup_delay_per_file: SimDuration,
    /// Client-side per-file processing time during upload (hashing, database
    /// commits, encryption).
    pub per_file_overhead: SimDuration,
    /// Server-side processing time charged per storage request.
    pub server_think: SimDuration,
    /// HTTP header overhead of the service's API.
    pub http_overhead: HttpOverhead,
}

impl ServiceProfile {
    /// Dropbox v2.0.8: the most sophisticated client of the study — 4 MB
    /// chunks, bundling, always-on compression, dedup and delta encoding; own
    /// control servers in San Jose, storage on Amazon in Northern Virginia.
    pub fn dropbox() -> ServiceProfile {
        ServiceProfile {
            provider: Provider::Dropbox,
            chunking: ChunkingStrategy::DROPBOX,
            transfer_mode: TransferMode::Bundled,
            compression: CompressionPolicy::Always,
            dedup: true,
            delta_encoding: true,
            client_side_encryption: false,
            control_rtt: SimDuration::from_millis(150),
            storage_rtt: SimDuration::from_millis(95),
            storage_bandwidth: 45_000_000,
            control_bandwidth: 45_000_000,
            login_servers: 3,
            login_bytes: 40_000,
            polling_interval: SimDuration::from_secs(60),
            polling_bytes: 515,
            polling_new_connection: false,
            notification_plain_http: true,
            startup_delay: SimDuration::from_millis(900),
            startup_delay_per_file: SimDuration::from_millis(30),
            per_file_overhead: SimDuration::from_millis(70),
            server_think: SimDuration::from_millis(40),
            http_overhead: HttpOverhead::DEFAULT,
        }
    }

    /// Microsoft SkyDrive v17.0: variable chunking, no bundling (sequential
    /// uploads with application-level acks), no compression/dedup/delta;
    /// storage near Seattle and control in Southern Virginia (~160 ms RTT);
    /// very chatty login (~150 kB over ~13 servers) and the slowest start-up.
    pub fn skydrive() -> ServiceProfile {
        ServiceProfile {
            provider: Provider::SkyDrive,
            chunking: ChunkingStrategy::VARIABLE,
            transfer_mode: TransferMode::SequentialWithAcks,
            compression: CompressionPolicy::Never,
            dedup: false,
            delta_encoding: false,
            client_side_encryption: false,
            control_rtt: SimDuration::from_millis(160),
            storage_rtt: SimDuration::from_millis(160),
            // A single 2013-era TCP connection across the Atlantic rarely
            // sustained more than ~10-15 Mb/s; the paper measures ~4 s for a
            // 1 MB upload to SkyDrive.
            storage_bandwidth: 12_000_000,
            control_bandwidth: 12_000_000,
            login_servers: 13,
            login_bytes: 150_000,
            polling_interval: SimDuration::from_secs(60),
            polling_bytes: 140,
            polling_new_connection: false,
            notification_plain_http: false,
            startup_delay: SimDuration::from_secs(9),
            startup_delay_per_file: SimDuration::from_millis(120),
            per_file_overhead: SimDuration::from_millis(40),
            server_think: SimDuration::from_millis(60),
            http_overhead: HttpOverhead::HEAVY,
        }
    }

    /// LaCie Wuala: client-side convergent encryption, variable chunking,
    /// dedup, no compression, no delta; European data centres only (~25 ms),
    /// the quietest idle behaviour (one poll every ~5 minutes).
    pub fn wuala() -> ServiceProfile {
        ServiceProfile {
            provider: Provider::Wuala,
            chunking: ChunkingStrategy::VARIABLE,
            transfer_mode: TransferMode::SequentialWithAcks,
            compression: CompressionPolicy::Never,
            dedup: true,
            delta_encoding: false,
            client_side_encryption: true,
            control_rtt: SimDuration::from_millis(25),
            storage_rtt: SimDuration::from_millis(25),
            storage_bandwidth: 60_000_000,
            control_bandwidth: 60_000_000,
            login_servers: 2,
            login_bytes: 35_000,
            polling_interval: SimDuration::from_secs(300),
            polling_bytes: 2_150,
            polling_new_connection: false,
            notification_plain_http: true,
            startup_delay: SimDuration::from_secs(5),
            startup_delay_per_file: SimDuration::from_millis(55),
            per_file_overhead: SimDuration::from_millis(110),
            server_think: SimDuration::from_millis(30),
            http_overhead: HttpOverhead::LEAN,
        }
    }

    /// Google Drive v1.9: 8 MB chunks, no bundling — one TCP and SSL
    /// connection per file — smart compression, no dedup, no delta; client TCP
    /// terminates at the closest Google edge node (~15 ms from the testbed).
    pub fn google_drive() -> ServiceProfile {
        ServiceProfile {
            provider: Provider::GoogleDrive,
            chunking: ChunkingStrategy::GOOGLE_DRIVE,
            transfer_mode: TransferMode::ConnectionPerFile { control_connections_per_file: 0 },
            compression: CompressionPolicy::Smart,
            dedup: false,
            delta_encoding: false,
            client_side_encryption: false,
            control_rtt: SimDuration::from_millis(15),
            storage_rtt: SimDuration::from_millis(15),
            storage_bandwidth: 65_000_000,
            control_bandwidth: 65_000_000,
            login_servers: 4,
            login_bytes: 38_000,
            polling_interval: SimDuration::from_secs(40),
            polling_bytes: 110,
            polling_new_connection: false,
            notification_plain_http: false,
            startup_delay: SimDuration::from_millis(2_500),
            startup_delay_per_file: SimDuration::from_millis(10),
            per_file_overhead: SimDuration::from_millis(35),
            server_think: SimDuration::from_millis(130),
            http_overhead: HttpOverhead::DEFAULT,
        }
    }

    /// Amazon Cloud Drive v2.0: the most simplistic client — no chunking, no
    /// bundling, no compression/dedup/delta; one storage connection per file
    /// plus *three* control connections per file operation; polls every 15 s
    /// over a fresh HTTPS connection (~65 MB of background traffic per day).
    pub fn cloud_drive() -> ServiceProfile {
        ServiceProfile {
            provider: Provider::CloudDrive,
            chunking: ChunkingStrategy::None,
            transfer_mode: TransferMode::ConnectionPerFile { control_connections_per_file: 3 },
            compression: CompressionPolicy::Never,
            dedup: false,
            delta_encoding: false,
            client_side_encryption: false,
            control_rtt: SimDuration::from_millis(30),
            storage_rtt: SimDuration::from_millis(95),
            storage_bandwidth: 40_000_000,
            control_bandwidth: 40_000_000,
            login_servers: 3,
            login_bytes: 36_000,
            polling_interval: SimDuration::from_secs(15),
            polling_bytes: 2_000,
            polling_new_connection: true,
            notification_plain_http: false,
            startup_delay: SimDuration::from_millis(3_500),
            startup_delay_per_file: SimDuration::from_millis(15),
            per_file_overhead: SimDuration::from_millis(30),
            server_think: SimDuration::from_millis(80),
            http_overhead: HttpOverhead::DEFAULT,
        }
    }

    /// Profiles of all five services in the paper's order.
    pub fn all() -> Vec<ServiceProfile> {
        vec![
            ServiceProfile::dropbox(),
            ServiceProfile::skydrive(),
            ServiceProfile::wuala(),
            ServiceProfile::google_drive(),
            ServiceProfile::cloud_drive(),
        ]
    }

    /// Looks up a profile by provider.
    pub fn for_provider(provider: Provider) -> ServiceProfile {
        match provider {
            Provider::Dropbox => ServiceProfile::dropbox(),
            Provider::SkyDrive => ServiceProfile::skydrive(),
            Provider::Wuala => ServiceProfile::wuala(),
            Provider::GoogleDrive => ServiceProfile::google_drive(),
            Provider::CloudDrive => ServiceProfile::cloud_drive(),
        }
    }

    /// Display name of the service.
    pub fn name(&self) -> &'static str {
        self.provider.name()
    }

    /// Whether the client bundles small files (Table 1 row "Bundling").
    pub fn bundles(&self) -> bool {
        matches!(self.transfer_mode, TransferMode::Bundled)
    }

    /// Estimated idle signalling rate in bits per second (the §3.1 numbers:
    /// Wuala ≈ 60 b/s, Google Drive ≈ 42 b/s, Dropbox ≈ 82 b/s, SkyDrive ≈
    /// 32 b/s, Cloud Drive ≈ 6 kb/s). For services that reopen a connection on
    /// every poll the TLS handshake dominates the figure.
    pub fn idle_rate_bps(&self) -> f64 {
        let per_poll_wire = if self.polling_new_connection {
            // TCP+TLS handshake (~5.5 kB) + HTTP exchange + teardown.
            self.polling_bytes as f64 + 9_000.0
        } else {
            self.polling_bytes as f64 + 100.0 // TCP/TLS framing of a small exchange
        };
        per_poll_wire * 8.0 / self.polling_interval.as_secs_f64()
    }

    /// Returns a copy with a different transfer mode (used by the ablation
    /// benchmarks, e.g. "Dropbox without bundling").
    pub fn with_transfer_mode(mut self, mode: TransferMode) -> ServiceProfile {
        self.transfer_mode = mode;
        self
    }

    /// Returns a copy with a different compression policy.
    pub fn with_compression(mut self, policy: CompressionPolicy) -> ServiceProfile {
        self.compression = policy;
        self
    }

    /// Returns a copy with client-side encryption toggled.
    pub fn with_encryption(mut self, enabled: bool) -> ServiceProfile {
        self.client_side_encryption = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_profiles_exist_in_paper_order() {
        let all = ServiceProfile::all();
        assert_eq!(all.len(), 5);
        let names: Vec<&str> = all.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["Dropbox", "SkyDrive", "Wuala", "Google Drive", "Cloud Drive"]);
        for p in Provider::ALL {
            assert_eq!(ServiceProfile::for_provider(p).provider, p);
        }
    }

    #[test]
    fn capability_matrix_matches_table_1() {
        let dropbox = ServiceProfile::dropbox();
        assert_eq!(dropbox.chunking.describe(), "4 MB");
        assert!(dropbox.bundles());
        assert_eq!(dropbox.compression.describe(), "always");
        assert!(dropbox.dedup);
        assert!(dropbox.delta_encoding);

        let skydrive = ServiceProfile::skydrive();
        assert_eq!(skydrive.chunking.describe(), "var.");
        assert!(!skydrive.bundles());
        assert_eq!(skydrive.compression.describe(), "no");
        assert!(!skydrive.dedup);
        assert!(!skydrive.delta_encoding);

        let wuala = ServiceProfile::wuala();
        assert_eq!(wuala.chunking.describe(), "var.");
        assert!(!wuala.bundles());
        assert!(wuala.dedup);
        assert!(wuala.client_side_encryption);

        let gdrive = ServiceProfile::google_drive();
        assert_eq!(gdrive.chunking.describe(), "8 MB");
        assert_eq!(gdrive.compression.describe(), "smart");
        assert!(!gdrive.dedup);

        let clouddrive = ServiceProfile::cloud_drive();
        assert_eq!(clouddrive.chunking.describe(), "no");
        assert!(!clouddrive.bundles());
        assert_eq!(clouddrive.compression.describe(), "no");
        assert!(!clouddrive.dedup);
        assert!(!clouddrive.delta_encoding);
    }

    #[test]
    fn idle_rates_reproduce_the_section_3_ranking() {
        let rate = |p: ServiceProfile| p.idle_rate_bps();
        let dropbox = rate(ServiceProfile::dropbox());
        let skydrive = rate(ServiceProfile::skydrive());
        let wuala = rate(ServiceProfile::wuala());
        let gdrive = rate(ServiceProfile::google_drive());
        let clouddrive = rate(ServiceProfile::cloud_drive());

        // Cloud Drive is an order of magnitude noisier than everyone else.
        assert!(clouddrive > 4_000.0, "cloud drive {clouddrive} b/s");
        assert!(clouddrive > 10.0 * dropbox);
        // The others sit in the tens of b/s.
        for (name, v) in
            [("dropbox", dropbox), ("skydrive", skydrive), ("wuala", wuala), ("gdrive", gdrive)]
        {
            assert!((20.0..200.0).contains(&v), "{name} idle rate {v}");
        }
        // Relative ordering from §3.1: Dropbox > Wuala > Google Drive > SkyDrive.
        assert!(dropbox > wuala && wuala > gdrive && gdrive > skydrive);
    }

    #[test]
    fn rtt_placement_reflects_data_center_geography() {
        // European services are close, US-centric ones are far (§5.2).
        assert!(ServiceProfile::wuala().storage_rtt < SimDuration::from_millis(50));
        assert!(ServiceProfile::google_drive().storage_rtt < SimDuration::from_millis(30));
        assert!(ServiceProfile::dropbox().storage_rtt > SimDuration::from_millis(80));
        assert!(ServiceProfile::skydrive().storage_rtt > SimDuration::from_millis(120));
    }

    #[test]
    fn login_chattiness_matches_fig1() {
        let skydrive = ServiceProfile::skydrive();
        for other in [
            ServiceProfile::dropbox(),
            ServiceProfile::wuala(),
            ServiceProfile::google_drive(),
            ServiceProfile::cloud_drive(),
        ] {
            assert!(
                skydrive.login_bytes as f64 >= 3.5 * other.login_bytes as f64,
                "SkyDrive login must be ~4x {}",
                other.name()
            );
        }
        assert!(skydrive.login_servers >= 13);
    }

    #[test]
    fn ablation_helpers_modify_only_the_targeted_field() {
        let base = ServiceProfile::dropbox();
        let unbundled = base.clone().with_transfer_mode(TransferMode::SequentialWithAcks);
        assert!(!unbundled.bundles());
        assert_eq!(unbundled.compression, base.compression);
        let uncompressed = base.clone().with_compression(CompressionPolicy::Never);
        assert_eq!(uncompressed.compression, CompressionPolicy::Never);
        assert!(uncompressed.bundles());
        let encrypted = base.clone().with_encryption(true);
        assert!(encrypted.client_side_encryption);
    }
}
