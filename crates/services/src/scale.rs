//! The fleet-scale runner: 100k–1M lightweight clients on the event heap.
//!
//! The full fleet harness ([`crate::fleet`]) gives every client a real
//! [`crate::client::SyncClient`] — a planner, a simulator, a packet trace —
//! which is the right fidelity for tens of clients and hopeless for a
//! million. This module keeps the *population-scale* questions (commits per
//! second against the sharded store, concurrency peaks, inter-user dedup at
//! scale) and drops the per-client machinery: each client is a compact
//! [`ScaleSpec`]-derived state record of a few dozen bytes, its commit
//! instants are seeded draws over a virtual horizon, its transfer times are
//! computed analytically from its access link, and its chunks are committed
//! to the [`ObjectStore`] as metadata-only records (hashes derived from the
//! content seeds — no file bytes are ever generated or retained, because
//! at 100k clients the plaintext would dominate the host's memory).
//!
//! Execution rides the same [`EventHeap`] as the full fleet: one
//! [`Phase::Sync`] event per `(client, commit)` pair, ordered by
//! `(timestamp, client id)`, popped in waves of pairwise-distinct clients
//! and fanned out over worker threads. Each event touches only its client's
//! state record plus the shared store, whose aggregate accounting is
//! order-independent — so a parallel run and the sequential replay are
//! bit-identical, and two runs of the same spec dump identical JSON (the CI
//! fleet-scale determinism leg `cmp`s exactly that).
//!
//! Memory discipline is the point: the per-client budget is the state
//! record plus the client's share of the event list and the interval log —
//! a few hundred bytes per client, asserted by a `size_of` test below —
//! against the many kilobytes a `SyncClient` costs. 100k clients fit in a
//! few tens of megabytes before store contents.

use crate::engine::{EventHeap, FleetEvent, Phase};
use cloudsim_net::AccessLink;
use cloudsim_storage::{
    AggregateStats, ContentHash, FileManifest, GcPolicy, ObjectStore, StoredChunk,
};
use cloudsim_trace::packet::{
    Direction, Endpoint, PacketRecord, TcpFlags, TransportProtocol, TCP_HEADER_BYTES,
};
use cloudsim_trace::{
    FlowId, FlowKind, LatencyHistogram, SimDuration, SimTime, Trace, TraceRecorder, TraceShard,
};
use cloudsim_workload::seed::{derive_seed, unit_f64};
use serde::Serialize;

/// The user name of scale client `i` in the shared store — shared with the
/// capture/replay path ([`crate::capture`]), which reconstructs the same
/// store keyspace from client indices alone.
pub(crate) fn scale_user(i: usize) -> String {
    format!("scale-{i:06}")
}

/// Salt distinguishing commit-instant draws from every other seeded stream.
const SALT_SCALE_AT: u64 = 0x5CA1_E0A7;
/// Salt base for per-file content seeds (offset by the file index, which
/// stays far below the distance to any other salt).
const SALT_SCALE_CONTENT: u64 = 0x5CA1_EC00;

/// Workload description for one fleet-scale run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScaleSpec {
    /// Number of lightweight clients.
    pub clients: usize,
    /// Commits (batches) each client performs over the horizon.
    pub commits_per_client: usize,
    /// Files per commit; each file is one metadata-only chunk.
    pub files_per_commit: usize,
    /// Plaintext size of each file in bytes.
    pub file_size: u64,
    /// Fraction of each commit drawn from a population-wide shared pool
    /// (identical content seeds across clients — what inter-user dedup
    /// acts on at scale).
    pub shared_fraction: f64,
    /// The virtual horizon commit instants are drawn uniformly over.
    pub horizon: SimDuration,
    /// Access links distributed round-robin across the clients (client `i`
    /// uploads through `links[i % len]`).
    pub links: Vec<AccessLink>,
    /// Master seed; every draw derives from it.
    pub seed: u64,
}

impl ScaleSpec {
    /// A population of `clients` uploaders: two commits each of four 64 kB
    /// files (half from the shared pool) spread over one virtual hour,
    /// across all four link presets.
    pub fn new(clients: usize) -> ScaleSpec {
        ScaleSpec {
            clients,
            commits_per_client: 2,
            files_per_commit: 4,
            file_size: 64 * 1024,
            shared_fraction: 0.5,
            horizon: SimDuration::from_secs(3600),
            links: AccessLink::all().to_vec(),
            seed: 0x5CA1E,
        }
    }

    /// Sets the commits each client performs.
    pub fn with_commits(mut self, commits: usize) -> ScaleSpec {
        self.commits_per_client = commits;
        self
    }

    /// Sets the per-commit workload (file count and size).
    pub fn with_files(mut self, files_per_commit: usize, file_size: u64) -> ScaleSpec {
        self.files_per_commit = files_per_commit;
        self.file_size = file_size;
        self
    }

    /// Sets the shared-pool fraction.
    pub fn with_shared_fraction(mut self, fraction: f64) -> ScaleSpec {
        assert!((0.0..=1.0).contains(&fraction), "shared fraction must be within [0, 1]");
        self.shared_fraction = fraction;
        self
    }

    /// Sets the virtual horizon.
    pub fn with_horizon(mut self, horizon: SimDuration) -> ScaleSpec {
        self.horizon = horizon;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> ScaleSpec {
        self.seed = seed;
        self
    }

    /// The user name of client `i` in the shared store.
    pub fn user(&self, i: usize) -> String {
        scale_user(i)
    }

    /// The link client `i` uploads through.
    pub fn link(&self, i: usize) -> &AccessLink {
        &self.links[i % self.links.len()]
    }

    /// Files per commit that come from the population-wide shared pool.
    pub fn shared_files_per_commit(&self) -> usize {
        ((self.files_per_commit as f64) * self.shared_fraction).round() as usize
    }

    /// The seeded virtual instant of client `i`'s commit `k`: a uniform
    /// draw over the horizon. Pure data — no wall clock, no shared RNG.
    pub fn commit_at(&self, i: usize, k: usize) -> SimTime {
        let draw = derive_seed(self.seed, i as u64, k as u64, SALT_SCALE_AT);
        SimTime::ZERO + self.horizon * unit_f64(draw)
    }

    /// The content seed of file `f` of client `i`'s commit `k`. Shared-pool
    /// files exclude the client index, so the same hash lands from every
    /// client and the server dedups it to one physical entry. Captures
    /// record these seeds verbatim so a replay commits identical hashes.
    pub(crate) fn content_seed(&self, i: usize, k: usize, f: usize) -> u64 {
        if f < self.shared_files_per_commit() {
            derive_seed(self.seed, u64::MAX, k as u64, SALT_SCALE_CONTENT + f as u64)
        } else {
            derive_seed(self.seed, i as u64, k as u64, SALT_SCALE_CONTENT + f as u64)
        }
    }

    /// The trace flow id of client `i`'s commit `k` — a pure function of
    /// the spec, *not* an allocation from a worker shard, so the traced
    /// capture merges bit-identically whatever worker executed the commit.
    pub fn commit_flow(&self, i: usize, k: usize) -> FlowId {
        FlowId((i * self.commits_per_client + k) as u64)
    }

    /// Lowers the spec into its event heap: one [`Phase::Sync`] event per
    /// `(client, commit)` pair at its seeded instant. Deriving twice yields
    /// identical heaps.
    pub fn events(&self) -> EventHeap {
        let mut events = Vec::with_capacity(self.clients * self.commits_per_client);
        for i in 0..self.clients {
            for k in 0..self.commits_per_client {
                events.push(FleetEvent {
                    at: self.commit_at(i, k),
                    phase: Phase::Sync,
                    client: i,
                    round: k,
                });
            }
        }
        EventHeap::from_events(events)
    }

    pub(crate) fn validate(&self) {
        assert!(self.clients > 0, "a scale run needs at least one client");
        assert!(self.commits_per_client > 0, "a scale run needs at least one commit per client");
        assert!(self.files_per_commit > 0, "a commit needs at least one file");
        assert!(self.file_size > 0, "files must have at least one byte");
        assert!(!self.links.is_empty(), "a scale run needs at least one link");
        assert!(!self.horizon.is_zero(), "the horizon must be positive");
    }
}

/// One lightweight client's compact state: everything the runner keeps per
/// client between events. The `size_of` budget test below pins this to at
/// most 64 bytes — the allocation discipline that lets 100k–1M clients fit
/// where a single [`crate::client::SyncClient`] would not.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct ScaleClientState {
    /// When the client's link is free again (commits on one link serialise).
    pub(crate) busy_until: SimTime,
    /// Start of the client's first transfer (valid once `commits > 0`).
    pub(crate) first_start: SimTime,
    /// End of the client's last transfer.
    pub(crate) last_end: SimTime,
    /// Plaintext bytes committed so far.
    pub(crate) logical_bytes: u64,
    /// Commits performed so far.
    pub(crate) commits: u32,
}

/// Expands a content seed into a synthetic 256-bit content hash: four
/// chained [`derive_seed`] finalisations, one per 8-byte lane. Identical
/// seeds (the shared pool) produce identical hashes, which is all the
/// dedup accounting needs — no file bytes exist to hash for real.
fn synth_hash(content_seed: u64) -> ContentHash {
    let mut bytes = [0u8; 32];
    for lane in 0..4u64 {
        let word = derive_seed(content_seed, lane, 0, 0);
        bytes[(lane as usize) * 8..][..8].copy_from_slice(&word.to_le_bytes());
    }
    ContentHash(bytes)
}

/// Executes one commit transfer: commits the chunk hashes yielded by
/// `content_seed` (metadata-only) plus one manifest per file into the
/// shared store, and advances the client's analytic timeline — the
/// transfer starts when both the event instant and the client's link are
/// ready, and lasts `rtts_per_commit` access round trips plus the
/// serialised transmission time of the commit's bytes.
///
/// This is the common executor behind both the spec-derived runner
/// ([`run_scale`], one bundled round trip per commit) and the
/// capture/replay path ([`crate::capture`]), where the seeds come from a
/// capture file and a non-bundling service remap pays one round trip per
/// file.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_transfer(
    store: &ObjectStore,
    user: &str,
    link: &AccessLink,
    round: usize,
    files_per_commit: usize,
    file_size: u64,
    shared_files: usize,
    rtts_per_commit: u64,
    at: SimTime,
    content_seed: impl Fn(usize) -> u64,
    mut state: ScaleClientState,
) -> (ScaleClientState, (SimTime, SimTime)) {
    let batch_bytes = files_per_commit as u64 * file_size;

    for f in 0..files_per_commit {
        let hash = synth_hash(content_seed(f));
        store.put_chunk(user, StoredChunk { hash, stored_len: file_size, plain_len: file_size });
        let label = if f < shared_files { "shared" } else { "private" };
        store.commit_manifest(
            user,
            FileManifest {
                path: format!("{label}/c{round:03}_f{f:03}"),
                size: file_size,
                chunks: vec![hash],
                version: 0,
            },
        );
    }

    let start = at.max(state.busy_until);
    let end = start
        + link.access_rtt * rtts_per_commit
        + SimDuration::for_transmission(batch_bytes, link.up_bandwidth);
    if state.commits == 0 {
        state.first_start = start;
    }
    state.busy_until = end;
    state.last_end = end;
    state.logical_bytes += batch_bytes;
    state.commits += 1;
    (state, (start, end))
}

/// Executes one spec-derived commit event through [`execute_transfer`].
fn execute_commit(
    spec: &ScaleSpec,
    store: &ObjectStore,
    ev: &FleetEvent,
    state: ScaleClientState,
) -> (ScaleClientState, (SimTime, SimTime)) {
    let (i, k) = (ev.client, ev.round);
    execute_transfer(
        store,
        &spec.user(i),
        spec.link(i),
        k,
        spec.files_per_commit,
        spec.file_size,
        spec.shared_files_per_commit(),
        1,
        ev.at,
        |f| spec.content_seed(i, k, f),
        state,
    )
}

/// Records the packet skeleton of one commit into a worker's trace shard:
/// the connection SYN at the transfer start, then one storage payload
/// packet per file at its analytic completion instant. Timestamps, sizes
/// and the flow id ([`ScaleSpec::commit_flow`]) are pure functions of the
/// spec, and a commit's packets land contiguously in exactly one shard, so
/// the `(timestamp, flow, seq)` merge reproduces one canonical trace for
/// any worker count.
fn record_commit_packets(
    shard: &mut TraceShard,
    spec: &ScaleSpec,
    i: usize,
    k: usize,
    start: SimTime,
) {
    let flow = spec.commit_flow(i, k);
    let link = spec.link(i);
    let src = Endpoint::from_octets(
        10,
        (i >> 16) as u8,
        (i >> 8) as u8,
        i as u8,
        40_000u16.wrapping_add(k as u16),
    );
    let dst = Endpoint::from_octets(198, 18, 0, 1, 443);
    let packet = |timestamp, flags, payload_len| PacketRecord {
        timestamp,
        src,
        dst,
        protocol: TransportProtocol::Tcp,
        flags,
        payload_len,
        header_len: TCP_HEADER_BYTES,
        direction: Direction::Upload,
        flow,
        kind: FlowKind::Storage,
    };
    shard.record(packet(start, TcpFlags::SYN, 0));
    for f in 0..spec.files_per_commit {
        let sent = start
            + link.access_rtt
            + SimDuration::for_transmission((f as u64 + 1) * spec.file_size, link.up_bandwidth);
        shard.record(packet(sent, TcpFlags::ACK, spec.file_size as u32));
    }
}

/// Pops waves off `heap` and fans each out over up to `workers` threads,
/// threading per-client state records through `exec`. Every wave holds
/// pairwise-distinct clients whose store commits commute, so any worker
/// count produces bit-identical states and intervals. Shared by the
/// spec-derived runner and the capture/replay path.
pub(crate) fn drive_waves<F>(
    mut heap: EventHeap,
    clients: usize,
    workers: usize,
    exec: F,
) -> (Vec<ScaleClientState>, Vec<(SimTime, SimTime)>)
where
    F: Fn(&FleetEvent, ScaleClientState) -> (ScaleClientState, (SimTime, SimTime)) + Sync,
{
    let mut states: Vec<ScaleClientState> = vec![ScaleClientState::default(); clients];
    let mut intervals: Vec<(SimTime, SimTime)> = Vec::with_capacity(heap.len());

    while let Some(wave) = heap.next_wave() {
        let results: Vec<(ScaleClientState, (SimTime, SimTime))> = cloudsim_parallel::run_indexed(
            workers.clamp(1, wave.events.len()),
            wave.events.len(),
            || (),
            |(), k| {
                let ev = &wave.events[k];
                exec(ev, states[ev.client])
            },
        );
        for (k, (state, interval)) in results.into_iter().enumerate() {
            states[wave.events[k].client] = state;
            intervals.push(interval);
        }
    }
    (states, intervals)
}

/// Assembles a [`ScaleRun`] from driven state records; `files` comes from
/// the caller because only it knows the per-commit file count.
pub(crate) fn assemble_run(
    clients: usize,
    files: u64,
    states: &[ScaleClientState],
    intervals: Vec<(SimTime, SimTime)>,
    store: ObjectStore,
    started: std::time::Instant,
) -> ScaleRun {
    ScaleRun {
        clients,
        commits: states.iter().map(|s| s.commits as u64).sum(),
        files,
        logical_bytes: states.iter().map(|s| s.logical_bytes).sum(),
        intervals,
        store,
        elapsed: started.elapsed(),
    }
}

/// The result of one fleet-scale run: population-level aggregates plus the
/// transfer intervals the concurrency analysis consumes.
#[derive(Debug, Clone)]
pub struct ScaleRun {
    /// Clients the run drove.
    pub clients: usize,
    /// Commits (batches) performed across the population.
    pub commits: u64,
    /// File manifests committed across the population.
    pub files: u64,
    /// Plaintext bytes committed across the population.
    pub logical_bytes: u64,
    /// Every commit's `[start, end)` transfer interval on the shared
    /// virtual axis, in event order.
    pub intervals: Vec<(SimTime, SimTime)>,
    /// The shared store the population committed into.
    pub store: ObjectStore,
    /// Host wall-clock time the run took (the only non-deterministic
    /// field).
    pub elapsed: std::time::Duration,
}

impl ScaleRun {
    /// Aggregate server-side statistics after the run.
    pub fn aggregate(&self) -> AggregateStats {
        self.store.aggregate()
    }

    /// Population-scale inter-user dedup ratio (see
    /// [`AggregateStats::dedup_ratio`]).
    pub fn dedup_ratio(&self) -> f64 {
        self.aggregate().dedup_ratio()
    }

    /// Start of the earliest transfer.
    pub fn first_start(&self) -> SimTime {
        self.intervals.iter().map(|&(s, _)| s).min().unwrap_or(SimTime::ZERO)
    }

    /// End of the latest transfer.
    pub fn last_end(&self) -> SimTime {
        self.intervals.iter().map(|&(_, e)| e).max().unwrap_or(SimTime::ZERO)
    }

    /// The virtual span the population was active over, in seconds.
    pub fn virtual_span_secs(&self) -> f64 {
        (self.last_end() - self.first_start()).as_secs_f64()
    }

    /// Commits per virtual second over the active span — the server-side
    /// load figure. 0.0 for an empty run, never NaN.
    pub fn commits_per_vsec(&self) -> f64 {
        let span = self.virtual_span_secs();
        if span > 0.0 {
            self.commits as f64 / span
        } else {
            0.0
        }
    }

    /// The most transfers in flight at any virtual instant.
    pub fn concurrency_peak(&self) -> usize {
        cloudsim_trace::series::concurrency_peak(&self.intervals)
    }

    /// Distribution of per-commit transfer durations. Intervals are logged
    /// in event order and the histogram's buckets are fixed, so the result
    /// is bit-identical across worker counts and reruns.
    pub fn transfer_histogram(&self) -> LatencyHistogram {
        self.intervals.iter().map(|&(s, e)| e - s).collect()
    }

    /// The server-side load curve: commits bucketed by start instant into
    /// `buckets` equal slices of the active span. The sum of the buckets is
    /// the commit total; an empty run yields all-zero buckets.
    pub fn load_curve(&self, buckets: usize) -> Vec<u64> {
        assert!(buckets > 0, "need at least one bucket");
        let mut curve = vec![0u64; buckets];
        let first = self.first_start();
        let span = (self.last_end() - first).as_secs_f64();
        if span <= 0.0 {
            curve[0] = self.commits;
            return curve;
        }
        for &(start, _) in &self.intervals {
            let frac = (start - first).as_secs_f64() / span;
            let b = ((frac * buckets as f64) as usize).min(buckets - 1);
            curve[b] += 1;
        }
        curve
    }
}

/// Runs the population on up to `workers` OS threads, committing into
/// `store`. The event heap is derived up front; each wave holds
/// pairwise-distinct clients whose store commits commute, so any worker
/// count produces bit-identical [`ScaleRun`] data (wall-clock `elapsed`
/// aside).
pub fn run_scale(spec: &ScaleSpec, store: ObjectStore, workers: usize) -> ScaleRun {
    spec.validate();
    let heap = spec.events();
    let started = std::time::Instant::now();
    let (states, intervals) = drive_waves(heap, spec.clients, workers, |ev, state| {
        execute_commit(spec, &store, ev, state)
    });
    let files = spec.clients as u64 * spec.commits_per_client as u64 * spec.files_per_commit as u64;
    assemble_run(spec.clients, files, &states, intervals, store, started)
}

/// Runs the population with full packet capture: each of the `workers`
/// round workers records commits into its own long-lived [`TraceShard`]
/// (handed out once and reused wave after wave via
/// [`cloudsim_parallel::run_with_contexts`]), and the shards are k-way
/// merged into one frozen [`Trace`] at the end. The [`ScaleRun`] is
/// bit-identical to the traceless [`run_scale`] of the same spec, and the
/// merged trace is bit-identical for any worker count — flow ids are pure
/// functions of `(client, commit)`, not shard allocations.
pub fn run_scale_traced(spec: &ScaleSpec, store: ObjectStore, workers: usize) -> (ScaleRun, Trace) {
    spec.validate();
    let mut heap = spec.events();
    let started = std::time::Instant::now();
    let workers = workers.max(1);
    let mut shards = TraceRecorder::with_shards(workers).into_shards();
    // Steady-state recording should never reallocate: the packet count per
    // commit is known up front, so carve the capacity across the shards.
    let packets_per_commit = 1 + spec.files_per_commit;
    let total_packets = heap.len() * packets_per_commit;
    for shard in &mut shards {
        shard.reserve(total_packets / workers + packets_per_commit);
    }

    let mut states: Vec<ScaleClientState> = vec![ScaleClientState::default(); spec.clients];
    let mut intervals: Vec<(SimTime, SimTime)> = Vec::with_capacity(heap.len());
    while let Some(wave) = heap.next_wave() {
        let results: Vec<(ScaleClientState, (SimTime, SimTime))> =
            cloudsim_parallel::run_with_contexts(&mut shards, wave.events.len(), |shard, k| {
                let ev = &wave.events[k];
                let (state, interval) = execute_commit(spec, &store, ev, states[ev.client]);
                record_commit_packets(shard, spec, ev.client, ev.round, interval.0);
                (state, interval)
            });
        for (k, (state, interval)) in results.into_iter().enumerate() {
            states[wave.events[k].client] = state;
            intervals.push(interval);
        }
    }

    let trace = TraceRecorder::from_shards(shards).finish();
    let files = spec.clients as u64 * spec.commits_per_client as u64 * spec.files_per_commit as u64;
    (assemble_run(spec.clients, files, &states, intervals, store, started), trace)
}

/// Runs the population with one worker per host core against a fresh
/// sharded store (mark-sweep retention, like a provider that never eagerly
/// frees).
pub fn run_scale_concurrent(spec: &ScaleSpec) -> ScaleRun {
    let workers = cloudsim_parallel::available_workers();
    run_scale(spec, ObjectStore::with_policy(GcPolicy::MarkSweep), workers)
}

/// Like [`run_scale_concurrent`], but with full packet capture: one worker
/// (and one trace shard) per host core, merged into a frozen [`Trace`].
/// The capture is bit-identical whatever the core count.
pub fn run_scale_traced_concurrent(spec: &ScaleSpec) -> (ScaleRun, Trace) {
    let workers = cloudsim_parallel::available_workers();
    run_scale_traced(spec, ObjectStore::with_policy(GcPolicy::MarkSweep), workers)
}

/// Replays the same population sequentially on the calling thread — the
/// determinism baseline parallel runs are compared to.
pub fn run_scale_sequential(spec: &ScaleSpec) -> ScaleRun {
    run_scale(spec, ObjectStore::with_policy(GcPolicy::MarkSweep), 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> ScaleSpec {
        ScaleSpec::new(64).with_seed(0xAB)
    }

    #[test]
    fn per_client_state_respects_the_memory_budget() {
        // The whole point of the lightweight path: a client is a compact
        // state record, an event-heap entry per commit and an interval per
        // commit — not a SyncClient. Pin the sizes so a refactor cannot
        // silently fatten the per-client footprint.
        assert!(
            std::mem::size_of::<ScaleClientState>() <= 64,
            "ScaleClientState grew past the 64-byte budget: {} bytes",
            std::mem::size_of::<ScaleClientState>()
        );
        assert!(
            std::mem::size_of::<FleetEvent>() <= 40,
            "FleetEvent grew past the 40-byte budget: {} bytes",
            std::mem::size_of::<FleetEvent>()
        );
        // Per-client budget at the default two commits per client: state +
        // 2 events + 2 intervals stays under a quarter kilobyte.
        let per_client = std::mem::size_of::<ScaleClientState>()
            + 2 * std::mem::size_of::<FleetEvent>()
            + 2 * std::mem::size_of::<(SimTime, SimTime)>();
        assert!(per_client <= 256, "per-client footprint {per_client} B exceeds 256 B");
    }

    #[test]
    fn parallel_run_matches_sequential_replay_bit_for_bit() {
        let spec = small_spec();
        let parallel = run_scale(&spec, ObjectStore::with_policy(GcPolicy::MarkSweep), 8);
        let sequential = run_scale_sequential(&spec);
        assert_eq!(parallel.commits, sequential.commits);
        assert_eq!(parallel.logical_bytes, sequential.logical_bytes);
        assert_eq!(parallel.intervals, sequential.intervals);
        assert_eq!(parallel.aggregate(), sequential.aggregate());
        for i in [0, 17, 63] {
            let user = spec.user(i);
            assert_eq!(parallel.store.stats(&user), sequential.store.stats(&user));
            assert_eq!(parallel.store.list_files(&user), sequential.store.list_files(&user));
        }
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let spec = small_spec();
        let a = run_scale_concurrent(&spec);
        let b = run_scale_concurrent(&spec);
        assert_eq!(a.intervals, b.intervals);
        assert_eq!(a.aggregate(), b.aggregate());
        assert_eq!(a.load_curve(16), b.load_curve(16));
        // A different seed reshuffles the instants.
        let c = run_scale_concurrent(&spec.clone().with_seed(0xCD));
        assert_ne!(a.intervals, c.intervals);
    }

    #[test]
    fn shared_pool_dedups_across_the_population() {
        let run = run_scale_concurrent(&small_spec());
        let agg = run.aggregate();
        assert_eq!(agg.users, 64);
        assert_eq!(run.commits, 128);
        assert_eq!(run.files, 512);
        // Half of every commit is shared content: 64 clients commit the
        // same two chunks per commit, so referenced approaches twice the
        // physical bytes (private files bound the ratio from above at 2).
        assert!(
            run.dedup_ratio() > 1.5 && run.dedup_ratio() < 2.1,
            "population-scale dedup ratio {} outside the expected band",
            run.dedup_ratio()
        );
        assert!(agg.server_dedup_hits > 0);
        // Private files stay private: physical entries cover at least the
        // private chunks plus the shared pool.
        let shared = 2 * 2u64; // 2 shared files x 2 commits
        let private = 64 * 2 * 2u64;
        assert_eq!(agg.unique_chunks, shared + private);
    }

    #[test]
    fn load_metrics_are_positive_and_consistent() {
        let run = run_scale_concurrent(&small_spec());
        assert!(run.virtual_span_secs() > 0.0);
        assert!(run.commits_per_vsec() > 0.0);
        assert!(run.concurrency_peak() >= 1);
        let curve = run.load_curve(12);
        assert_eq!(curve.iter().sum::<u64>(), run.commits);
        assert!(curve.iter().filter(|&&c| c > 0).count() > 1, "load must spread over the horizon");
    }

    #[test]
    fn commit_instants_stay_inside_the_horizon_and_serialise_per_client() {
        let spec = small_spec().with_commits(4);
        for i in [0usize, 9, 63] {
            for k in 0..4 {
                let at = spec.commit_at(i, k);
                assert!(at <= SimTime::ZERO + spec.horizon);
            }
        }
        let run = run_scale_sequential(&spec);
        // A client's transfers never overlap: its link serialises them.
        let per_client: Vec<Vec<(SimTime, SimTime)>> = (0..spec.clients)
            .map(|i| {
                let mut heap = spec.events();
                let mut mine = Vec::new();
                let mut idx = 0usize;
                while let Some(wave) = heap.next_wave() {
                    for ev in &wave.events {
                        if ev.client == i {
                            mine.push(run.intervals[idx]);
                        }
                        idx += 1;
                    }
                }
                mine
            })
            .collect();
        for mine in per_client {
            for pair in mine.windows(2) {
                assert!(pair[0].1 <= pair[1].0 || pair[1].1 <= pair[0].0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_panic() {
        run_scale_sequential(&ScaleSpec::new(0));
    }

    #[test]
    fn traced_run_matches_the_traceless_run_bit_for_bit() {
        let spec = small_spec();
        let plain = run_scale(&spec, ObjectStore::with_policy(GcPolicy::MarkSweep), 4);
        let (traced, _trace) =
            run_scale_traced(&spec, ObjectStore::with_policy(GcPolicy::MarkSweep), 4);
        assert_eq!(traced.commits, plain.commits);
        assert_eq!(traced.logical_bytes, plain.logical_bytes);
        assert_eq!(traced.intervals, plain.intervals);
        assert_eq!(traced.aggregate(), plain.aggregate());
    }

    #[test]
    fn traced_capture_is_bit_identical_across_worker_counts() {
        let spec = small_spec();
        let (_, single) = run_scale_traced(&spec, ObjectStore::with_policy(GcPolicy::MarkSweep), 1);
        for workers in [2, 3, 8] {
            let (_, sharded) =
                run_scale_traced(&spec, ObjectStore::with_policy(GcPolicy::MarkSweep), workers);
            assert_eq!(
                sharded.view().packets(),
                single.view().packets(),
                "{workers}-shard merge must equal the single-shard capture"
            );
        }
    }

    #[test]
    fn traced_capture_accounts_every_commit() {
        let spec = small_spec();
        let (run, trace) =
            run_scale_traced(&spec, ObjectStore::with_policy(GcPolicy::MarkSweep), 4);
        let view = trace.view();
        // One SYN + one payload packet per file, per commit.
        let expected = run.commits as usize * (1 + spec.files_per_commit);
        assert_eq!(view.len(), expected);
        let syns = view.packets().iter().filter(|p| p.flags == TcpFlags::SYN).count();
        assert_eq!(syns as u64, run.commits);
        let table = view.flow_table();
        assert_eq!(table.len(), run.commits as usize, "one flow per commit");
        // Wire bytes exceed the logical payload (headers), but not by much.
        let wire = view.wire_bytes(FlowKind::Storage);
        assert!(wire > run.logical_bytes);
        assert!((wire as f64) < run.logical_bytes as f64 * 1.1);
        // The capture is timestamp-faithful: packets stay inside the span.
        assert!(view.last_timestamp().expect("packets") <= run.last_end());
    }
}
