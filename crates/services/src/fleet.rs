//! Concurrent multi-client fleet harness.
//!
//! The paper measures each service from a *single* test computer; its
//! server-side findings (inter-user deduplication, per-service completion
//! time and overhead, §4–§5) only matter at provider scale. This module
//! drives K independent [`SyncClient`]s — one simulated user each, every one
//! with its own deterministic network simulator, workload and client-side
//! state — committing into one *shared* sharded [`ObjectStore`], so
//! cross-user deduplication and store-lock contention are exercised under
//! real OS-thread concurrency.
//!
//! Determinism contract: a client's simulation consumes only its own seed
//! and its own planner state, and the shared store's aggregate accounting is
//! order-independent, so [`run_fleet`] produces bit-identical
//! [`ClientSummary`]s and [`AggregateStats`] whether the clients run on one
//! thread (sequential replay) or on one thread per client. The
//! `fleet_scaling` bench and the workspace property tests assert exactly
//! that.

use crate::client::{SyncClient, SyncOutcome};
use crate::profile::ServiceProfile;
use cloudsim_net::Simulator;
use cloudsim_storage::{AggregateStats, ObjectStore, UploadPipeline};
use cloudsim_trace::series::SampleStats;
use cloudsim_trace::{SimDuration, SimTime};
use cloudsim_workload::{generate, FileKind, GeneratedFile};
use serde::Serialize;

/// Workload description for one fleet run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetSpec {
    /// The service every client runs (the paper benchmarks one service at a
    /// time; mixed fleets can be built by running several fleets into one
    /// shared store).
    pub profile: ServiceProfile,
    /// Number of concurrent sync clients (users).
    pub clients: usize,
    /// Sync batches each client performs, one after the other.
    pub batches_per_client: usize,
    /// Files per batch.
    pub files_per_batch: usize,
    /// Size of each file in bytes.
    pub file_size: usize,
    /// Content type of the generated files.
    pub kind: FileKind,
    /// Fraction of each batch (0.0–1.0) drawn from a fleet-wide shared pool:
    /// identical bytes across users, modelling popular content. This is what
    /// inter-user dedup (§4.3) acts on.
    pub shared_fraction: f64,
    /// Master seed; every (client, batch, file) derives an independent seed.
    pub seed: u64,
}

impl FleetSpec {
    /// A fleet of `clients` Dropbox-profile users, each syncing one batch of
    /// ten 64 kB files, half of them from the shared pool.
    pub fn new(profile: ServiceProfile, clients: usize) -> FleetSpec {
        FleetSpec {
            profile,
            clients,
            batches_per_client: 1,
            files_per_batch: 10,
            file_size: 64 * 1024,
            kind: FileKind::RandomBinary,
            shared_fraction: 0.5,
            seed: 0xF1EE7,
        }
    }

    /// Sets batches per client.
    pub fn with_batches(mut self, batches: usize) -> FleetSpec {
        self.batches_per_client = batches;
        self
    }

    /// Sets the per-batch workload (file count and size).
    pub fn with_files(mut self, files_per_batch: usize, file_size: usize) -> FleetSpec {
        self.files_per_batch = files_per_batch;
        self.file_size = file_size;
        self
    }

    /// Sets the shared-pool fraction.
    pub fn with_shared_fraction(mut self, fraction: f64) -> FleetSpec {
        assert!((0.0..=1.0).contains(&fraction), "shared fraction must be within [0, 1]");
        self.shared_fraction = fraction;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> FleetSpec {
        self.seed = seed;
        self
    }

    /// Total plaintext bytes the whole fleet synchronises.
    pub fn total_logical_bytes(&self) -> u64 {
        self.clients as u64
            * self.batches_per_client as u64
            * self.files_per_batch as u64
            * self.file_size as u64
    }

    /// The user name of client `i`.
    pub fn user(&self, i: usize) -> String {
        format!("user-{i:04}")
    }

    fn derived_seed(&self, client: u64, batch: u64, file: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(client.wrapping_add(1)))
            .wrapping_add(0xD1B54A32D192ED03u64.wrapping_mul(batch.wrapping_add(1)))
            .wrapping_add(0x94D049BB133111EBu64.wrapping_mul(file.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Number of files of each batch that come from the fleet-wide shared
    /// pool (identical bytes for every client).
    pub fn shared_files_per_batch(&self) -> usize {
        ((self.files_per_batch as f64) * self.shared_fraction).round() as usize
    }

    /// Generates batch `batch` of client `client`. The first
    /// [`FleetSpec::shared_files_per_batch`] files carry shared-pool content
    /// (seeded by batch and file index only, identical across clients); the
    /// rest are private to the client.
    pub fn workload(&self, client: usize, batch: usize) -> Vec<GeneratedFile> {
        let shared = self.shared_files_per_batch();
        (0..self.files_per_batch)
            .map(|f| {
                let (label, seed) = if f < shared {
                    // Shared pool: client index deliberately excluded.
                    ("shared", self.derived_seed(u64::MAX, batch as u64, f as u64))
                } else {
                    ("private", self.derived_seed(client as u64, batch as u64, f as u64))
                };
                GeneratedFile {
                    path: format!("{label}/b{batch:03}_f{f:04}.{}", self.kind.extension()),
                    content: generate(self.kind, self.file_size, seed),
                }
            })
            .collect()
    }
}

/// What one client of the fleet did, in its own simulated universe.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientSummary {
    /// The user account the client synced as.
    pub user: String,
    /// One outcome per batch, in order.
    pub outcomes: Vec<SyncOutcome>,
    /// Simulated seconds from the first batch's modification to the last
    /// batch's upload completion.
    pub completion_secs: f64,
    /// Plaintext bytes of all batches.
    pub logical_bytes: u64,
    /// Payload bytes the client actually uploaded (after its capabilities).
    pub uploaded_payload: u64,
}

/// The result of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// Per-client summaries, indexed by client number.
    pub clients: Vec<ClientSummary>,
    /// The shared store the fleet committed into.
    pub store: ObjectStore,
    /// Host wall-clock time the run took (the only non-deterministic field;
    /// used for sharded-vs-single-lock throughput comparisons).
    pub elapsed: std::time::Duration,
}

impl FleetRun {
    /// Aggregate server-side statistics after the run.
    pub fn aggregate(&self) -> AggregateStats {
        self.store.aggregate()
    }

    /// Distribution of per-client completion times (simulated seconds).
    pub fn completion_stats(&self) -> SampleStats {
        let samples: Vec<f64> = self.clients.iter().map(|c| c.completion_secs).collect();
        SampleStats::from_samples(&samples).unwrap_or(SampleStats {
            count: 0,
            mean: 0.0,
            min: 0.0,
            max: 0.0,
            std_dev: 0.0,
        })
    }

    /// Plaintext bytes synchronised by the whole fleet.
    pub fn total_logical_bytes(&self) -> u64 {
        self.clients.iter().map(|c| c.logical_bytes).sum()
    }

    /// Payload bytes uploaded by the whole fleet.
    pub fn total_uploaded_payload(&self) -> u64 {
        self.clients.iter().map(|c| c.uploaded_payload).sum()
    }

    /// Aggregate goodput in bits per simulated second: fleet plaintext volume
    /// over the slowest client's completion time (clients sync in parallel
    /// wall-clock-wise, so the fleet is done when the last client is).
    pub fn aggregate_goodput_bps(&self) -> f64 {
        let slowest = self.clients.iter().map(|c| c.completion_secs).fold(0.0f64, f64::max);
        if slowest > 0.0 {
            self.total_logical_bytes() as f64 * 8.0 / slowest
        } else {
            0.0
        }
    }

    /// Server-side inter-user dedup ratio after the run.
    pub fn dedup_ratio(&self) -> f64 {
        self.aggregate().dedup_ratio()
    }

    /// Host-side throughput of the harness itself: plaintext bytes committed
    /// per wall-clock second. This is the number the sharded store improves.
    pub fn wall_throughput_bps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.total_logical_bytes() as f64 * 8.0 / secs
        } else {
            f64::INFINITY
        }
    }
}

fn run_client(spec: &FleetSpec, store: &ObjectStore, i: usize) -> ClientSummary {
    let user = spec.user(i);
    // Each fleet client occupies one OS thread, so its upload pipeline runs
    // sequentially — nesting per-chunk fan-outs inside the per-client fan-out
    // would oversubscribe the host (plans are byte-identical either way).
    let mut client = SyncClient::for_user(
        spec.profile.clone(),
        UploadPipeline::sequential(),
        store.clone(),
        &user,
    );
    let mut sim = Simulator::new(spec.derived_seed(i as u64, u64::MAX, 0));
    let login_done = client.login(&mut sim, SimTime::ZERO);

    let mut outcomes = Vec::with_capacity(spec.batches_per_client);
    let mut modification = login_done + SimDuration::from_secs(5);
    for batch in 0..spec.batches_per_client {
        let files = spec.workload(i, batch);
        let outcome = client.sync_batch(&mut sim, &files, modification);
        modification = outcome.completed_at + SimDuration::from_secs(2);
        outcomes.push(outcome);
    }

    let first = outcomes.first().expect("at least one batch");
    let last = outcomes.last().expect("at least one batch");
    ClientSummary {
        user,
        completion_secs: (last.completed_at - first.modification_time).as_secs_f64(),
        logical_bytes: outcomes.iter().map(|o| o.logical_bytes).sum(),
        uploaded_payload: outcomes.iter().map(|o| o.uploaded_payload).sum(),
        outcomes,
    }
}

/// Runs the fleet on up to `workers` OS threads, committing into `store`.
/// `workers = 1` is the sequential replay; any other count produces
/// bit-identical [`ClientSummary`]s and aggregate store statistics.
pub fn run_fleet(spec: &FleetSpec, store: ObjectStore, workers: usize) -> FleetRun {
    assert!(spec.clients > 0, "a fleet needs at least one client");
    assert!(spec.batches_per_client > 0, "a fleet client needs at least one batch");
    let started = std::time::Instant::now();
    let clients = cloudsim_parallel::run_indexed(
        workers,
        spec.clients,
        || (),
        |(), i| run_client(spec, &store, i),
    );
    FleetRun { clients, store, elapsed: started.elapsed() }
}

/// Runs the fleet with one OS thread per client (capped at the host's
/// available parallelism) against a fresh sharded store.
pub fn run_fleet_concurrent(spec: &FleetSpec) -> FleetRun {
    let workers = cloudsim_parallel::available_workers().clamp(1, spec.clients);
    run_fleet(spec, ObjectStore::new(), workers)
}

/// Replays the same fleet sequentially on the calling thread against a fresh
/// sharded store — the determinism baseline concurrent runs are compared to.
pub fn run_fleet_sequential(spec: &FleetSpec) -> FleetRun {
    run_fleet(spec, ObjectStore::new(), 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(clients: usize) -> FleetSpec {
        FleetSpec::new(ServiceProfile::dropbox(), clients)
            .with_files(4, 16 * 1024)
            .with_batches(2)
            .with_seed(42)
    }

    #[test]
    fn workloads_share_content_across_clients_but_not_private_files() {
        let spec = small_spec(3);
        let a = spec.workload(0, 0);
        let b = spec.workload(1, 0);
        assert_eq!(a.len(), 4);
        let shared = spec.shared_files_per_batch();
        assert_eq!(shared, 2);
        for f in 0..shared {
            assert_eq!(a[f].content, b[f].content, "shared file {f} must match across clients");
        }
        for f in shared..4 {
            assert_ne!(a[f].content, b[f].content, "private file {f} must differ");
        }
        // Batches differ from each other even in the shared pool.
        assert_ne!(spec.workload(0, 0)[0].content, spec.workload(0, 1)[0].content);
        // Workload generation is deterministic.
        assert_eq!(spec.workload(2, 1), spec.workload(2, 1));
    }

    #[test]
    fn concurrent_fleet_matches_sequential_replay_bit_for_bit() {
        let spec = small_spec(6);
        let concurrent = run_fleet(&spec, ObjectStore::new(), 6);
        let sequential = run_fleet_sequential(&spec);
        assert_eq!(concurrent.clients, sequential.clients);
        assert_eq!(concurrent.aggregate(), sequential.aggregate());
        for summary in &concurrent.clients {
            assert_eq!(
                concurrent.store.stats(&summary.user),
                sequential.store.stats(&summary.user),
                "{} per-user stats must match",
                summary.user
            );
            assert_eq!(
                concurrent.store.list_files(&summary.user),
                sequential.store.list_files(&summary.user)
            );
        }
    }

    #[test]
    fn shared_content_is_deduplicated_across_users_server_side() {
        // Dropbox dedups client-side per user, but only the *server* can
        // collapse identical chunks across users.
        let spec = small_spec(8);
        let run = run_fleet_concurrent(&spec);
        let agg = run.aggregate();
        assert_eq!(agg.users, 8);
        assert!(agg.server_dedup_hits > 0, "shared files must produce inter-user dedup hits");
        assert!(
            agg.physical_bytes < agg.referenced_bytes,
            "physical {} should be below referenced {}",
            agg.physical_bytes,
            agg.referenced_bytes
        );
        assert!(run.dedup_ratio() > 1.2, "dedup ratio {}", run.dedup_ratio());
        // Every client uploaded its full logical volume (client-side dedup
        // does not apply across users), so goodput accounting is non-trivial.
        assert_eq!(run.total_logical_bytes(), spec.total_logical_bytes());
        assert!(run.aggregate_goodput_bps() > 0.0);
        assert!(run.completion_stats().count == 8);
    }

    #[test]
    fn dedup_ratio_grows_with_fleet_size() {
        // The multi-tenant observation the single-computer testbed cannot
        // make: the bigger the fleet, the more the shared pool collapses.
        let small = run_fleet_concurrent(&small_spec(2));
        let large = run_fleet_concurrent(&small_spec(12));
        assert!(
            large.dedup_ratio() > small.dedup_ratio(),
            "12-client ratio {} must exceed 2-client ratio {}",
            large.dedup_ratio(),
            small.dedup_ratio()
        );
    }

    #[test]
    fn mixed_service_fleets_share_one_store() {
        // Two fleets of different services committing into one store: the
        // store is service-agnostic, so the shared pool deduplicates across
        // the whole user population regardless of which client uploaded it.
        let store = ObjectStore::new();
        let dropbox =
            FleetSpec::new(ServiceProfile::dropbox(), 2).with_files(3, 8 * 1024).with_seed(7);
        let wuala = FleetSpec { profile: ServiceProfile::wuala(), ..dropbox.clone() };
        run_fleet(&dropbox, store.clone(), 2);
        let run = run_fleet(&wuala, store.clone(), 2);
        let agg = run.aggregate();
        // The second fleet re-uses the same user indices, so the population
        // stays at two namespaces and identical content collapses.
        assert_eq!(agg.users, 2);
        assert!(agg.server_dedup_hits > 0);
        assert!(agg.physical_bytes < agg.referenced_bytes);
    }

    #[test]
    #[should_panic(expected = "a fleet needs at least one client")]
    fn empty_fleets_are_rejected() {
        let spec = FleetSpec { clients: 0, ..small_spec(1) };
        run_fleet(&spec, ObjectStore::new(), 1);
    }
}
